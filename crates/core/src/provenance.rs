//! Decision provenance: the EXPLAIN layer over the whole pipeline.
//!
//! PR 2's observer answers *where time went*; this module answers *why
//! each decision came out the way it did*. For every candidate
//! visualization it accumulates one structured [`Explanation`]: the sema
//! verdict that admitted or rejected the query, the classifier evidence
//! (CART decision path, SVM margin, or Bayes per-class log-likelihoods),
//! the raw and normalized M/Q/W factor breakdown (Eqs. 1–8), dominance
//! in/out-edges with Eq. 9 weights, the LTR score and the hybrid
//! `l_v + α·p_v` combination, and — for candidates that never surfaced —
//! the prune reason from the progressive tournament.
//!
//! The collection handle, [`Provenance`], mirrors the [`Observer`] hook
//! pattern exactly: a cheaply cloneable `Option<Arc<_>>` that records
//! into a shared sink when enabled and costs a single branch — no
//! allocation, no locking — when disabled (the default). Memory is
//! bounded by [`ProvenanceCaps`]: rejected candidates beyond the sample
//! cap keep a minimal id + outcome record (so accounting still reconciles
//! candidate-for-candidate with the observer counters) but drop the
//! per-decision detail, and a hard record ceiling guards pathological
//! enumerations.
//!
//! [`Observer`]: deepeye_obs::Observer

use crate::partial_order::FactorBreakdown;
use deepeye_obs::json::escape;
use deepeye_obs::{parse_json, Json};
use deepeye_query::VisQuery;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Stable identity of a candidate query — the same string
/// [`crate::VisNode::id`] produces, computable *before* execution so
/// sema-rejected and exec-failed candidates share the id space with
/// built nodes.
pub fn query_id(q: &VisQuery) -> String {
    format!(
        "{}|{}|{}|{:?}|{:?}|{:?}",
        q.chart,
        q.x,
        q.y.as_deref().unwrap_or(""),
        q.transform,
        q.aggregate,
        q.order,
    )
}

/// What finally happened to a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Enumerated and admitted by sema; later stages not (yet) recorded.
    #[default]
    Enumerated,
    /// Rejected by static semantic analysis before execution.
    SemaRejected,
    /// Admitted by sema but failed during execution.
    ExecFailed,
    /// Executed, but the recognizer classified it as not-good.
    ClassifierRejected,
    /// Kept by the recognizer but dropped for having fewer than two marks.
    SingleMark,
    /// Survived recognition; not ranked into the final top-k.
    Kept,
    /// Emitted in the final top-k at this 1-based rank.
    Ranked(usize),
    /// Materialized in the progressive tournament but lost the final heap.
    TournamentLost,
    /// Won the progressive tournament at this 1-based rank.
    TournamentRanked(usize),
    /// A per-column tournament leaf evicted by its upper bound.
    LeafPruned,
    /// A per-column tournament leaf that was materialized.
    LeafMaterialized,
}

impl Outcome {
    /// Stable kind string used in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Enumerated => "enumerated",
            Outcome::SemaRejected => "sema_rejected",
            Outcome::ExecFailed => "exec_failed",
            Outcome::ClassifierRejected => "classifier_rejected",
            Outcome::SingleMark => "single_mark",
            Outcome::Kept => "kept",
            Outcome::Ranked(_) => "ranked",
            Outcome::TournamentLost => "tournament_lost",
            Outcome::TournamentRanked(_) => "tournament_ranked",
            Outcome::LeafPruned => "leaf_pruned",
            Outcome::LeafMaterialized => "leaf_materialized",
        }
    }

    /// 1-based final rank for the ranked outcomes.
    pub fn rank(&self) -> Option<usize> {
        match self {
            Outcome::Ranked(r) | Outcome::TournamentRanked(r) => Some(*r),
            _ => None,
        }
    }

    /// All kind strings [`kind`](Self::kind) can produce (validator table).
    pub fn known_kinds() -> &'static [&'static str] {
        &[
            "enumerated",
            "sema_rejected",
            "exec_failed",
            "classifier_rejected",
            "single_mark",
            "kept",
            "ranked",
            "tournament_lost",
            "tournament_ranked",
            "leaf_pruned",
            "leaf_materialized",
        ]
    }
}

/// One comparison along a recorded CART decision path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStep {
    /// Feature index into [`crate::features::FEATURE_NAMES`].
    pub feature: usize,
    pub threshold: f64,
    /// The candidate's value for that feature.
    pub value: f64,
    pub went_left: bool,
}

/// The recognizer's evidence for its verdict, per classifier family.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierEvidence {
    /// CART: the root-to-leaf comparison chain and the leaf's
    /// positive-class probability.
    Tree {
        path: Vec<TreeStep>,
        leaf_value: f64,
    },
    /// Linear SVM: signed distance to the separating hyperplane.
    Svm { margin: f64 },
    /// Naive Bayes: per-class log-likelihoods (priors included).
    Bayes {
        log_likelihood_good: f64,
        log_likelihood_bad: f64,
    },
}

impl ClassifierEvidence {
    /// The scalar the verdict thresholds on (≥ 0 ⇒ good for margin-style
    /// evidence, ≥ 0.5 for tree leaf probability).
    pub fn score(&self) -> f64 {
        match self {
            ClassifierEvidence::Tree { leaf_value, .. } => *leaf_value,
            ClassifierEvidence::Svm { margin } => *margin,
            ClassifierEvidence::Bayes {
                log_likelihood_good,
                log_likelihood_bad,
            } => log_likelihood_good - log_likelihood_bad,
        }
    }
}

/// A candidate's place in the dominance graph (Definition 2 / Eq. 9).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DominanceSummary {
    /// Number of nodes this candidate strictly dominates.
    pub dominates: usize,
    /// Number of nodes strictly dominating this candidate.
    pub dominated_by: usize,
    /// Heaviest outgoing edge: `(dominated id, Eq. 9 weight)`.
    pub strongest_out: Option<(String, f64)>,
    /// Heaviest incoming edge: `(dominating id, Eq. 9 weight)`.
    pub strongest_in: Option<(String, f64)>,
}

/// The hybrid combination of §IV-D, recorded part by part so the export
/// can be re-derived: `combined = l_pos + alpha · p_pos` (lower wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridParts {
    /// 0-based position in the learning-to-rank order.
    pub l_pos: usize,
    /// 0-based position in the partial-order ranking.
    pub p_pos: usize,
    pub alpha: f64,
    pub combined: f64,
}

/// Where a candidate landed in the ranking stage(s).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankBreakdown {
    /// `ln S(v)` from dominance-graph score propagation (None when the
    /// partial order was not run; −∞ for sink nodes).
    pub po_log_score: Option<f64>,
    /// 0-based position in the partial-order ranking.
    pub po_pos: Option<usize>,
    /// Raw LambdaMART ensemble score.
    pub ltr_score: Option<f64>,
    /// 0-based position in the LTR ranking.
    pub ltr_pos: Option<usize>,
    /// Hybrid combination, when the hybrid ranker ran.
    pub hybrid: Option<HybridParts>,
    /// 0-based position in the order the active ranker produced
    /// (pre-dedup), when the candidate was ranked at all.
    pub final_pos: Option<usize>,
}

/// Everything recorded about one candidate visualization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Explanation {
    /// Stable candidate id ([`query_id`] / [`crate::VisNode::id`]).
    pub id: String,
    /// The query rendered in the visualization language.
    pub query: String,
    /// Chart type name.
    pub chart: String,
    pub outcome: Outcome,
    /// Sema diagnostics as `(code, message)` pairs — the fatal error for
    /// rejected candidates, warnings for admitted ones.
    pub sema: Vec<(String, String)>,
    pub classifier: Option<ClassifierEvidence>,
    pub factors: Option<FactorBreakdown>,
    pub dominance: Option<DominanceSummary>,
    pub rank: Option<RankBreakdown>,
    /// The score that drove the progressive tournament (a leaf's upper
    /// bound for leaf records, the node's tournament score otherwise).
    pub tournament_score: Option<f64>,
    /// Free-form narrative lines (the chart-specific "why" sentences).
    pub notes: Vec<String>,
}

impl Explanation {
    pub fn new(id: impl Into<String>) -> Self {
        Explanation {
            id: id.into(),
            ..Explanation::default()
        }
    }

    /// The human-readable "why" report for this candidate — the view the
    /// CLI `explain` subcommand and `Recommendation::explain` print. The
    /// factor lines deliberately spell `M = `, `Q = `, `W = ` (CI greps
    /// for them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let headline = match self.outcome {
            Outcome::Ranked(r) | Outcome::TournamentRanked(r) => {
                format!("Ranked #{r} as a {} chart", self.chart)
            }
            _ => format!(
                "{} ({})",
                if self.chart.is_empty() {
                    self.id.clone()
                } else {
                    format!("{} chart candidate", self.chart)
                },
                self.outcome.kind()
            ),
        };
        out.push_str(&headline);
        if !self.notes.is_empty() {
            out.push_str(": ");
            out.push_str(&self.notes.join(" "));
        }
        out.push('\n');
        if !self.query.is_empty() {
            // The language renders queries one clause per line; the report
            // is indentation-structured, so flatten to one line here.
            out.push_str(&format!("  query: {}\n", self.query.replace('\n', " ")));
        }
        for (code, message) in &self.sema {
            out.push_str(&format!("  sema {code}: {message}\n"));
        }
        if let Some(f) = &self.factors {
            out.push_str(&format!(
                "  M = {:.3} (raw {:.3}), Q = {:.3}, W = {:.3} (raw {:.3})\n",
                f.m, f.raw_m, f.q, f.w, f.raw_w
            ));
        }
        if let Some(c) = &self.classifier {
            match c {
                ClassifierEvidence::Tree { path, leaf_value } => {
                    out.push_str(&format!(
                        "  classifier: decision tree, leaf p(good) = {leaf_value:.3}\n"
                    ));
                    for step in path {
                        let name = crate::features::FEATURE_NAMES
                            .get(step.feature)
                            .copied()
                            .unwrap_or("feature?");
                        out.push_str(&format!(
                            "    {} = {:.3} {} {:.3}\n",
                            name,
                            step.value,
                            if step.went_left { "<=" } else { ">" },
                            step.threshold
                        ));
                    }
                }
                ClassifierEvidence::Svm { margin } => {
                    out.push_str(&format!("  classifier: SVM margin = {margin:.4}\n"));
                }
                ClassifierEvidence::Bayes {
                    log_likelihood_good,
                    log_likelihood_bad,
                } => {
                    out.push_str(&format!(
                        "  classifier: Bayes ln L(good) = {log_likelihood_good:.3}, \
                         ln L(bad) = {log_likelihood_bad:.3}\n"
                    ));
                }
            }
        }
        if let Some(d) = &self.dominance {
            out.push_str(&format!(
                "  dominance: dominates {}, dominated by {}",
                d.dominates, d.dominated_by
            ));
            if let Some((id, w)) = &d.strongest_out {
                out.push_str(&format!("; strongest out +{w:.3} over {id}"));
            }
            if let Some((id, w)) = &d.strongest_in {
                out.push_str(&format!("; strongest in −{w:.3} from {id}"));
            }
            out.push('\n');
        }
        if let Some(r) = &self.rank {
            let mut parts = Vec::new();
            if let Some(p) = r.po_pos {
                let score = r
                    .po_log_score
                    .map(|s| format!(" (ln S = {s:.3})"))
                    .unwrap_or_default();
                parts.push(format!("partial order #{}{}", p + 1, score));
            }
            if let Some(p) = r.ltr_pos {
                let score = r
                    .ltr_score
                    .map(|s| format!(" (score {s:.4})"))
                    .unwrap_or_default();
                parts.push(format!("LTR #{}{}", p + 1, score));
            }
            if let Some(h) = &r.hybrid {
                parts.push(format!(
                    "hybrid {} + {:.2}·{} = {:.2}",
                    h.l_pos, h.alpha, h.p_pos, h.combined
                ));
            }
            if !parts.is_empty() {
                out.push_str(&format!("  rank: {}\n", parts.join(", ")));
            }
        }
        if let Some(s) = self.tournament_score {
            out.push_str(&format!("  tournament score: {s:.4}\n"));
        }
        out
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\": \"{}\"", escape(&self.id)));
        out.push_str(&format!(", \"query\": \"{}\"", escape(&self.query)));
        out.push_str(&format!(", \"chart\": \"{}\"", escape(&self.chart)));
        out.push_str(&format!(", \"outcome\": \"{}\"", self.outcome.kind()));
        if let Some(rank) = self.outcome.rank() {
            out.push_str(&format!(", \"rank\": {rank}"));
        }
        if !self.sema.is_empty() {
            out.push_str(", \"sema\": [");
            for (i, (code, message)) in self.sema.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"code\": \"{}\", \"message\": \"{}\"}}",
                    escape(code),
                    escape(message)
                ));
            }
            out.push(']');
        }
        if let Some(c) = &self.classifier {
            out.push_str(", \"classifier\": ");
            match c {
                ClassifierEvidence::Tree { path, leaf_value } => {
                    out.push_str(&format!(
                        "{{\"kind\": \"tree\", \"leaf_value\": {}, \"path\": [",
                        json_f64(*leaf_value)
                    ));
                    for (i, s) in path.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"feature\": {}, \"threshold\": {}, \"value\": {}, \
                             \"went_left\": {}}}",
                            s.feature,
                            json_f64(s.threshold),
                            json_f64(s.value),
                            s.went_left
                        ));
                    }
                    out.push_str("]}");
                }
                ClassifierEvidence::Svm { margin } => {
                    out.push_str(&format!(
                        "{{\"kind\": \"svm\", \"margin\": {}}}",
                        json_f64(*margin)
                    ));
                }
                ClassifierEvidence::Bayes {
                    log_likelihood_good,
                    log_likelihood_bad,
                } => {
                    out.push_str(&format!(
                        "{{\"kind\": \"bayes\", \"log_likelihood_good\": {}, \
                         \"log_likelihood_bad\": {}}}",
                        json_f64(*log_likelihood_good),
                        json_f64(*log_likelihood_bad)
                    ));
                }
            }
        }
        if let Some(f) = &self.factors {
            out.push_str(&format!(
                ", \"factors\": {{\"raw_m\": {}, \"m\": {}, \"q\": {}, \"raw_w\": {}, \
                 \"w\": {}}}",
                json_f64(f.raw_m),
                json_f64(f.m),
                json_f64(f.q),
                json_f64(f.raw_w),
                json_f64(f.w)
            ));
        }
        if let Some(d) = &self.dominance {
            out.push_str(&format!(
                ", \"dominance\": {{\"dominates\": {}, \"dominated_by\": {}",
                d.dominates, d.dominated_by
            ));
            if let Some((id, w)) = &d.strongest_out {
                out.push_str(&format!(
                    ", \"strongest_out\": {{\"id\": \"{}\", \"weight\": {}}}",
                    escape(id),
                    json_f64(*w)
                ));
            }
            if let Some((id, w)) = &d.strongest_in {
                out.push_str(&format!(
                    ", \"strongest_in\": {{\"id\": \"{}\", \"weight\": {}}}",
                    escape(id),
                    json_f64(*w)
                ));
            }
            out.push('}');
        }
        if let Some(r) = &self.rank {
            out.push_str(", \"rank_breakdown\": {");
            let mut first = true;
            let mut field = |out: &mut String, name: &str, value: String| {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{name}\": {value}"));
            };
            if let Some(s) = r.po_log_score {
                field(&mut out, "po_log_score", json_f64(s));
            }
            if let Some(p) = r.po_pos {
                field(&mut out, "po_pos", p.to_string());
            }
            if let Some(s) = r.ltr_score {
                field(&mut out, "ltr_score", json_f64(s));
            }
            if let Some(p) = r.ltr_pos {
                field(&mut out, "ltr_pos", p.to_string());
            }
            if let Some(h) = &r.hybrid {
                field(
                    &mut out,
                    "hybrid",
                    format!(
                        "{{\"l_pos\": {}, \"p_pos\": {}, \"alpha\": {}, \"combined\": {}}}",
                        h.l_pos,
                        h.p_pos,
                        json_f64(h.alpha),
                        json_f64(h.combined)
                    ),
                );
            }
            if let Some(p) = r.final_pos {
                field(&mut out, "final_pos", p.to_string());
            }
            out.push('}');
        }
        if let Some(s) = self.tournament_score {
            out.push_str(&format!(", \"tournament_score\": {}", json_f64(s)));
        }
        if !self.notes.is_empty() {
            out.push_str(", \"notes\": [");
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", escape(n)));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Serialize a float as JSON: plain decimal when finite (Rust's `f64`
/// Display never produces scientific notation), `null` otherwise.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        String::from("null")
    }
}

/// Memory bounds for a [`Provenance`] collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenanceCaps {
    /// How many top candidates get full dominance-edge detail.
    pub top_n: usize,
    /// How many rejected/pruned candidates keep full per-decision detail;
    /// beyond this, rejects still get a minimal id + outcome record so
    /// the accounting stays exact.
    pub rejected_samples: usize,
    /// Hard ceiling on stored records; the excess is counted in
    /// `dropped_records` instead of stored.
    pub max_records: usize,
}

impl Default for ProvenanceCaps {
    fn default() -> Self {
        ProvenanceCaps {
            top_n: 16,
            rejected_samples: 64,
            max_records: 100_000,
        }
    }
}

/// Pipeline-wide decision tallies, kept alongside the records so the
/// export reconciles with the observer counters by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProvenanceCounts {
    pub enumerated: u64,
    pub sema_rejected: u64,
    pub exec_failed: u64,
    pub classifier_kept: u64,
    pub classifier_rejected: u64,
    pub single_mark: u64,
    pub ranked: u64,
    pub leaves_materialized: u64,
    pub leaves_pruned: u64,
    pub leaves_total: u64,
    pub dropped_records: u64,
}

impl ProvenanceCounts {
    fn to_json(self) -> String {
        format!(
            "{{\"enumerated\": {}, \"sema_rejected\": {}, \"exec_failed\": {}, \
             \"classifier_kept\": {}, \"classifier_rejected\": {}, \"single_mark\": {}, \
             \"ranked\": {}, \"leaves_materialized\": {}, \"leaves_pruned\": {}, \
             \"leaves_total\": {}, \"dropped_records\": {}}}",
            self.enumerated,
            self.sema_rejected,
            self.exec_failed,
            self.classifier_kept,
            self.classifier_rejected,
            self.single_mark,
            self.ranked,
            self.leaves_materialized,
            self.leaves_pruned,
            self.leaves_total,
            self.dropped_records,
        )
    }
}

#[derive(Debug, Default)]
struct State {
    table: String,
    records: Vec<Explanation>,
    index: HashMap<String, usize>,
    counts: ProvenanceCounts,
    detailed_rejects: u64,
}

#[derive(Debug)]
struct Inner {
    caps: ProvenanceCaps,
    state: Mutex<State>,
}

/// The provenance collection handle carried on `DeepEyeConfig`.
///
/// Mirrors [`deepeye_obs::Observer`]: `Clone` shares the sink, the
/// default is disabled, and every recording method on a disabled handle
/// is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    inner: Option<Arc<Inner>>,
}

impl Provenance {
    /// A recording collector with default caps.
    pub fn enabled() -> Self {
        Provenance::with_caps(ProvenanceCaps::default())
    }

    /// A recording collector with explicit memory bounds.
    pub fn with_caps(caps: ProvenanceCaps) -> Self {
        Provenance {
            inner: Some(Arc::new(Inner {
                caps,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The no-op collector (the default on `DeepEyeConfig`).
    pub fn disabled() -> Self {
        Provenance { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured memory bounds (defaults when disabled).
    pub fn caps(&self) -> ProvenanceCaps {
        self.inner.as_ref().map(|i| i.caps).unwrap_or_default()
    }

    fn with_state<R>(&self, f: impl FnOnce(&ProvenanceCaps, &mut State) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut state = match inner.state.lock() {
            Ok(guard) => guard,
            // A panicking recorder cannot corrupt append-only tallies.
            Err(poisoned) => poisoned.into_inner(),
        };
        Some(f(&inner.caps, &mut state))
    }

    /// Name of the table the decisions are about.
    pub fn set_table(&self, name: &str) {
        self.with_state(|_, s| s.table = name.to_owned());
    }

    /// Upsert the record for candidate `id` and let `f` fill it in.
    /// New records beyond `max_records` are dropped (and counted).
    pub fn record(&self, id: &str, f: impl FnOnce(&mut Explanation)) {
        self.with_state(|caps, s| match s.index.get(id) {
            Some(&i) => f(&mut s.records[i]),
            None => {
                if s.records.len() >= caps.max_records {
                    s.counts.dropped_records += 1;
                    return;
                }
                let mut e = Explanation::new(id);
                f(&mut e);
                s.index.insert(id.to_owned(), s.records.len());
                s.records.push(e);
            }
        });
    }

    /// Record a rejected/pruned candidate. The first `rejected_samples`
    /// distinct rejects keep the full detail `f` provides; later ones
    /// store only id + outcome so every candidate stays accounted for.
    pub fn record_rejected(&self, id: &str, outcome: Outcome, f: impl FnOnce(&mut Explanation)) {
        self.with_state(|caps, s| {
            if let Some(&i) = s.index.get(id) {
                let e = &mut s.records[i];
                e.outcome = outcome;
                if s.detailed_rejects < caps.rejected_samples as u64 {
                    s.detailed_rejects += 1;
                    f(e);
                }
                return;
            }
            if s.records.len() >= caps.max_records {
                s.counts.dropped_records += 1;
                return;
            }
            let mut e = Explanation::new(id);
            e.outcome = outcome;
            if s.detailed_rejects < caps.rejected_samples as u64 {
                s.detailed_rejects += 1;
                f(&mut e);
            }
            s.index.insert(id.to_owned(), s.records.len());
            s.records.push(e);
        });
    }

    /// Mutate the pipeline-wide tallies.
    pub fn bump(&self, f: impl FnOnce(&mut ProvenanceCounts)) {
        self.with_state(|_, s| f(&mut s.counts));
    }

    /// Point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> ProvenanceLog {
        self.with_state(|_, s| ProvenanceLog {
            table: s.table.clone(),
            records: s.records.clone(),
            counts: s.counts,
        })
        .unwrap_or_default()
    }

    /// The JSON provenance export (a [`snapshot`](Self::snapshot) view).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time copy of a [`Provenance`] collector's contents.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    pub table: String,
    pub records: Vec<Explanation>,
    pub counts: ProvenanceCounts,
}

impl ProvenanceLog {
    /// Record by candidate id.
    pub fn find(&self, id: &str) -> Option<&Explanation> {
        self.records.iter().find(|e| e.id == id)
    }

    /// Records with a final rank, sorted by rank.
    pub fn ranked(&self) -> Vec<&Explanation> {
        let mut out: Vec<&Explanation> = self
            .records
            .iter()
            .filter(|e| e.outcome.rank().is_some())
            .collect();
        out.sort_by_key(|e| e.outcome.rank().unwrap_or(usize::MAX));
        out
    }

    /// The JSON provenance document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"table\": \"{}\",\n", escape(&self.table)));
        out.push_str(&format!("  \"counts\": {},\n", self.counts.to_json()));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&r.to_json());
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The human-readable "why" report over the top `top` ranked
    /// candidates plus a rejection summary.
    pub fn report(&self, top: usize) -> String {
        let mut out = String::from("== why these charts ==\n");
        if !self.table.is_empty() {
            out.push_str(&format!("table: {}\n", self.table));
        }
        let ranked = self.ranked();
        if ranked.is_empty() {
            out.push_str("(no ranked candidates recorded)\n");
        }
        for e in ranked.iter().take(top) {
            out.push('\n');
            out.push_str(&e.render());
        }
        let c = &self.counts;
        out.push_str(&format!(
            "\n{} candidates enumerated; {} sema-rejected, {} failed execution, \
             {} classifier-rejected, {} single-mark, {} ranked.\n",
            c.enumerated + c.sema_rejected,
            c.sema_rejected,
            c.exec_failed,
            c.classifier_rejected,
            c.single_mark,
            c.ranked,
        ));
        if c.leaves_total > 0 {
            out.push_str(&format!(
                "tournament: {} of {} column leaves materialized, {} pruned by bound.\n",
                c.leaves_materialized, c.leaves_total, c.leaves_pruned,
            ));
        }
        if c.dropped_records > 0 {
            out.push_str(&format!(
                "({} records dropped by the max_records cap)\n",
                c.dropped_records
            ));
        }
        out
    }
}

/// Summary returned by [`validate_provenance_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenanceSummary {
    pub records: usize,
    pub ranked: usize,
    pub rejected: usize,
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("counts.{key} missing or not a number"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("counts.{key} = {v} is not a non-negative integer"));
    }
    Ok(v as u64)
}

/// Validate a provenance JSON document: schema, known outcomes, the
/// tournament leaf invariant, and that every recorded hybrid score equals
/// `l_pos + alpha·p_pos` to within 1e-9.
pub fn validate_provenance_json(text: &str) -> Result<ProvenanceSummary, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    doc.get("table")
        .and_then(Json::as_str)
        .ok_or("missing `table` string")?;
    let counts = doc.get("counts").ok_or("missing `counts` object")?;
    for key in [
        "enumerated",
        "sema_rejected",
        "exec_failed",
        "classifier_kept",
        "classifier_rejected",
        "single_mark",
        "ranked",
        "leaves_materialized",
        "leaves_pruned",
        "leaves_total",
        "dropped_records",
    ] {
        req_u64(counts, key)?;
    }
    let (mat, pruned, total) = (
        req_u64(counts, "leaves_materialized")?,
        req_u64(counts, "leaves_pruned")?,
        req_u64(counts, "leaves_total")?,
    );
    if mat + pruned != total {
        return Err(format!(
            "leaf invariant violated: {mat} materialized + {pruned} pruned != {total} total"
        ));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or("missing `records` array")?;
    let mut ranked = 0usize;
    let mut rejected = 0usize;
    for (i, r) in records.iter().enumerate() {
        r.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("records[{i}] missing `id`"))?;
        let outcome = r
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("records[{i}] missing `outcome`"))?;
        if !Outcome::known_kinds().contains(&outcome) {
            return Err(format!("records[{i}] has unknown outcome `{outcome}`"));
        }
        if outcome.ends_with("rejected") || outcome.ends_with("pruned") {
            rejected += 1;
        }
        if outcome == "ranked" || outcome == "tournament_ranked" {
            ranked += 1;
            let rank = r
                .get("rank")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("records[{i}] is ranked but has no `rank`"))?;
            if rank < 1.0 || rank.fract() != 0.0 {
                return Err(format!("records[{i}] has invalid rank {rank}"));
            }
        }
        if let Some(h) = r.get("rank_breakdown").and_then(|b| b.get("hybrid")) {
            let l = h
                .get("l_pos")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("records[{i}] hybrid missing l_pos"))?;
            let p = h
                .get("p_pos")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("records[{i}] hybrid missing p_pos"))?;
            let alpha = h
                .get("alpha")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("records[{i}] hybrid missing alpha"))?;
            let combined = h
                .get("combined")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("records[{i}] hybrid missing combined"))?;
            if (combined - (l + alpha * p)).abs() > 1e-9 {
                return Err(format!(
                    "records[{i}] hybrid score {combined} != {l} + {alpha}·{p}"
                ));
            }
        }
    }
    Ok(ProvenanceSummary {
        records: records.len(),
        ranked,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Provenance {
        let prov = Provenance::enabled();
        prov.set_table("flights");
        prov.record("bar|carrier|delay|Group|Avg|None", |e| {
            e.query = "VISUALIZE bar ...".into();
            e.chart = "bar".into();
            e.outcome = Outcome::Ranked(1);
            e.factors = Some(FactorBreakdown {
                raw_m: 1.0,
                m: 1.0,
                q: 0.5,
                raw_w: 1.5,
                w: 1.0,
            });
            e.rank = Some(RankBreakdown {
                hybrid: Some(HybridParts {
                    l_pos: 0,
                    p_pos: 1,
                    alpha: 1.0,
                    combined: 1.0,
                }),
                final_pos: Some(0),
                ..RankBreakdown::default()
            });
            e.notes.push("4 bars is a legible comparison.".into());
        });
        prov.record_rejected(
            "pie|carrier|delay|Group|Avg|None",
            Outcome::SemaRejected,
            |e| {
                e.chart = "pie".into();
                e.sema.push((
                    "E0011".into(),
                    "AVG pie has no part-to-whole reading".into(),
                ));
            },
        );
        prov.bump(|c| {
            c.enumerated = 2;
            c.sema_rejected = 1;
            c.ranked = 1;
        });
        prov
    }

    #[test]
    fn disabled_records_nothing() {
        let prov = Provenance::disabled();
        assert!(!prov.is_enabled());
        prov.record("x", |e| e.notes.push("never stored".into()));
        prov.bump(|c| c.enumerated += 1);
        let log = prov.snapshot();
        assert!(log.records.is_empty());
        assert_eq!(log.counts, ProvenanceCounts::default());
    }

    #[test]
    fn record_upserts_by_id() {
        let prov = Provenance::enabled();
        prov.record("a", |e| e.chart = "bar".into());
        prov.record("a", |e| e.outcome = Outcome::Kept);
        let log = prov.snapshot();
        assert_eq!(log.records.len(), 1);
        let e = log.find("a").unwrap();
        assert_eq!(e.chart, "bar");
        assert_eq!(e.outcome, Outcome::Kept);
    }

    #[test]
    fn rejected_sample_cap_keeps_minimal_records() {
        let caps = ProvenanceCaps {
            rejected_samples: 2,
            ..ProvenanceCaps::default()
        };
        let prov = Provenance::with_caps(caps);
        for i in 0..5 {
            prov.record_rejected(&format!("r{i}"), Outcome::ClassifierRejected, |e| {
                e.notes.push("detail".into());
            });
        }
        let log = prov.snapshot();
        // Every reject is accounted for...
        assert_eq!(log.records.len(), 5);
        // ...but only the first two carry detail.
        let detailed = log.records.iter().filter(|e| !e.notes.is_empty()).count();
        assert_eq!(detailed, 2);
        for e in &log.records {
            assert_eq!(e.outcome, Outcome::ClassifierRejected);
        }
    }

    #[test]
    fn max_records_cap_counts_drops() {
        let caps = ProvenanceCaps {
            max_records: 3,
            ..ProvenanceCaps::default()
        };
        let prov = Provenance::with_caps(caps);
        for i in 0..10 {
            prov.record(&format!("n{i}"), |_| {});
        }
        let log = prov.snapshot();
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.counts.dropped_records, 7);
    }

    #[test]
    fn json_round_trips_and_validates() {
        let text = sample().to_json();
        let summary = validate_provenance_json(&text).expect("valid provenance");
        assert_eq!(summary.records, 2);
        assert_eq!(summary.ranked, 1);
        assert_eq!(summary.rejected, 1);
        // Spot-check the parse.
        let doc = parse_json(&text).unwrap();
        assert_eq!(doc.get("table").and_then(Json::as_str), Some("flights"));
        let records = doc.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(
            records[0].get("outcome").and_then(Json::as_str),
            Some("ranked")
        );
        assert_eq!(records[0].get("rank").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn validator_rejects_broken_hybrid() {
        let text = sample()
            .to_json()
            .replace("\"combined\": 1", "\"combined\": 9");
        assert!(validate_provenance_json(&text)
            .unwrap_err()
            .contains("hybrid"));
    }

    #[test]
    fn validator_rejects_leaf_imbalance() {
        let prov = Provenance::enabled();
        prov.bump(|c| {
            c.leaves_materialized = 2;
            c.leaves_pruned = 1;
            c.leaves_total = 5;
        });
        assert!(validate_provenance_json(&prov.to_json())
            .unwrap_err()
            .contains("leaf invariant"));
    }

    #[test]
    fn render_mentions_all_three_factors() {
        let log = sample().snapshot();
        let report = log.report(5);
        assert!(report.contains("M = "), "{report}");
        assert!(report.contains("Q = "), "{report}");
        assert!(report.contains("W = "), "{report}");
        assert!(report.contains("Ranked #1 as a bar chart"));
        assert!(report.contains("sema-rejected"));
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let prov = Provenance::enabled();
        prov.record("sink", |e| {
            e.rank = Some(RankBreakdown {
                po_log_score: Some(f64::NEG_INFINITY),
                po_pos: Some(3),
                ..RankBreakdown::default()
            });
        });
        let text = prov.to_json();
        assert!(text.contains("\"po_log_score\": null"), "{text}");
        validate_provenance_json(&text).expect("still valid");
    }

    #[test]
    fn query_id_matches_visnode_format() {
        use deepeye_query::{Aggregate, ChartType, SortOrder, Transform};
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("delay".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        let id = query_id(&q);
        assert!(id.starts_with("bar|carrier|delay|"), "{id}");
    }
}
