//! Chart-spec rendering: emit a Vega-Lite-style JSON spec for a
//! visualization node so recommendations can be handed straight to a web
//! renderer. Hand-rolled writer — the value space is closed (strings,
//! numbers, fixed structure), so a serde dependency would buy nothing.

use crate::node::VisNode;
use deepeye_query::{ChartType, Key, Series};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as JSON (no trailing `.0` for integers; non-finite
/// values become null).
fn number(x: f64) -> String {
    if !x.is_finite() {
        "null".to_owned()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn mark(chart: ChartType) -> &'static str {
    match chart {
        ChartType::Bar => "bar",
        ChartType::Line => "line",
        ChartType::Pie => "arc",
        ChartType::Scatter => "point",
    }
}

fn key_json(k: &Key) -> String {
    match k {
        Key::Number(x) => number(*x),
        other => format!("\"{}\"", escape(&other.to_string())),
    }
}

/// Render a Vega-Lite-style spec for a node.
pub fn vega_lite_spec(node: &VisNode) -> String {
    let mut values = String::new();
    match &node.data.series {
        Series::Keyed(pairs) => {
            for (i, (k, y)) in pairs.iter().enumerate() {
                if i > 0 {
                    values.push(',');
                }
                let _ = write!(values, "{{\"x\":{},\"y\":{}}}", key_json(k), number(*y));
            }
        }
        Series::Points(pts) => {
            for (i, (x, y)) in pts.iter().enumerate() {
                if i > 0 {
                    values.push(',');
                }
                let _ = write!(values, "{{\"x\":{},\"y\":{}}}", number(*x), number(*y));
            }
        }
    }
    let x_label = escape(&node.data.x_label);
    let y_label = escape(&node.data.y_label);
    let x_type = match &node.data.series {
        Series::Keyed(pairs)
            if pairs
                .first()
                .is_some_and(|(k, _)| k.scale_position().is_none()) =>
        {
            "nominal"
        }
        _ => match node.features.x.dtype {
            deepeye_data::DataType::Temporal => "ordinal",
            _ => "quantitative",
        },
    };
    let encoding = if node.chart_type() == ChartType::Pie {
        format!(
            "{{\"theta\":{{\"field\":\"y\",\"type\":\"quantitative\",\"title\":\"{y_label}\"}},\
             \"color\":{{\"field\":\"x\",\"type\":\"nominal\",\"title\":\"{x_label}\"}}}}"
        )
    } else {
        format!(
            "{{\"x\":{{\"field\":\"x\",\"type\":\"{x_type}\",\"title\":\"{x_label}\"}},\
             \"y\":{{\"field\":\"y\",\"type\":\"quantitative\",\"title\":\"{y_label}\"}}}}"
        )
    };
    format!(
        "{{\"$schema\":\"https://vega.github.io/schema/vega-lite/v5.json\",\
         \"mark\":\"{}\",\"data\":{{\"values\":[{values}]}},\"encoding\":{encoding}}}",
        mark(node.chart_type()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{Aggregate, SortOrder, Transform, UdfRegistry, VisQuery};

    fn node(chart: ChartType) -> VisNode {
        let t = TableBuilder::new("t")
            .text("carrier", ["U\"A", "AA", "U\"A"])
            .numeric("delay", [1.5, 2.0, 3.0])
            .build()
            .unwrap();
        VisNode::build(
            &t,
            VisQuery {
                chart,
                x: "carrier".into(),
                y: Some("delay".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap()
    }

    #[test]
    fn bar_spec_structure() {
        let spec = vega_lite_spec(&node(ChartType::Bar));
        assert!(spec.contains("\"mark\":\"bar\""));
        assert!(spec.contains("\"$schema\""));
        assert!(spec.contains("\"field\":\"x\""));
        assert!(spec.contains("\"type\":\"nominal\""));
        // Quotes in data are escaped.
        assert!(spec.contains("U\\\"A"));
    }

    #[test]
    fn pie_uses_theta_encoding() {
        let spec = vega_lite_spec(&node(ChartType::Pie));
        assert!(spec.contains("\"mark\":\"arc\""));
        assert!(spec.contains("\"theta\""));
        assert!(spec.contains("\"color\""));
    }

    #[test]
    fn numbers_are_compact() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn spec_is_balanced_json() {
        // Cheap structural sanity: balanced braces/brackets and no raw
        // control characters.
        for chart in [
            ChartType::Bar,
            ChartType::Line,
            ChartType::Pie,
            ChartType::Scatter,
        ] {
            let spec = vega_lite_spec(&node(chart));
            let opens = spec.matches('{').count();
            let closes = spec.matches('}').count();
            assert_eq!(opens, closes, "{chart}: unbalanced braces");
            assert_eq!(spec.matches('[').count(), spec.matches(']').count());
            assert!(!spec.chars().any(|c| (c as u32) < 0x20));
        }
    }
}
