//! The decision rules of §V-A: transformation rules, sorting rules, and
//! visualization rules. These capture "meaningful" operations so the
//! rule-based enumeration (the `R` configurations of Figure 12) never
//! generates visualizations a human would never consider.

use deepeye_data::{correlation, DataType, Table};
use deepeye_query::{Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery};

/// Minimum |correlation| between two numeric columns for the visualization
/// rule "T(X)=Num, T(Y)=Num, (X,Y) correlated → scatter" to fire.
pub const SCATTER_CORRELATION_THRESHOLD: f64 = 0.5;

/// Transformation rules (§V-A.1): which transforms may be applied to an
/// x-column of the given type.
///
/// - categorical: group only;
/// - numerical: bin only (default equi-width buckets or the UDF splitter);
/// - temporal: group or bin by any calendar unit.
pub fn applicable_transforms(x_type: DataType) -> Vec<Transform> {
    match x_type {
        DataType::Categorical => vec![Transform::Group],
        DataType::Numerical => vec![
            Transform::Bin(BinStrategy::Default),
            Transform::Bin(BinStrategy::Udf("sign".to_owned())),
        ],
        DataType::Temporal => {
            let mut t = vec![Transform::Group];
            t.extend(
                deepeye_data::TimeUnit::ALL
                    .into_iter()
                    .map(|u| Transform::Bin(BinStrategy::Unit(u))),
            );
            t
        }
    }
}

/// Aggregation half of the transformation rules: AGG = {AVG, SUM, CNT} when
/// Y is numerical, CNT only otherwise.
pub fn applicable_aggregates(y_type: Option<DataType>) -> Vec<Aggregate> {
    match y_type {
        Some(DataType::Numerical) => vec![Aggregate::Avg, Aggregate::Sum, Aggregate::Cnt],
        _ => vec![Aggregate::Cnt],
    }
}

/// The data type of X' after a transform is applied to an x-column of type
/// `x_type`. Grouping preserves the type; interval bins keep a numeric
/// scale; the sign UDF yields categories; calendar bins keep time.
pub fn transformed_x_type(x_type: DataType, transform: &Transform) -> DataType {
    match transform {
        Transform::None | Transform::Group => x_type,
        Transform::Bin(BinStrategy::Default) | Transform::Bin(BinStrategy::IntoBuckets(_)) => {
            DataType::Numerical
        }
        Transform::Bin(BinStrategy::Udf(_)) => DataType::Categorical,
        Transform::Bin(BinStrategy::Unit(_)) => DataType::Temporal,
    }
}

/// Visualization rules (§V-A.3): which chart types suit (T(X'), numeric Y').
///
/// - Cat/Num → bar, pie;
/// - Num/Num → line, bar; scatter additionally when correlated;
/// - Tem/Num → line.
pub fn applicable_charts(x_prime_type: DataType, correlated: bool) -> Vec<ChartType> {
    match x_prime_type {
        DataType::Categorical => vec![ChartType::Bar, ChartType::Pie],
        DataType::Numerical => {
            let mut c = vec![ChartType::Line, ChartType::Bar];
            if correlated {
                c.push(ChartType::Scatter);
            }
            c
        }
        DataType::Temporal => vec![ChartType::Line],
    }
}

/// Sorting rules (§V-A.2): numerical/temporal x-scales may be sorted by X';
/// the (always numerical) aggregate may be sorted by Y'; not sorting is
/// always allowed.
pub fn applicable_orders(x_prime_type: DataType) -> Vec<SortOrder> {
    match x_prime_type {
        DataType::Categorical => vec![SortOrder::None, SortOrder::ByY],
        DataType::Numerical | DataType::Temporal => {
            vec![SortOrder::None, SortOrder::ByX, SortOrder::ByY]
        }
    }
}

/// Generate the rule-based candidate queries for a table: every query the
/// rules of §V-A consider potentially meaningful (the `R` enumeration mode).
/// Includes both two-column and one-column candidates, plus the raw
/// (untransformed) numeric charts that the visualization rules admit
/// directly (e.g. the scatter of Figure 1(a)).
pub fn rule_based_queries(table: &Table) -> Vec<VisQuery> {
    let mut out = Vec::new();
    let columns = table.columns();

    // Two-column candidates.
    for x_col in columns {
        for y_col in columns {
            if std::ptr::eq(x_col, y_col) {
                continue;
            }
            let (x_type, y_type) = (x_col.data_type(), y_col.data_type());

            // Raw charts: only numeric/temporal x against numeric y.
            if y_type == DataType::Numerical && x_type != DataType::Categorical {
                let correlated = x_type == DataType::Numerical && {
                    let xs = x_col.numbers();
                    let ys = y_col.numbers();
                    correlation(&xs, &ys).strength() >= SCATTER_CORRELATION_THRESHOLD
                };
                let raw_charts = match x_type {
                    DataType::Numerical => applicable_charts(DataType::Numerical, correlated),
                    DataType::Temporal => applicable_charts(DataType::Temporal, false),
                    DataType::Categorical => unreachable!("filtered above"),
                };
                for chart in raw_charts {
                    // A raw bar over thousands of rows is never meaningful;
                    // bars come from transforms. Keep line/scatter raw.
                    if chart == ChartType::Bar {
                        continue;
                    }
                    for order in [SortOrder::None, SortOrder::ByX] {
                        out.push(VisQuery {
                            chart,
                            x: x_col.name().to_owned(),
                            y: Some(y_col.name().to_owned()),
                            transform: Transform::None,
                            aggregate: Aggregate::Raw,
                            order,
                        });
                        // Deduplicate: raw scatter ignores order semantics.
                        if chart == ChartType::Scatter {
                            break;
                        }
                    }
                }
            }

            // Transformed charts.
            for transform in applicable_transforms(x_type) {
                let x_prime = transformed_x_type(x_type, &transform);
                for aggregate in applicable_aggregates(Some(y_type)) {
                    for chart in applicable_charts(x_prime, false) {
                        for order in applicable_orders(x_prime) {
                            out.push(VisQuery {
                                chart,
                                x: x_col.name().to_owned(),
                                y: Some(y_col.name().to_owned()),
                                transform: transform.clone(),
                                aggregate,
                                order,
                            });
                        }
                    }
                }
            }
        }
    }

    // One-column candidates: group/bin the column and count.
    for x_col in columns {
        let x_type = x_col.data_type();
        for transform in applicable_transforms(x_type) {
            let x_prime = transformed_x_type(x_type, &transform);
            for chart in applicable_charts(x_prime, false) {
                for order in applicable_orders(x_prime) {
                    out.push(VisQuery {
                        chart,
                        x: x_col.name().to_owned(),
                        y: None,
                        transform: transform.clone(),
                        aggregate: Aggregate::Cnt,
                        order,
                    });
                }
            }
        }
    }

    out
}

/// Check whether a single query conforms to the rules (used to filter the
/// exhaustive enumeration and in tests to cross-validate the generator).
pub fn passes_rules(table: &Table, query: &VisQuery) -> bool {
    let Some(x_col) = table.column_by_name(&query.x) else {
        return false;
    };
    let x_type = x_col.data_type();
    let y_type = query
        .y
        .as_ref()
        .and_then(|y| table.column_by_name(y))
        .map(|c| c.data_type());
    if query.y.is_some() && y_type.is_none() {
        return false;
    }

    match &query.transform {
        Transform::None => {
            if query.aggregate != Aggregate::Raw {
                return false;
            }
            let Some(y_type) = y_type else { return false };
            if y_type != DataType::Numerical || x_type == DataType::Categorical {
                return false;
            }
            let correlated = x_type == DataType::Numerical && {
                let xs = x_col.numbers();
                let ys = table
                    .column_by_name(query.y.as_ref().expect("checked above"))
                    .map(|c| c.numbers())
                    .unwrap_or_default();
                correlation(&xs, &ys).strength() >= SCATTER_CORRELATION_THRESHOLD
            };
            let charts = applicable_charts(x_type, correlated);
            charts.contains(&query.chart)
                && query.chart != ChartType::Bar
                && matches!(query.order, SortOrder::None | SortOrder::ByX)
        }
        transform => {
            if !applicable_transforms(x_type).contains(transform) {
                return false;
            }
            let allowed_aggs = match query.y {
                Some(_) => applicable_aggregates(y_type),
                None => vec![Aggregate::Cnt],
            };
            if !allowed_aggs.contains(&query.aggregate) {
                return false;
            }
            let x_prime = transformed_x_type(x_type, transform);
            applicable_charts(x_prime, false).contains(&query.chart)
                && applicable_orders(x_prime).contains(&query.order)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{parse_timestamp, Column, TableBuilder};

    fn mixed_table() -> Table {
        let ts: Vec<_> = (1..=4)
            .map(|d| parse_timestamp(&format!("2015-01-0{d}")).unwrap())
            .collect();
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0])
            .column(Column::temporal("scheduled", ts))
            .build()
            .unwrap()
    }

    #[test]
    fn transform_rules_by_type() {
        assert_eq!(
            applicable_transforms(DataType::Categorical),
            vec![Transform::Group]
        );
        let num = applicable_transforms(DataType::Numerical);
        assert!(num.iter().all(|t| matches!(t, Transform::Bin(_))));
        let tem = applicable_transforms(DataType::Temporal);
        assert!(tem.contains(&Transform::Group));
        assert_eq!(tem.len(), 8); // group + 7 calendar units
    }

    #[test]
    fn aggregate_rules_by_y_type() {
        assert_eq!(
            applicable_aggregates(Some(DataType::Numerical)),
            vec![Aggregate::Avg, Aggregate::Sum, Aggregate::Cnt]
        );
        assert_eq!(
            applicable_aggregates(Some(DataType::Categorical)),
            vec![Aggregate::Cnt]
        );
        assert_eq!(
            applicable_aggregates(Some(DataType::Temporal)),
            vec![Aggregate::Cnt]
        );
        assert_eq!(applicable_aggregates(None), vec![Aggregate::Cnt]);
    }

    #[test]
    fn visualization_rules_match_paper() {
        assert_eq!(
            applicable_charts(DataType::Categorical, false),
            vec![ChartType::Bar, ChartType::Pie]
        );
        assert_eq!(
            applicable_charts(DataType::Numerical, false),
            vec![ChartType::Line, ChartType::Bar]
        );
        assert!(applicable_charts(DataType::Numerical, true).contains(&ChartType::Scatter));
        assert_eq!(
            applicable_charts(DataType::Temporal, false),
            vec![ChartType::Line]
        );
    }

    #[test]
    fn sorting_rules_match_paper() {
        // Categorical x cannot be sorted by X.
        assert!(!applicable_orders(DataType::Categorical).contains(&SortOrder::ByX));
        assert!(applicable_orders(DataType::Categorical).contains(&SortOrder::ByY));
        assert!(applicable_orders(DataType::Temporal).contains(&SortOrder::ByX));
    }

    #[test]
    fn transformed_type_tracking() {
        assert_eq!(
            transformed_x_type(DataType::Numerical, &Transform::Bin(BinStrategy::Default)),
            DataType::Numerical
        );
        assert_eq!(
            transformed_x_type(
                DataType::Numerical,
                &Transform::Bin(BinStrategy::Udf("sign".into()))
            ),
            DataType::Categorical
        );
        assert_eq!(
            transformed_x_type(
                DataType::Temporal,
                &Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Hour))
            ),
            DataType::Temporal
        );
        assert_eq!(
            transformed_x_type(DataType::Categorical, &Transform::Group),
            DataType::Categorical
        );
    }

    #[test]
    fn generator_output_all_passes_filter() {
        let t = mixed_table();
        let queries = rule_based_queries(&t);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(
                passes_rules(&t, q),
                "generated query fails its own rules: {q:?}"
            );
        }
    }

    #[test]
    fn generator_is_much_smaller_than_raw_space() {
        let t = mixed_table();
        let rule_count = rule_based_queries(&t).len();
        let raw_count = deepeye_query::two_column_space_size(t.column_count())
            + deepeye_query::one_column_space_size(t.column_count());
        assert!(
            rule_count * 4 < raw_count,
            "rules should prune most of the space: {rule_count} vs {raw_count}"
        );
    }

    #[test]
    fn example_7_queries_are_admitted() {
        // GROUP(carrier), AVG(passengers-like) → bar (Figure 5(b)).
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("delay".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        assert!(passes_rules(&t, &q));
        // BIN(scheduled) BY HOUR, AVG(delay) → line (Figure 1(c)).
        let q = VisQuery {
            chart: ChartType::Line,
            x: "scheduled".into(),
            y: Some("delay".into()),
            transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Hour)),
            aggregate: Aggregate::Avg,
            order: SortOrder::ByX,
        };
        assert!(passes_rules(&t, &q));
    }

    #[test]
    fn bad_queries_are_rejected() {
        let t = mixed_table();
        // Binning a categorical column.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "carrier".into(),
                y: Some("delay".into()),
                transform: Transform::Bin(BinStrategy::Default),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // AVG over a categorical y.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "delay".into(),
                y: Some("carrier".into()),
                transform: Transform::Bin(BinStrategy::Default),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // Pie over a temporal x-scale.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Pie,
                x: "scheduled".into(),
                y: Some("delay".into()),
                transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Day)),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // Sorting a categorical x-scale by X.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "carrier".into(),
                y: Some("delay".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Avg,
                order: SortOrder::ByX,
            }
        ));
        // Unknown column.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "nope".into(),
                y: None,
                transform: Transform::Group,
                aggregate: Aggregate::Cnt,
                order: SortOrder::None,
            }
        ));
    }

    #[test]
    fn scatter_requires_correlation() {
        // delay and a correlated copy.
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(f64::from))
            .numeric("b", (0..50).map(|i| f64::from(i) * 2.0 + 1.0))
            .numeric("noise", (0..50).map(|i| f64::from((i * 7919) % 97)))
            .build()
            .unwrap();
        let scatter_ab = VisQuery {
            chart: ChartType::Scatter,
            x: "a".into(),
            y: Some("b".into()),
            transform: Transform::None,
            aggregate: Aggregate::Raw,
            order: SortOrder::None,
        };
        assert!(passes_rules(&t, &scatter_ab));
        let scatter_noise = VisQuery {
            y: Some("noise".into()),
            ..scatter_ab.clone()
        };
        assert!(!passes_rules(&t, &scatter_noise));
        // The generator agrees.
        let queries = rule_based_queries(&t);
        assert!(queries.iter().any(|q| q == &scatter_ab));
        assert!(!queries.iter().any(|q| q.chart == ChartType::Scatter
            && q.x == "a"
            && q.y.as_deref() == Some("noise")));
    }
}
