//! The decision rules of §V-A: transformation rules, sorting rules, and
//! visualization rules. These capture "meaningful" operations so the
//! rule-based enumeration (the `R` configurations of Figure 12) never
//! generates visualizations a human would never consider.
//!
//! The type-level legality tables (`applicable_*`, [`transformed_x_type`])
//! live with the language in [`deepeye_query::sema`] and are re-exported
//! here; this module keeps the enumerator built on top of them and
//! [`passes_rules`], the single-query filter, which is a thin wrapper over
//! the semantic analyzer: a query passes the rules exactly when
//! [`sema::analyze`] returns no diagnostics at all (neither executor
//! errors nor §V-A meaningfulness warnings).

use deepeye_data::{correlation, DataType, Table};
use deepeye_query::sema;
use deepeye_query::{Aggregate, ChartType, SortOrder, Transform, VisQuery};

pub use deepeye_query::sema::{
    applicable_aggregates, applicable_charts, applicable_orders, applicable_transforms,
    transformed_x_type, SCATTER_CORRELATION_THRESHOLD,
};

/// Generate the rule-based candidate queries for a table: every query the
/// rules of §V-A consider potentially meaningful (the `R` enumeration mode).
/// Includes both two-column and one-column candidates, plus the raw
/// (untransformed) numeric charts that the visualization rules admit
/// directly (e.g. the scatter of Figure 1(a)).
pub fn rule_based_queries(table: &Table) -> Vec<VisQuery> {
    let mut out = Vec::new();
    let columns = table.columns();

    // Two-column candidates.
    for x_col in columns {
        for y_col in columns {
            if std::ptr::eq(x_col, y_col) {
                continue;
            }
            let (x_type, y_type) = (x_col.data_type(), y_col.data_type());

            // Raw charts: only numeric/temporal x against numeric y.
            if y_type == DataType::Numerical && x_type != DataType::Categorical {
                let correlated = x_type == DataType::Numerical && {
                    let xs = x_col.numbers();
                    let ys = y_col.numbers();
                    correlation(&xs, &ys).strength() >= SCATTER_CORRELATION_THRESHOLD
                };
                let raw_charts = match x_type {
                    DataType::Numerical => applicable_charts(DataType::Numerical, correlated),
                    DataType::Temporal => applicable_charts(DataType::Temporal, false),
                    DataType::Categorical => unreachable!("filtered above"),
                };
                for chart in raw_charts {
                    // A raw bar over thousands of rows is never meaningful;
                    // bars come from transforms. Keep line/scatter raw.
                    if chart == ChartType::Bar {
                        continue;
                    }
                    for order in [SortOrder::None, SortOrder::ByX] {
                        out.push(VisQuery {
                            chart,
                            x: x_col.name().to_owned(),
                            y: Some(y_col.name().to_owned()),
                            transform: Transform::None,
                            aggregate: Aggregate::Raw,
                            order,
                        });
                        // Deduplicate: raw scatter ignores order semantics.
                        if chart == ChartType::Scatter {
                            break;
                        }
                    }
                }
            }

            // Transformed charts.
            for transform in applicable_transforms(x_type) {
                let x_prime = transformed_x_type(x_type, &transform);
                for aggregate in applicable_aggregates(Some(y_type)) {
                    for chart in applicable_charts(x_prime, false) {
                        for order in applicable_orders(x_prime) {
                            out.push(VisQuery {
                                chart,
                                x: x_col.name().to_owned(),
                                y: Some(y_col.name().to_owned()),
                                transform: transform.clone(),
                                aggregate,
                                order,
                            });
                        }
                    }
                }
            }
        }
    }

    // One-column candidates: group/bin the column and count.
    for x_col in columns {
        let x_type = x_col.data_type();
        for transform in applicable_transforms(x_type) {
            let x_prime = transformed_x_type(x_type, &transform);
            for chart in applicable_charts(x_prime, false) {
                for order in applicable_orders(x_prime) {
                    out.push(VisQuery {
                        chart,
                        x: x_col.name().to_owned(),
                        y: None,
                        transform: transform.clone(),
                        aggregate: Aggregate::Cnt,
                        order,
                    });
                }
            }
        }
    }

    debug_assert!(
        out.iter()
            .all(|q| sema::analyze(table, q, sema::default_registry()).is_empty()),
        "rule_based_queries emitted a candidate the semantic analyzer flags"
    );
    out
}

/// Check whether a single query conforms to the rules (used to filter the
/// exhaustive enumeration and in tests to cross-validate the generator).
///
/// Thin wrapper over the static analyzer: a query passes exactly when
/// [`sema::analyze`] is silent — no fatal diagnostics (the executor would
/// reject it) and no warnings (the §V-A rules would prune it).
pub fn passes_rules(table: &Table, query: &VisQuery) -> bool {
    sema::analyze(table, query, sema::default_registry()).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{parse_timestamp, Column, TableBuilder};
    use deepeye_query::BinStrategy;

    fn mixed_table() -> Table {
        let ts: Vec<_> = (1..=4)
            .map(|d| parse_timestamp(&format!("2015-01-0{d}")).unwrap())
            .collect();
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0])
            .column(Column::temporal("scheduled", ts))
            .build()
            .unwrap()
    }

    #[test]
    fn transform_rules_by_type() {
        assert_eq!(
            applicable_transforms(DataType::Categorical),
            vec![Transform::Group]
        );
        let num = applicable_transforms(DataType::Numerical);
        assert!(num.iter().all(|t| matches!(t, Transform::Bin(_))));
        let tem = applicable_transforms(DataType::Temporal);
        assert!(tem.contains(&Transform::Group));
        assert_eq!(tem.len(), 8); // group + 7 calendar units
    }

    #[test]
    fn aggregate_rules_by_y_type() {
        assert_eq!(
            applicable_aggregates(Some(DataType::Numerical)),
            vec![Aggregate::Avg, Aggregate::Sum, Aggregate::Cnt]
        );
        assert_eq!(
            applicable_aggregates(Some(DataType::Categorical)),
            vec![Aggregate::Cnt]
        );
        assert_eq!(
            applicable_aggregates(Some(DataType::Temporal)),
            vec![Aggregate::Cnt]
        );
        assert_eq!(applicable_aggregates(None), vec![Aggregate::Cnt]);
    }

    #[test]
    fn visualization_rules_match_paper() {
        assert_eq!(
            applicable_charts(DataType::Categorical, false),
            vec![ChartType::Bar, ChartType::Pie]
        );
        assert_eq!(
            applicable_charts(DataType::Numerical, false),
            vec![ChartType::Line, ChartType::Bar]
        );
        assert!(applicable_charts(DataType::Numerical, true).contains(&ChartType::Scatter));
        assert_eq!(
            applicable_charts(DataType::Temporal, false),
            vec![ChartType::Line]
        );
    }

    #[test]
    fn sorting_rules_match_paper() {
        // Categorical x cannot be sorted by X.
        assert!(!applicable_orders(DataType::Categorical).contains(&SortOrder::ByX));
        assert!(applicable_orders(DataType::Categorical).contains(&SortOrder::ByY));
        assert!(applicable_orders(DataType::Temporal).contains(&SortOrder::ByX));
    }

    #[test]
    fn transformed_type_tracking() {
        assert_eq!(
            transformed_x_type(DataType::Numerical, &Transform::Bin(BinStrategy::Default)),
            DataType::Numerical
        );
        assert_eq!(
            transformed_x_type(
                DataType::Numerical,
                &Transform::Bin(BinStrategy::Udf("sign".into()))
            ),
            DataType::Categorical
        );
        assert_eq!(
            transformed_x_type(
                DataType::Temporal,
                &Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Hour))
            ),
            DataType::Temporal
        );
        assert_eq!(
            transformed_x_type(DataType::Categorical, &Transform::Group),
            DataType::Categorical
        );
    }

    #[test]
    fn generator_output_all_passes_filter() {
        let t = mixed_table();
        let queries = rule_based_queries(&t);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(
                passes_rules(&t, q),
                "generated query fails its own rules: {q:?}"
            );
        }
    }

    #[test]
    fn generator_is_much_smaller_than_raw_space() {
        let t = mixed_table();
        let rule_count = rule_based_queries(&t).len();
        let raw_count = deepeye_query::two_column_space_size(t.column_count())
            + deepeye_query::one_column_space_size(t.column_count());
        assert!(
            rule_count * 4 < raw_count,
            "rules should prune most of the space: {rule_count} vs {raw_count}"
        );
    }

    #[test]
    fn example_7_queries_are_admitted() {
        // GROUP(carrier), AVG(passengers-like) → bar (Figure 5(b)).
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("delay".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        assert!(passes_rules(&t, &q));
        // BIN(scheduled) BY HOUR, AVG(delay) → line (Figure 1(c)).
        let q = VisQuery {
            chart: ChartType::Line,
            x: "scheduled".into(),
            y: Some("delay".into()),
            transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Hour)),
            aggregate: Aggregate::Avg,
            order: SortOrder::ByX,
        };
        assert!(passes_rules(&t, &q));
    }

    #[test]
    fn bad_queries_are_rejected() {
        let t = mixed_table();
        // Binning a categorical column.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "carrier".into(),
                y: Some("delay".into()),
                transform: Transform::Bin(BinStrategy::Default),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // AVG over a categorical y.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "delay".into(),
                y: Some("carrier".into()),
                transform: Transform::Bin(BinStrategy::Default),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // Pie over a temporal x-scale.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Pie,
                x: "scheduled".into(),
                y: Some("delay".into()),
                transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Day)),
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            }
        ));
        // Sorting a categorical x-scale by X.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "carrier".into(),
                y: Some("delay".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Avg,
                order: SortOrder::ByX,
            }
        ));
        // Unknown column.
        assert!(!passes_rules(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "nope".into(),
                y: None,
                transform: Transform::Group,
                aggregate: Aggregate::Cnt,
                order: SortOrder::None,
            }
        ));
    }

    #[test]
    fn scatter_requires_correlation() {
        // delay and a correlated copy.
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(f64::from))
            .numeric("b", (0..50).map(|i| f64::from(i) * 2.0 + 1.0))
            .numeric("noise", (0..50).map(|i| f64::from((i * 7919) % 97)))
            .build()
            .unwrap();
        let scatter_ab = VisQuery {
            chart: ChartType::Scatter,
            x: "a".into(),
            y: Some("b".into()),
            transform: Transform::None,
            aggregate: Aggregate::Raw,
            order: SortOrder::None,
        };
        assert!(passes_rules(&t, &scatter_ab));
        let scatter_noise = VisQuery {
            y: Some("noise".into()),
            ..scatter_ab.clone()
        };
        assert!(!passes_rules(&t, &scatter_noise));
        // The generator agrees.
        let queries = rule_based_queries(&t);
        assert!(queries.iter().any(|q| q == &scatter_ab));
        assert!(!queries.iter().any(|q| q.chart == ChartType::Scatter
            && q.x == "a"
            && q.y.as_deref() == Some("noise")));
    }
}
