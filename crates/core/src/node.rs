//! Visualization nodes (Definition 1 of the paper): the unit the
//! recognizer classifies and the rankers order.

use crate::features::NodeFeatures;
use deepeye_data::{DataType, Table};
use deepeye_obs::OpCosts;
use deepeye_query::{
    execute_costed, execute_with, ChartData, ChartType, QueryError, UdfRegistry, VisQuery,
};

/// A visualization node: "the original data X, Y, the transformed data
/// X', Y', features F, and the visualization type T" (Def. 1). We carry
/// the query (which identifies X, Y and the transform), the executed chart
/// (X', Y'), and the extracted features.
#[derive(Debug, Clone, PartialEq)]
pub struct VisNode {
    pub query: VisQuery,
    pub data: ChartData,
    pub features: NodeFeatures,
}

impl VisNode {
    /// Execute `query` against `table` and extract features; `Err` when the
    /// query is invalid for the data (those candidates are simply not
    /// nodes).
    pub fn build(table: &Table, query: VisQuery, udfs: &UdfRegistry) -> Result<Self, QueryError> {
        let source_rows = table.row_count();
        let source_x_type = table
            .column_by_name(&query.x)
            .map(|c| c.data_type())
            .unwrap_or(DataType::Categorical);
        let data = execute_with(table, &query, udfs)?;
        let features = NodeFeatures::from_chart(&data, source_rows, source_x_type);
        Ok(VisNode {
            query,
            data,
            features,
        })
    }

    /// [`VisNode::build`], also returning the executor's per-operator
    /// work counts for this candidate (cost profiling). Failed builds
    /// still report the work done before the failure.
    pub fn build_costed(
        table: &Table,
        query: VisQuery,
        udfs: &UdfRegistry,
    ) -> (Result<Self, QueryError>, OpCosts) {
        let source_rows = table.row_count();
        let source_x_type = table
            .column_by_name(&query.x)
            .map(|c| c.data_type())
            .unwrap_or(DataType::Categorical);
        let (out, costs) = execute_costed(table, &query, udfs);
        let node = out.map(|data| {
            let features = NodeFeatures::from_chart(&data, source_rows, source_x_type);
            VisNode {
                query,
                data,
                features,
            }
        });
        (node, costs)
    }

    pub fn chart_type(&self) -> ChartType {
        self.query.chart
    }

    /// Column names this node visualizes (x, and y when present).
    pub fn columns(&self) -> Vec<&str> {
        let mut cols = vec![self.query.x.as_str()];
        if let Some(y) = &self.query.y {
            if y != &self.query.x {
                cols.push(y.as_str());
            }
        }
        cols
    }

    /// `|X'|`: cardinality of the transformed data.
    pub fn transformed_rows(&self) -> usize {
        self.features.transformed_rows()
    }

    /// `|X|`: cardinality of the original data.
    pub fn source_rows(&self) -> usize {
        self.features.source_rows
    }

    /// The 14-dimension ML feature vector.
    pub fn feature_vector(&self) -> Vec<f64> {
        self.features.to_vector()
    }

    /// Drop the materialized series, keeping the query and features.
    ///
    /// Recognition, the partial-order factors, and both rankers read only
    /// `features`, so experiments over very large candidate sets (e.g. the
    /// exhaustive enumeration of a 100k-row table) can slim nodes right
    /// after feature extraction to bound memory. A slimmed node can always
    /// be re-executed from its query.
    pub fn slim(&mut self) {
        self.data.series = deepeye_query::Series::Keyed(Vec::new());
    }

    /// Rough heap footprint of the materialized series and labels, for
    /// allocation attribution ([`deepeye_obs::Observer::alloc_many`] at
    /// the executor's arena points). An estimate — allocator slack and
    /// enum niche layout are not modeled — but deterministic, O(marks)
    /// cheap, and stable enough for stage-relative comparison.
    pub fn approx_heap_bytes(&self) -> u64 {
        let query_labels = self.query.x.len() + self.query.y.as_ref().map_or(0, String::len);
        self.data.approx_heap_bytes() + query_labels as u64
    }

    /// Stable identity string for deduplication, provenance records, and
    /// test assertions (shared with [`crate::provenance::query_id`] so
    /// never-built candidates live in the same id space).
    pub fn id(&self) -> String {
        crate::provenance::query_id(&self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{Aggregate, SortOrder, Transform};

    fn table() -> Table {
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0])
            .build()
            .unwrap()
    }

    fn group_avg() -> VisQuery {
        VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("delay".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        }
    }

    #[test]
    fn builds_node_with_features() {
        let node = VisNode::build(&table(), group_avg(), &UdfRegistry::default()).unwrap();
        assert_eq!(node.chart_type(), ChartType::Bar);
        assert_eq!(node.source_rows(), 4);
        assert_eq!(node.transformed_rows(), 3);
        assert_eq!(node.columns(), vec!["carrier", "delay"]);
        assert_eq!(node.feature_vector().len(), crate::features::FEATURE_DIM);
    }

    #[test]
    fn invalid_query_is_error() {
        let mut q = group_avg();
        q.x = "missing".into();
        assert!(VisNode::build(&table(), q, &UdfRegistry::default()).is_err());
    }

    #[test]
    fn one_column_node_columns() {
        let q = VisQuery {
            chart: ChartType::Pie,
            x: "carrier".into(),
            y: None,
            transform: Transform::Group,
            aggregate: Aggregate::Cnt,
            order: SortOrder::None,
        };
        let node = VisNode::build(&table(), q, &UdfRegistry::default()).unwrap();
        assert_eq!(node.columns(), vec!["carrier"]);
    }

    #[test]
    fn approx_heap_bytes_tracks_materialization() {
        let node = VisNode::build(&table(), group_avg(), &UdfRegistry::default()).unwrap();
        let full = node.approx_heap_bytes();
        assert!(full > 0, "materialized node has a footprint");
        let mut slimmed = node.clone();
        slimmed.slim();
        assert!(
            slimmed.approx_heap_bytes() < full,
            "slimming shrinks the estimate"
        );
    }

    #[test]
    fn id_is_discriminating() {
        let t = table();
        let a = VisNode::build(&t, group_avg(), &UdfRegistry::default()).unwrap();
        let mut q = group_avg();
        q.aggregate = Aggregate::Sum;
        let b = VisNode::build(&t, q, &UdfRegistry::default()).unwrap();
        assert_ne!(a.id(), b.id());
    }
}
