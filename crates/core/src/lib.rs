//! # deepeye-core
//!
//! The core of DeepEye (Luo, Qin, Tang, Li — *DeepEye: Towards Automatic
//! Data Visualization*, ICDE 2018): given a relational table, decide which
//! candidate visualizations are good (*recognition*), which of two is
//! better (*ranking*), and which k to show (*selection*).
//!
//! The pieces, following the paper's structure:
//!
//! - [`features`] — the 14-dimension feature vector of §III;
//! - [`node`] — visualization nodes (Definition 1);
//! - [`recognition`] — the binary classifier (decision tree / Bayes / SVM);
//! - [`partial_order`] — the factors **M**, **Q**, **W** (Eqs. 1–8) and
//!   dominance (Definition 2);
//! - [`graph`] — the dominance graph, score propagation, and Algorithm 1,
//!   with the quick-sort partition pruning of §IV-C;
//! - [`ranking`] — partial-order, learning-to-rank, and HybridRank (§IV-D);
//! - [`rules`] — the transformation / sorting / visualization rules of §V-A;
//! - [`progressive`] — the tournament-based progressive top-k of §V-B;
//! - [`deepeye`] — the assembled online pipeline of Figure 4.
//!
//! ```
//! use deepeye_core::DeepEye;
//! use deepeye_data::table_from_csv_str;
//!
//! let table = table_from_csv_str(
//!     "sales",
//!     "region,revenue\nN,10\nS,20\nE,15\nW,30\nN,12\nS,22\n",
//! ).unwrap();
//! let recommendations = DeepEye::with_defaults().recommend(&table, 3);
//! assert!(!recommendations.is_empty());
//! println!("{}", recommendations[0].node.data); // ASCII sketch
//! ```

#![forbid(unsafe_code)]

pub mod deepeye;
pub mod deviation;
pub mod features;
pub mod graph;
pub mod keyword;
pub mod multi_select;
pub mod node;
pub mod parallel;
pub mod partial_order;
pub mod progressive;
pub mod provenance;
pub mod range_tree;
pub mod ranking;
pub mod recognition;
pub mod render;
pub mod rules;
pub mod similarity;
pub mod svg;

pub use deepeye::{DeepEye, DeepEyeConfig, EnumerationMode, RankingMethod, Recommendation};
pub use deviation::{
    deviation_between, deviation_from_uniform, rank_by_deviation, DeviationMetric,
};
pub use features::{pair_feature_vector, ColumnFeatures, NodeFeatures, FEATURE_DIM, FEATURE_NAMES};
pub use graph::{
    partial_order_log_scores, streaming_log_scores, DominanceGraph, STREAMING_THRESHOLD,
};
pub use keyword::{keyword_search, Intent, KeywordQuery};
pub use multi_select::{
    multi_y_candidates, recommend_multi, recommend_multi_y, xyz_candidates, MultiRecommendation,
    MultiYRecommendation, AXIS_COMPAT_THRESHOLD, MAX_SERIES,
};
pub use node::VisNode;
pub use parallel::{
    build_nodes_parallel, build_nodes_parallel_costed, build_nodes_parallel_observed,
    build_nodes_serial_costed, build_nodes_serial_observed,
};
pub use partial_order::{compute_factor_breakdowns, compute_factors, FactorBreakdown, Factors};
pub use progressive::{
    canonical_candidates, exhaustive_top_k, exhaustive_top_k_parallel, ProgressiveSelector,
    ScoredNode, SelectionStats,
};
pub use provenance::{
    query_id, validate_provenance_json, ClassifierEvidence, Explanation, Outcome, Provenance,
    ProvenanceCaps, ProvenanceCounts, ProvenanceLog, ProvenanceSummary,
};
pub use range_tree::{build_with_range_tree, RangeTree3};
pub use ranking::{
    rank_by_partial_order, rank_by_partial_order_observed, HybridRanker, LtrRanker, RankingExample,
};
pub use recognition::{ClassifierKind, LabeledExample, Recognizer};
pub use render::vega_lite_spec;
pub use similarity::{find_similar_to_chart, find_similar_to_shape, shape_distance, SimilarityHit};
pub use svg::{render_multi_svg, render_svg, SvgOptions};
