//! The dominance graph G(V, E) of §IV-C and Algorithm 1.
//!
//! Nodes are valid visualizations; a directed edge `u → v` with the weight
//! of Eq. 9 exists when `u ≻ v` (strictly better on the partial order).
//! Scores propagate as `S(v) = Σ_{(v,u)∈E} (w(v,u) + S(u))` and the top-k
//! nodes are those with the largest scores.

use crate::partial_order::Factors;

/// Dominance graph over a set of factor triples.
#[derive(Debug, Clone, PartialEq)]
pub struct DominanceGraph {
    factors: Vec<Factors>,
    /// Out-edges: `edges[u]` lists `(v, weight)` with `u ≻ v`.
    edges: Vec<Vec<(usize, f64)>>,
    /// Number of pairwise factor comparisons performed (for the pruning
    /// ablation bench).
    comparisons: usize,
}

impl DominanceGraph {
    /// Build by comparing every ordered pair — the baseline the paper calls
    /// "expensive to enumerate every node pair".
    pub fn build_naive(factors: &[Factors]) -> Self {
        let n = factors.len();
        let mut edges = vec![Vec::new(); n];
        let mut comparisons = 0;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                comparisons += 1;
                if factors[u].strictly_dominates(&factors[v]) {
                    edges[u].push((v, factors[u].edge_weight(&factors[v])));
                }
            }
        }
        DominanceGraph {
            factors: factors.to_vec(),
            edges,
            comparisons,
        }
    }

    /// Build with the paper's quick-sort-style pruning: pick a pivot `v`,
    /// partition the rest into better (`v^≺`), worse (`v^≻`), and
    /// incomparable; every `(better, worse)` pair is then connected by
    /// transitivity without an explicit comparison.
    pub fn build_pruned(factors: &[Factors]) -> Self {
        let n = factors.len();
        let mut edges = vec![Vec::new(); n];
        let mut comparisons = 0usize;
        let all: Vec<usize> = (0..n).collect();
        partition_recurse(factors, &all, &mut edges, &mut comparisons);
        DominanceGraph {
            factors: factors.to_vec(),
            edges,
            comparisons,
        }
    }

    /// Assemble a graph from precomputed edges (used by the range-tree
    /// builder in [`crate::range_tree`]).
    pub(crate) fn from_edges(factors: Vec<Factors>, edges: Vec<Vec<(usize, f64)>>) -> Self {
        debug_assert_eq!(factors.len(), edges.len());
        DominanceGraph {
            factors,
            edges,
            comparisons: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.factors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    pub fn comparisons(&self) -> usize {
        self.comparisons
    }

    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Does the edge `u → v` exist?
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges[u].iter().any(|&(t, _)| t == v)
    }

    /// Outgoing dominance edges of `u` as `(target, Eq. 9 weight)` pairs.
    /// Empty for out-of-range indices, so provenance readers need no
    /// bounds bookkeeping.
    pub fn out_edges(&self, u: usize) -> &[(usize, f64)] {
        self.edges.get(u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The score S(v) of every node: 0 for sinks, otherwise the sum of
    /// `w(v, u) + S(u)` over out-edges. Returned in linear scale; on a
    /// densely dominated set the recurrence grows exponentially with chain
    /// length and may saturate to `+inf` — rank with [`Self::log_scores`]
    /// (which [`Self::top_k`] uses) when that matters.
    pub fn scores(&self) -> Vec<f64> {
        self.log_scores().into_iter().map(f64::exp).collect()
    }

    /// `ln S(v)` for every node (`-inf` for sinks). The log-space
    /// computation keeps the induced ranking exact even where linear S
    /// overflows: `ln Σ (w + S(u)) = logsumexp(logaddexp(ln w, ln S(u)))`.
    pub fn log_scores(&self) -> Vec<f64> {
        let n = self.len();
        let mut memo: Vec<Option<f64>> = vec![None; n];
        // Iterative DFS to avoid recursion depth issues on long chains.
        for start in 0..n {
            if memo[start].is_some() {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                if memo[node].is_some() {
                    stack.pop();
                    continue;
                }
                if *child < self.edges[node].len() {
                    let next = self.edges[node][*child].0;
                    *child += 1;
                    if memo[next].is_none() {
                        stack.push((next, 0));
                    }
                } else {
                    // logsumexp over `ln(w) ⊕ ln S(u)` per edge.
                    let terms: Vec<f64> = self.edges[node]
                        .iter()
                        .map(|&(u, w)| {
                            let lw = if w > 0.0 { w.ln() } else { f64::NEG_INFINITY };
                            // Children are resolved before their parents by
                            // the DFS above; an unresolved child contributes
                            // nothing (ln 0).
                            log_add(lw, memo[u].unwrap_or(f64::NEG_INFINITY))
                        })
                        .collect();
                    memo[node] = Some(log_sum(&terms));
                    stack.pop();
                }
            }
        }
        memo.into_iter()
            .map(|s| s.unwrap_or(f64::NEG_INFINITY))
            .collect()
    }

    /// Algorithm 1: the indices of the top-k nodes by score, best first.
    /// Ties break toward the node with the larger factor sum, then by index
    /// (deterministic output).
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let scores = self.log_scores();
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| {
                    let fa = self.factors[a];
                    let fb = self.factors[b];
                    (fb.m + fb.q + fb.w).total_cmp(&(fa.m + fa.q + fa.w))
                })
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }

    /// Full ranking (top-k with k = n).
    pub fn ranking(&self) -> Vec<usize> {
        self.top_k(self.len())
    }
}

/// Compute `ln S(v)` for every node **without materializing the edge
/// set** — O(n²) time but O(n) memory, for candidate sets large enough
/// that the explicit dominance graph (quadratically many edges on densely
/// dominated sets) would not fit in memory.
///
/// Works by processing nodes in ascending factor-sum order, a valid
/// topological order of strict dominance (if `u ≻ v` then
/// `m+q+w` of `u` strictly exceeds `v`'s), and folding
/// `logaddexp(ln w(v,u), ln S(u))` for every already-scored node `u`
/// that `v` strictly dominates. Produces exactly the same scores as
/// [`DominanceGraph::log_scores`].
pub fn streaming_log_scores(factors: &[Factors]) -> Vec<f64> {
    let n = factors.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let sa = factors[a].m + factors[a].q + factors[a].w;
        let sb = factors[b].m + factors[b].q + factors[b].w;
        sa.total_cmp(&sb)
    });
    let mut log_s = vec![f64::NEG_INFINITY; n];
    for (pos, &v) in order.iter().enumerate() {
        let fv = factors[v];
        let mut acc = f64::NEG_INFINITY;
        // Only nodes earlier in sum order can be dominated by v.
        for &u in &order[..pos] {
            if fv.strictly_dominates(&factors[u]) {
                let w = fv.edge_weight(&factors[u]);
                let lw = if w > 0.0 { w.ln() } else { f64::NEG_INFINITY };
                acc = log_add(acc, log_add(lw, log_s[u]));
            }
        }
        log_s[v] = acc;
    }
    log_s
}

/// Node count above which [`partial_order_log_scores`] switches from
/// the explicit graph to the streaming scorer.
pub const STREAMING_THRESHOLD: usize = 4_000;

/// Partial-order scores for a factor set, choosing the memory-safe path
/// automatically. Returns `ln S(v)` per node.
pub fn partial_order_log_scores(factors: &[Factors]) -> Vec<f64> {
    if factors.len() > STREAMING_THRESHOLD {
        streaming_log_scores(factors)
    } else {
        DominanceGraph::build_pruned(factors).log_scores()
    }
}

/// `ln(e^a + e^b)` with proper `-inf` handling.
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln Σ e^{t_i}`; `-inf` for an empty slice (a sink's S = 0).
fn log_sum(terms: &[f64]) -> f64 {
    terms.iter().copied().fold(f64::NEG_INFINITY, log_add)
}

/// Recursive pivot partitioning. Adds the dominance edges *within* `set`.
fn partition_recurse(
    factors: &[Factors],
    set: &[usize],
    edges: &mut [Vec<(usize, f64)>],
    comparisons: &mut usize,
) {
    if set.len() < 2 {
        return;
    }
    // Brute force tiny sets: the bookkeeping outweighs the savings.
    if set.len() <= 8 {
        for (a, &u) in set.iter().enumerate() {
            for &v in set.iter().skip(a + 1) {
                *comparisons += 1;
                if factors[u].strictly_dominates(&factors[v]) {
                    edges[u].push((v, factors[u].edge_weight(&factors[v])));
                } else if factors[v].strictly_dominates(&factors[u]) {
                    edges[v].push((u, factors[v].edge_weight(&factors[u])));
                }
            }
        }
        return;
    }

    let pivot = set[set.len() / 2];
    let mut better = Vec::new(); // strictly dominate the pivot
    let mut worse = Vec::new(); // strictly dominated by the pivot
    let mut incomparable = Vec::new();
    for &v in set {
        if v == pivot {
            continue;
        }
        *comparisons += 1;
        if factors[v].strictly_dominates(&factors[pivot]) {
            edges[v].push((pivot, factors[v].edge_weight(&factors[pivot])));
            better.push(v);
        } else if factors[pivot].strictly_dominates(&factors[v]) {
            edges[pivot].push((v, factors[pivot].edge_weight(&factors[v])));
            worse.push(v);
        } else {
            incomparable.push(v);
        }
    }

    // Transitivity: every b ∈ better strictly dominates every w ∈ worse —
    // no comparison needed (b ≻ pivot ≻ w). Edge weights still come from
    // the factor difference, which is free to compute.
    for &b in &better {
        for &w in &worse {
            edges[b].push((w, factors[b].edge_weight(&factors[w])));
        }
    }

    // Cross pairs involving the incomparable set are not implied; resolve
    // them explicitly.
    for &i in &incomparable {
        for &other in better.iter().chain(&worse) {
            *comparisons += 1;
            if factors[i].strictly_dominates(&factors[other]) {
                edges[i].push((other, factors[i].edge_weight(&factors[other])));
            } else if factors[other].strictly_dominates(&factors[i]) {
                edges[other].push((i, factors[other].edge_weight(&factors[i])));
            }
        }
    }

    partition_recurse(factors, &better, edges, comparisons);
    partition_recurse(factors, &worse, edges, comparisons);
    partition_recurse(factors, &incomparable, edges, comparisons);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(m: f64, q: f64, w: f64) -> Factors {
        Factors { m, q, w }
    }

    /// The worked Example 5/6 of the paper: five nodes with known factors.
    /// Node order: 1(c), 1(d), 5(b), 5(c), 5(d).
    fn example_nodes() -> Vec<Factors> {
        vec![
            f(1.00, 0.99976, 0.89), // Figure 1(c)
            f(0.00, 0.99633, 0.52), // Figure 1(d)
            f(0.72, 0.99, 0.40),    // Figure 5(b)
            f(0.80, 0.99, 0.40),    // Figure 5(c) — dominates 5(b)
            f(0.30, 0.999, 0.60),   // Figure 5(d) — dominates 1(d)
        ]
    }

    #[test]
    fn example_6_edge_weight() {
        // w(1(c), 1(d)) from the paper: ((1−0) + (0.99976−0.99633) + (0.89−0.52))/3.
        let nodes = example_nodes();
        let w = nodes[0].edge_weight(&nodes[1]);
        assert!((w - 0.4578).abs() < 1e-4, "w={w}");
    }

    #[test]
    fn example_6_scores_and_topk() {
        let nodes = example_nodes();
        let g = DominanceGraph::build_naive(&nodes);
        // 1(c) ≻ 1(d); 5(d) ≻ 1(d); 5(c) ≻ 5(b).
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(4, 1));
        assert!(g.has_edge(3, 2));
        let scores = g.scores();
        // Sinks score zero.
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[2], 0.0);
        assert!(scores[0] > scores[4] && scores[4] > scores[3]);
        // Top-3 = 1(c), 5(d), 5(c) as in Example 6.
        assert_eq!(g.top_k(3), vec![0, 4, 3]);
    }

    #[test]
    fn pruned_equals_naive() {
        // Deterministic pseudo-random factor clouds of several sizes.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for n in [3usize, 10, 37, 120] {
            let factors: Vec<Factors> = (0..n).map(|_| f(next(), next(), next())).collect();
            let naive = DominanceGraph::build_naive(&factors);
            let pruned = DominanceGraph::build_pruned(&factors);
            assert_eq!(naive.edge_count(), pruned.edge_count(), "n={n}");
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(
                        naive.has_edge(u, v),
                        pruned.has_edge(u, v),
                        "edge {u}->{v}, n={n}"
                    );
                }
            }
            // Same ranking too.
            assert_eq!(naive.ranking(), pruned.ranking(), "n={n}");
        }
    }

    #[test]
    fn pruning_saves_comparisons_on_chains() {
        // A totally ordered chain is the best case for transitivity pruning.
        let factors: Vec<Factors> = (0..200)
            .map(|i| {
                let x = i as f64 / 200.0;
                f(x, x, x)
            })
            .collect();
        let naive = DominanceGraph::build_naive(&factors);
        let pruned = DominanceGraph::build_pruned(&factors);
        assert!(
            pruned.comparisons() * 2 < naive.comparisons(),
            "pruned {} vs naive {}",
            pruned.comparisons(),
            naive.comparisons()
        );
        assert_eq!(naive.edge_count(), pruned.edge_count());
    }

    #[test]
    fn scores_on_chain_accumulate() {
        // a ≻ b ≻ c: S(c)=0, S(b)=w(b,c), S(a)=w(a,b)+S(b)+w(a,c)+S(c).
        let factors = vec![f(1.0, 1.0, 1.0), f(0.5, 0.5, 0.5), f(0.0, 0.0, 0.0)];
        let g = DominanceGraph::build_naive(&factors);
        let s = g.scores();
        assert_eq!(s[2], 0.0);
        assert!((s[1] - 0.5).abs() < 1e-12);
        assert!((s[0] - (0.5 + (0.5 + 0.0) + 1.0)).abs() < 1e-12);
        assert_eq!(g.top_k(2), vec![0, 1]);
    }

    #[test]
    fn incomparable_nodes_tie_break_deterministically() {
        let factors = vec![f(1.0, 0.0, 0.0), f(0.0, 1.0, 0.0), f(0.0, 0.0, 1.0)];
        let g = DominanceGraph::build_naive(&factors);
        assert_eq!(g.edge_count(), 0);
        let order = g.ranking();
        assert_eq!(order, vec![0, 1, 2]); // all tie at S=0, index order
    }

    #[test]
    fn empty_and_singleton() {
        let g = DominanceGraph::build_pruned(&[]);
        assert!(g.is_empty());
        assert!(g.top_k(5).is_empty());
        let g = DominanceGraph::build_pruned(&[f(0.5, 0.5, 0.5)]);
        assert_eq!(g.top_k(5), vec![0]);
        assert_eq!(g.scores(), vec![0.0]);
    }

    #[test]
    fn equal_factors_produce_no_edges() {
        // ⪰ holds both ways but ≻ holds neither: no cycle, no edge.
        let factors = vec![f(0.5, 0.5, 0.5), f(0.5, 0.5, 0.5)];
        let g = DominanceGraph::build_naive(&factors);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let factors: Vec<Factors> = (0..2000)
            .map(|i| {
                let x = i as f64 / 2000.0;
                f(x, x, x)
            })
            .collect();
        let g = DominanceGraph::build_pruned(&factors);
        // Linear S overflows on a 2000-deep transitive chain, but the
        // log-space scores stay finite and the ranking stays exact.
        let log_scores = g.log_scores();
        assert!(log_scores[1..].iter().all(|s| s.is_finite()));
        assert_eq!(log_scores[0], f64::NEG_INFINITY); // the unique sink
        assert_eq!(g.top_k(1), vec![1999]);
        let ranking = g.ranking();
        // Full ranking is the exact reverse chain.
        assert!(ranking.windows(2).all(|w| w[0] > w[1]));
    }
}
