//! Parallel candidate generation. §VI-D notes that "the task of
//! visualization selection is trivially parallelizable"; this module
//! shards query execution and feature extraction across scoped std
//! threads (no runtime dependency needed — the work units are
//! independent table scans).

use crate::node::VisNode;
use deepeye_data::{DataType, Table};
use deepeye_obs::{CandidateCost, CostCollector, Observer, Op, OpCosts, SpanId, Stopwatch};
use deepeye_query::{Transform, UdfRegistry, VisQuery};
use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped by
/// the work size (no point spawning more threads than queries).
pub(crate) fn worker_count(work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(work_items).max(1)
}

/// Build visualization nodes for `queries` in parallel. Invalid queries
/// are skipped; output order matches input order (deterministic regardless
/// of thread count); duplicates by node id are removed keeping the first.
pub fn build_nodes_parallel(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
) -> Vec<VisNode> {
    build_nodes_parallel_observed(table, queries, udfs, slim, &Observer::disabled(), None)
}

/// [`build_nodes_parallel`] with observability. Each worker thread runs
/// under an `execute.worker` span parented to `parent` (normally the
/// caller's `pipeline.execute` stage span — passing the parent explicitly
/// is what merges worker spans under the right stage across threads), and
/// per-query build latencies are buffered locally and flushed into the
/// `exec.query_ns` histogram once per chunk.
pub fn build_nodes_parallel_observed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
) -> Vec<VisNode> {
    let workers = worker_count(queries.len());
    if workers <= 1 || queries.len() < 32 {
        return build_nodes_serial_observed(table, queries, udfs, slim, obs, parent);
    }
    let chunk = queries.len().div_ceil(workers);
    let chunks: Vec<&[VisQuery]> = queries.chunks(chunk).collect();
    let mut per_chunk: Vec<Vec<VisNode>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _worker = obs.span_under("execute.worker", parent);
                    build_chunk(table, chunk, udfs, slim, &obs)
                })
            })
            .collect();
        for h in handles {
            // A panicked worker contributes no nodes; the panic itself is
            // surfaced by the runtime on stderr.
            per_chunk.push(h.join().unwrap_or_default());
        }
    });
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for chunk in per_chunk {
        for node in chunk {
            if seen.insert(node.id()) {
                nodes.push(node);
            }
        }
    }
    nodes
}

/// [`build_nodes_parallel_observed`] with cost profiling: each worker
/// additionally accumulates per-candidate executor operator counts
/// ([`OpCosts`]) and flushes them into `costs` once per chunk — inside
/// its `execute.worker` span, so the registry's `cost.*` counters equal
/// the worker stage totals by construction. Delegates to the observed
/// path when the collector is disabled (no cost overhead).
pub fn build_nodes_parallel_costed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
    costs: &CostCollector,
) -> Vec<VisNode> {
    if !costs.is_enabled() {
        return build_nodes_parallel_observed(table, queries, udfs, slim, obs, parent);
    }
    let workers = worker_count(queries.len());
    if workers <= 1 || queries.len() < 32 {
        return build_nodes_serial_costed(table, queries, udfs, slim, obs, parent, costs);
    }
    let chunk = queries.len().div_ceil(workers);
    let chunks: Vec<&[VisQuery]> = queries.chunks(chunk).collect();
    let mut per_chunk: Vec<Vec<VisNode>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let obs = obs.clone();
                let costs = costs.clone();
                scope.spawn(move || {
                    let _worker = obs.span_under("execute.worker", parent);
                    build_chunk_costed(table, chunk, udfs, slim, &obs, &costs)
                })
            })
            .collect();
        for h in handles {
            per_chunk.push(h.join().unwrap_or_default());
        }
    });
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for chunk in per_chunk {
        for node in chunk {
            if seen.insert(node.id()) {
                nodes.push(node);
            }
        }
    }
    nodes
}

/// Serial counterpart of [`build_nodes_parallel_costed`] (one
/// `execute.worker` span, one cost flush).
#[allow(clippy::too_many_arguments)]
pub fn build_nodes_serial_costed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
    costs: &CostCollector,
) -> Vec<VisNode> {
    if !costs.is_enabled() {
        return build_nodes_serial_observed(table, queries, udfs, slim, obs, parent);
    }
    let _worker = obs.span_under("execute.worker", parent);
    let built = build_chunk_costed(table, &queries, udfs, slim, obs, costs);
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for node in built {
        if seen.insert(node.id()) {
            nodes.push(node);
        }
    }
    nodes
}

/// Serial fallback with the same observability contract as the parallel
/// path (one `execute.worker` span, batched latency flush).
pub fn build_nodes_serial_observed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
) -> Vec<VisNode> {
    let _worker = obs.span_under("execute.worker", parent);
    let built = build_chunk(table, &queries, udfs, slim, obs);
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for node in built {
        if seen.insert(node.id()) {
            nodes.push(node);
        }
    }
    nodes
}

/// Build one chunk of queries. When the observer is enabled, per-query
/// latencies are collected locally (no per-query locking) and flushed in
/// one batch; when disabled, this is the bare build loop with zero
/// observability work.
fn build_chunk(
    table: &Table,
    chunk: &[VisQuery],
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
) -> Vec<VisNode> {
    let mut out = Vec::with_capacity(chunk.len());
    if obs.is_enabled() {
        let mut latencies = Vec::with_capacity(chunk.len());
        let (mut ok, mut err) = (0u64, 0u64);
        let mut bytes = 0u64;
        for q in chunk {
            let start = Stopwatch::start();
            let built = VisNode::build(table, q.clone(), udfs);
            latencies.push(start.elapsed_ns());
            match built {
                Ok(mut node) => {
                    if slim {
                        node.slim();
                    }
                    ok += 1;
                    bytes += node.approx_heap_bytes();
                    out.push(node);
                }
                Err(_) => err += 1,
            }
        }
        obs.record_many_ns("exec.query_ns", &latencies);
        obs.incr("exec.ok", ok);
        obs.incr("exec.err", err);
        // One batched charge per chunk, attributed to this worker's span.
        obs.alloc_many(ok, bytes);
    } else {
        for q in chunk {
            if let Ok(mut node) = VisNode::build(table, q.clone(), udfs) {
                if slim {
                    node.slim();
                }
                out.push(node);
            }
        }
    }
    out
}

/// Build one chunk with cost profiling: per-query operator counts are
/// buffered locally as [`CandidateCost`] records (no locking inside the
/// loop) and flushed to the collector once per chunk. Observability
/// recordings mirror [`build_chunk`]; the chunk's cost totals are
/// additionally flushed into the registry's `cost.*` counters while the
/// caller's `execute.worker` span is open.
fn build_chunk_costed(
    table: &Table,
    chunk: &[VisQuery],
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    costs: &CostCollector,
) -> Vec<VisNode> {
    let mut out = Vec::with_capacity(chunk.len());
    let mut cands = Vec::with_capacity(chunk.len());
    let obs_on = obs.is_enabled();
    let mut latencies = Vec::with_capacity(if obs_on { chunk.len() } else { 0 });
    let (mut ok, mut err) = (0u64, 0u64);
    let mut bytes = 0u64;
    let mut worker_total = OpCosts::default();
    for q in chunk {
        let start = Stopwatch::start();
        let (built, query_costs) = VisNode::build_costed(table, q.clone(), udfs);
        if obs_on {
            latencies.push(start.elapsed_ns());
        }
        worker_total.merge(&query_costs);
        cands.push(CandidateCost {
            id: crate::provenance::query_id(q),
            chart: q.chart.name().to_owned(),
            transform: transform_label(&q.transform).to_owned(),
            signature: pair_signature(table, q),
            builds: 1,
            costs: query_costs,
        });
        match built {
            Ok(mut node) => {
                if slim {
                    node.slim();
                }
                ok += 1;
                bytes += node.approx_heap_bytes();
                out.push(node);
            }
            Err(_) => err += 1,
        }
    }
    if obs_on {
        obs.record_many_ns("exec.query_ns", &latencies);
        obs.incr("exec.ok", ok);
        obs.incr("exec.err", err);
        obs.alloc_many(ok, bytes);
        flush_cost_counters(obs, &worker_total);
    }
    costs.record_worker(cands);
    out
}

/// Flush one worker chunk's operator totals into the metric registry's
/// `cost.*` counters — called inside the worker's `execute.worker` span,
/// which is what makes the snapshot counters equal the worker stage
/// totals (the cost document's exactness invariant).
fn flush_cost_counters(obs: &Observer, total: &OpCosts) {
    if !obs.is_enabled() {
        return;
    }
    obs.incr("cost.rows_scanned", total.get(Op::RowsScanned));
    obs.incr("cost.bin_computations", total.get(Op::BinComputations));
    obs.incr("cost.group_probes", total.get(Op::GroupProbes));
    obs.incr("cost.group_inserts", total.get(Op::GroupInserts));
    obs.incr("cost.agg_updates", total.get(Op::AggUpdates));
    obs.incr("cost.sort_comparisons", total.get(Op::SortComparisons));
    obs.incr("cost.output_rows", total.get(Op::OutputRows));
}

/// The transform bucket a candidate rolls up under.
fn transform_label(t: &Transform) -> &'static str {
    match t {
        Transform::None => "none",
        Transform::Group => "group",
        Transform::Bin(_) => "bin",
    }
}

/// The column-pair type signature a candidate rolls up under, e.g.
/// `categorical*numerical`; one-column queries use the single type name.
fn pair_signature(table: &Table, q: &VisQuery) -> String {
    let type_of = |name: &str| {
        table
            .column_by_name(name)
            .map(|c| match c.data_type() {
                DataType::Categorical => "categorical",
                DataType::Numerical => "numerical",
                DataType::Temporal => "temporal",
            })
            .unwrap_or("unknown")
    };
    match &q.y {
        Some(y) => format!("{}*{}", type_of(&q.x), type_of(y)),
        None => type_of(&q.x).to_owned(),
    }
}

#[cfg(test)]
fn build_serial(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
) -> Vec<VisNode> {
    build_nodes_serial_observed(table, queries, udfs, slim, &Observer::disabled(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule_based_queries;
    use deepeye_data::TableBuilder;

    fn table() -> Table {
        let n = 400;
        TableBuilder::new("t")
            .text("cat", (0..n).map(|i| format!("c{}", i % 7)))
            .numeric("a", (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0))
            .numeric("b", (0..n).map(|i| i as f64))
            .numeric("c", (0..n).map(|i| i as f64 * 2.0 + 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_equals_serial() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let serial = build_serial(&t, queries.clone(), &udfs, false);
        let parallel = build_nodes_parallel(&t, queries, &udfs, false);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.data.series, b.data.series);
        }
    }

    #[test]
    fn slim_mode_drops_series() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let nodes = build_nodes_parallel(&t, queries, &udfs, true);
        assert!(!nodes.is_empty());
        assert!(nodes.iter().all(|n| n.data.series.is_empty()));
        // Features survive slimming.
        assert!(nodes
            .iter()
            .all(|n| n.feature_vector().len() == crate::features::FEATURE_DIM));
    }

    #[test]
    fn small_workloads_fall_back_to_serial() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries: Vec<VisQuery> = rule_based_queries(&t).into_iter().take(5).collect();
        let nodes = build_nodes_parallel(&t, queries, &udfs, false);
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn empty_input() {
        let t = table();
        let udfs = UdfRegistry::default();
        assert!(build_nodes_parallel(&t, Vec::new(), &udfs, false).is_empty());
    }

    #[test]
    fn costed_equals_plain_and_flushes_counters() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let plain = build_nodes_parallel(&t, queries.clone(), &udfs, false);
        let obs = Observer::enabled();
        let costs = CostCollector::enabled();
        let nodes = build_nodes_parallel_costed(&t, queries, &udfs, false, &obs, None, &costs);
        assert_eq!(plain.len(), nodes.len());
        for (a, b) in plain.iter().zip(&nodes) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.data.series, b.data.series);
        }
        let report = costs.report();
        assert_eq!(report.candidates.len(), nodes.len());
        assert!(!report.totals.is_zero());
        // Exactness invariant: the registry's cost.* counters (flushed
        // inside the execute.worker spans) equal the collector totals.
        let snap = obs.snapshot();
        for op in Op::ALL {
            assert_eq!(
                snap.counter(op.metric()),
                report.totals.get(op),
                "counter {} must equal the collector total",
                op.metric()
            );
        }
        // The document round-trips through its validator.
        deepeye_obs::validate_cost_json(&report.to_json()).unwrap();
        // Rollup dimensions are populated with real labels.
        assert!(report
            .groups
            .iter()
            .any(|g| g.signature.contains("categorical") || g.signature.contains("numerical")));
    }

    #[test]
    fn repeated_runs_merge_builds_not_candidates() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries: Vec<VisQuery> = rule_based_queries(&t).into_iter().take(8).collect();
        let costs = CostCollector::enabled();
        for _ in 0..3 {
            build_nodes_serial_costed(
                &t,
                queries.clone(),
                &udfs,
                false,
                &Observer::disabled(),
                None,
                &costs,
            );
        }
        let report = costs.report();
        assert_eq!(report.candidates.len(), 8);
        assert_eq!(report.workers.len(), 3);
        assert!(report.candidates.iter().all(|c| c.builds == 3));
        deepeye_obs::validate_cost_json(&report.to_json()).unwrap();
    }

    #[test]
    fn disabled_collector_delegates_to_observed_path() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let costs = CostCollector::disabled();
        let nodes = build_nodes_parallel_costed(
            &t,
            queries,
            &udfs,
            false,
            &Observer::disabled(),
            None,
            &costs,
        );
        assert!(!nodes.is_empty());
        assert!(costs.report().candidates.is_empty());
    }
}
