//! Parallel candidate generation. §VI-D notes that "the task of
//! visualization selection is trivially parallelizable"; this module
//! shards query execution and feature extraction across scoped std
//! threads (no runtime dependency needed — the work units are
//! independent table scans).

use crate::node::VisNode;
use deepeye_data::Table;
use deepeye_obs::{Observer, SpanId, Stopwatch};
use deepeye_query::{UdfRegistry, VisQuery};
use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped by
/// the work size (no point spawning more threads than queries).
pub(crate) fn worker_count(work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(work_items).max(1)
}

/// Build visualization nodes for `queries` in parallel. Invalid queries
/// are skipped; output order matches input order (deterministic regardless
/// of thread count); duplicates by node id are removed keeping the first.
pub fn build_nodes_parallel(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
) -> Vec<VisNode> {
    build_nodes_parallel_observed(table, queries, udfs, slim, &Observer::disabled(), None)
}

/// [`build_nodes_parallel`] with observability. Each worker thread runs
/// under an `execute.worker` span parented to `parent` (normally the
/// caller's `pipeline.execute` stage span — passing the parent explicitly
/// is what merges worker spans under the right stage across threads), and
/// per-query build latencies are buffered locally and flushed into the
/// `exec.query_ns` histogram once per chunk.
pub fn build_nodes_parallel_observed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
) -> Vec<VisNode> {
    let workers = worker_count(queries.len());
    if workers <= 1 || queries.len() < 32 {
        return build_nodes_serial_observed(table, queries, udfs, slim, obs, parent);
    }
    let chunk = queries.len().div_ceil(workers);
    let chunks: Vec<&[VisQuery]> = queries.chunks(chunk).collect();
    let mut per_chunk: Vec<Vec<VisNode>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _worker = obs.span_under("execute.worker", parent);
                    build_chunk(table, chunk, udfs, slim, &obs)
                })
            })
            .collect();
        for h in handles {
            // A panicked worker contributes no nodes; the panic itself is
            // surfaced by the runtime on stderr.
            per_chunk.push(h.join().unwrap_or_default());
        }
    });
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for chunk in per_chunk {
        for node in chunk {
            if seen.insert(node.id()) {
                nodes.push(node);
            }
        }
    }
    nodes
}

/// Serial fallback with the same observability contract as the parallel
/// path (one `execute.worker` span, batched latency flush).
pub fn build_nodes_serial_observed(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
    parent: Option<SpanId>,
) -> Vec<VisNode> {
    let _worker = obs.span_under("execute.worker", parent);
    let built = build_chunk(table, &queries, udfs, slim, obs);
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for node in built {
        if seen.insert(node.id()) {
            nodes.push(node);
        }
    }
    nodes
}

/// Build one chunk of queries. When the observer is enabled, per-query
/// latencies are collected locally (no per-query locking) and flushed in
/// one batch; when disabled, this is the bare build loop with zero
/// observability work.
fn build_chunk(
    table: &Table,
    chunk: &[VisQuery],
    udfs: &UdfRegistry,
    slim: bool,
    obs: &Observer,
) -> Vec<VisNode> {
    let mut out = Vec::with_capacity(chunk.len());
    if obs.is_enabled() {
        let mut latencies = Vec::with_capacity(chunk.len());
        let (mut ok, mut err) = (0u64, 0u64);
        let mut bytes = 0u64;
        for q in chunk {
            let start = Stopwatch::start();
            let built = VisNode::build(table, q.clone(), udfs);
            latencies.push(start.elapsed_ns());
            match built {
                Ok(mut node) => {
                    if slim {
                        node.slim();
                    }
                    ok += 1;
                    bytes += node.approx_heap_bytes();
                    out.push(node);
                }
                Err(_) => err += 1,
            }
        }
        obs.record_many_ns("exec.query_ns", &latencies);
        obs.incr("exec.ok", ok);
        obs.incr("exec.err", err);
        // One batched charge per chunk, attributed to this worker's span.
        obs.alloc_many(ok, bytes);
    } else {
        for q in chunk {
            if let Ok(mut node) = VisNode::build(table, q.clone(), udfs) {
                if slim {
                    node.slim();
                }
                out.push(node);
            }
        }
    }
    out
}

#[cfg(test)]
fn build_serial(
    table: &Table,
    queries: Vec<VisQuery>,
    udfs: &UdfRegistry,
    slim: bool,
) -> Vec<VisNode> {
    build_nodes_serial_observed(table, queries, udfs, slim, &Observer::disabled(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule_based_queries;
    use deepeye_data::TableBuilder;

    fn table() -> Table {
        let n = 400;
        TableBuilder::new("t")
            .text("cat", (0..n).map(|i| format!("c{}", i % 7)))
            .numeric("a", (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0))
            .numeric("b", (0..n).map(|i| i as f64))
            .numeric("c", (0..n).map(|i| i as f64 * 2.0 + 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_equals_serial() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let serial = build_serial(&t, queries.clone(), &udfs, false);
        let parallel = build_nodes_parallel(&t, queries, &udfs, false);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.data.series, b.data.series);
        }
    }

    #[test]
    fn slim_mode_drops_series() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries = rule_based_queries(&t);
        let nodes = build_nodes_parallel(&t, queries, &udfs, true);
        assert!(!nodes.is_empty());
        assert!(nodes.iter().all(|n| n.data.series.is_empty()));
        // Features survive slimming.
        assert!(nodes
            .iter()
            .all(|n| n.feature_vector().len() == crate::features::FEATURE_DIM));
    }

    #[test]
    fn small_workloads_fall_back_to_serial() {
        let t = table();
        let udfs = UdfRegistry::default();
        let queries: Vec<VisQuery> = rule_based_queries(&t).into_iter().take(5).collect();
        let nodes = build_nodes_parallel(&t, queries, &udfs, false);
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn empty_input() {
        let t = table();
        let udfs = UdfRegistry::default();
        assert!(build_nodes_parallel(&t, Vec::new(), &udfs, false).is_empty());
    }
}
