//! The top-level DeepEye API: configure an enumeration mode, an optional
//! recognizer, and a ranking method; get back the top-k visualizations of a
//! table (the full online pipeline of Figure 4).

use crate::graph::{partial_order_log_scores, DominanceGraph, STREAMING_THRESHOLD};
use crate::node::VisNode;
use crate::partial_order::{compute_factor_breakdowns, FactorBreakdown, Factors};
use crate::progressive::ProgressiveSelector;
use crate::provenance::{HybridParts, Outcome, Provenance, RankBreakdown};
use crate::ranking::{rank_by_partial_order_observed, HybridRanker, LtrRanker};
use crate::recognition::Recognizer;
use crate::rules;
use deepeye_data::Table;
use deepeye_obs::{CostCollector, Observer, RecorderConfig};
use deepeye_query::{queries_with_verdict, valid_queries_observed, UdfRegistry, VisQuery};

/// How candidate visualizations are enumerated (the `E`/`R` split of the
/// efficiency experiment, Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumerationMode {
    /// The raw §II-B search space (`528·m(m−1) + 264·m` queries), keeping
    /// whichever execute successfully.
    Exhaustive,
    /// Only candidates admitted by the §V-A rules.
    #[default]
    RuleBased,
}

/// Which ranking method orders the valid nodes (the `L`/`P` split of
/// Figure 12, plus the hybrid of §IV-D).
#[derive(Debug, Clone, Default)]
pub enum RankingMethod {
    /// Partial-order graph, Algorithm 1.
    #[default]
    PartialOrder,
    /// Trained LambdaMART over the 14-feature vectors.
    LearningToRank(LtrRanker),
    /// `l_v + α·p_v` position blend of both.
    Hybrid(LtrRanker, HybridRanker),
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct DeepEyeConfig {
    pub enumeration: EnumerationMode,
    /// Recognition classifier filtering bad candidates; `None` keeps all
    /// executable candidates (useful before a model is trained).
    pub recognizer: Option<Recognizer>,
    pub ranking: RankingMethod,
    /// Execute candidate queries across threads (§VI-D: the task is
    /// "trivially parallelizable"). Output is identical either way.
    pub parallel: bool,
    /// Observability hook: spans, counters, and latency histograms for
    /// every pipeline stage. Defaults to [`Observer::disabled`], which
    /// costs one branch per instrumentation site and allocates nothing —
    /// pass [`Observer::enabled`] to collect and export.
    pub observer: Observer,
    /// Decision-provenance hook: records a per-candidate [`Explanation`]
    /// (sema verdict, classifier evidence, factor breakdown, dominance,
    /// rank parts, prune reason). Defaults to [`Provenance::disabled`] —
    /// one branch per site, nothing allocated — pass
    /// [`Provenance::enabled`] to collect and export.
    ///
    /// [`Explanation`]: crate::provenance::Explanation
    pub provenance: Provenance,
    /// Executor cost-profiling hook: per-candidate operator work counts
    /// (rows scanned, group-hash probes, …) rolled up by chart type ×
    /// transform × column-pair signature. Defaults to
    /// [`CostCollector::disabled`] — the executor then runs the
    /// uninstrumented code path — pass [`CostCollector::enabled`] to
    /// collect and export a `deepeye-cost/v1` document.
    pub costs: CostCollector,
}

impl Default for DeepEyeConfig {
    fn default() -> Self {
        DeepEyeConfig {
            enumeration: EnumerationMode::default(),
            recognizer: None,
            ranking: RankingMethod::default(),
            parallel: true,
            observer: Observer::disabled(),
            provenance: Provenance::disabled(),
            costs: CostCollector::disabled(),
        }
    }
}

impl DeepEyeConfig {
    /// Enable observability in flight-recorder mode: raw spans are
    /// bounded to at most `capacity` retained records (keep-tail
    /// sampling), while counters, histograms, and per-stage aggregates
    /// stay exact. The right observer for a long-lived process —
    /// [`Observer::enabled`] retains every span and grows without bound.
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.observer = Observer::with_recorder(RecorderConfig::bounded(capacity));
        self
    }
}

/// A ranked recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// 1-based rank.
    pub rank: usize,
    pub node: VisNode,
    /// Factor triple (M, Q, W) under the partial order, for explanation.
    /// [`DeepEye::recommend_progressive`] fills all three slots with its
    /// composite score instead (its scoring is leaf-local, not the
    /// set-normalized triple).
    pub factors: crate::partial_order::Factors,
}

impl Recommendation {
    /// Vega-Lite-style JSON spec of this chart.
    pub fn spec(&self) -> String {
        crate::render::vega_lite_spec(&self.node)
    }

    /// The query in the paper's visualization language.
    pub fn query_text(&self, table_name: &str) -> String {
        self.node.query.to_language(table_name)
    }

    /// A human-readable explanation of why this chart ranked where it
    /// did, grounded in the partial-order factors: the rendered view of
    /// [`Recommendation::explanation`] — the same record/render split the
    /// provenance export uses, so the CLI `explain` subcommand and this
    /// method can never drift apart.
    pub fn explain(&self) -> String {
        self.explanation().render()
    }

    /// The structured [`Explanation`] record behind [`explain`]
    /// (self-contained view: raw M is recomputed per Eqs. 1–4; the
    /// set-relative raw W is not recoverable from a single node, so it
    /// mirrors the normalized value).
    ///
    /// [`Explanation`]: crate::provenance::Explanation
    /// [`explain`]: Recommendation::explain
    pub fn explanation(&self) -> crate::provenance::Explanation {
        let mut e = crate::provenance::Explanation::new(self.node.id());
        e.chart = self.node.chart_type().name().to_owned();
        e.outcome = Outcome::Ranked(self.rank);
        e.factors = Some(FactorBreakdown {
            raw_m: crate::partial_order::raw_match_quality(&self.node),
            m: self.factors.m,
            q: self.factors.q,
            raw_w: self.factors.w,
            w: self.factors.w,
        });
        e.notes = narrative_notes(&self.node, &self.factors);
        e
    }
}

/// The chart-specific "why" sentences for a ranked node — shared between
/// [`Recommendation::explanation`] and the top-N provenance records.
fn narrative_notes(node: &VisNode, f: &Factors) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    match node.chart_type() {
        deepeye_query::ChartType::Scatter => {
            parts.push(format!(
                "The plotted series are {}correlated (|c| = {:.2}).",
                if node.features.correlation.abs() >= 0.5 {
                    "strongly "
                } else {
                    "weakly "
                },
                node.features.correlation.abs()
            ));
        }
        deepeye_query::ChartType::Line => {
            parts.push(if node.features.trend {
                format!(
                    "The series follows a clear trend (fit {:.2}).",
                    node.features.trend_fit
                )
            } else {
                "The series shows no clear trend.".to_owned()
            });
        }
        deepeye_query::ChartType::Bar => {
            parts.push(format!(
                "{} bars is a legible comparison.",
                node.transformed_rows()
            ));
        }
        deepeye_query::ChartType::Pie => {
            parts.push(format!(
                "{} slices with {} size diversity.",
                node.transformed_rows(),
                if node.features.y_entropy > 0.8 {
                    "even"
                } else if node.features.y_entropy > 0.4 {
                    "varied"
                } else {
                    "one dominant"
                }
            ));
        }
    }
    if node.query.transform != deepeye_query::Transform::None {
        parts.push(format!(
            "The transform condenses {} rows into {} marks (Q = {:.2}).",
            node.source_rows(),
            node.transformed_rows(),
            f.q
        ));
    }
    parts.push(format!(
        "Its columns ({}) appear in {} of the valid charts (W = {:.2}).",
        node.columns().join(", "),
        if f.w > 0.8 {
            "most"
        } else if f.w > 0.4 {
            "many"
        } else {
            "few"
        },
        f.w
    ));
    parts
}

/// The DeepEye system.
#[derive(Debug, Clone, Default)]
pub struct DeepEye {
    config: DeepEyeConfig,
    udfs: UdfRegistry,
}

impl DeepEye {
    pub fn new(config: DeepEyeConfig) -> Self {
        DeepEye {
            config,
            udfs: UdfRegistry::default(),
        }
    }

    /// Default pipeline: rule-based enumeration, no classifier, partial
    /// order ranking — works out of the box with no training data.
    pub fn with_defaults() -> Self {
        Self::new(DeepEyeConfig::default())
    }

    pub fn config(&self) -> &DeepEyeConfig {
        &self.config
    }

    pub fn udfs_mut(&mut self) -> &mut UdfRegistry {
        &mut self.udfs
    }

    /// Enumerate, execute, and (optionally) classifier-filter the candidate
    /// nodes of a table.
    pub fn candidates(&self, table: &Table) -> Vec<VisNode> {
        let obs = &self.config.observer;
        let prov = &self.config.provenance;
        prov.set_table(table.name());
        let queries: Vec<VisQuery> = {
            let _enumerate = obs.span("pipeline.enumerate");
            let qs = match self.config.enumeration {
                // The statically-executable subset: identical resulting nodes
                // (ill-typed queries would only fail execution below), minus
                // the wasted error paths.
                EnumerationMode::Exhaustive if prov.is_enabled() => {
                    // Same space, same counters as `valid_queries_observed`,
                    // plus a provenance record per candidate: why sema
                    // admitted or rejected it.
                    let mut out = Vec::new();
                    let mut enumerated = 0u64;
                    let mut sema_rejected = 0u64;
                    for (q, verdict) in queries_with_verdict(table, &self.udfs) {
                        obs.incr("enumerate.raw", 1);
                        let id = crate::provenance::query_id(&q);
                        match verdict {
                            Some(diag) => {
                                obs.incr("sema.rejected", 1);
                                sema_rejected += 1;
                                prov.record_rejected(&id, Outcome::SemaRejected, |e| {
                                    e.query = q.to_language(table.name());
                                    e.chart = q.chart.name().to_owned();
                                    e.sema.push((diag.code.as_str().to_owned(), diag.message));
                                });
                            }
                            None => {
                                obs.incr("enumerate.candidates", 1);
                                enumerated += 1;
                                prov.record(&id, |e| {
                                    e.query = q.to_language(table.name());
                                    e.chart = q.chart.name().to_owned();
                                    e.outcome = Outcome::Enumerated;
                                });
                                out.push(q);
                            }
                        }
                    }
                    prov.bump(|c| {
                        c.enumerated += enumerated;
                        c.sema_rejected += sema_rejected;
                    });
                    out
                }
                EnumerationMode::Exhaustive => {
                    valid_queries_observed(table, &self.udfs, obs).collect()
                }
                EnumerationMode::RuleBased => {
                    let qs = rules::rule_based_queries(table);
                    obs.incr("enumerate.candidates", qs.len() as u64);
                    if prov.is_enabled() {
                        for q in &qs {
                            let id = crate::provenance::query_id(q);
                            prov.record(&id, |e| {
                                e.query = q.to_language(table.name());
                                e.chart = q.chart.name().to_owned();
                                e.outcome = Outcome::Enumerated;
                            });
                        }
                        let n = qs.len() as u64;
                        prov.bump(|c| c.enumerated += n);
                    }
                    qs
                }
            };
            if obs.is_enabled() {
                // Arena point: the enumerated candidate set is the stage's
                // dominant allocation; one batched charge covers it.
                let bytes: u64 = qs
                    .iter()
                    .map(|q| {
                        (std::mem::size_of::<VisQuery>()
                            + q.x.len()
                            + q.y.as_ref().map_or(0, String::len)) as u64
                    })
                    .sum();
                obs.alloc_many(qs.len() as u64, bytes);
            }
            qs
        };
        // Ids of everything admitted to execution, so execution failures
        // (runtime errors, empty results) can be charged to their candidate.
        let admitted: Vec<String> = if prov.is_enabled() {
            queries.iter().map(crate::provenance::query_id).collect()
        } else {
            Vec::new()
        };
        let nodes = {
            let execute = obs.span("pipeline.execute");
            let parent = execute.id();
            if self.config.parallel {
                crate::parallel::build_nodes_parallel_costed(
                    table,
                    queries,
                    &self.udfs,
                    false,
                    obs,
                    parent,
                    &self.config.costs,
                )
            } else {
                crate::parallel::build_nodes_serial_costed(
                    table,
                    queries,
                    &self.udfs,
                    false,
                    obs,
                    parent,
                    &self.config.costs,
                )
            }
        };
        if prov.is_enabled() {
            let built: std::collections::HashSet<String> = nodes.iter().map(VisNode::id).collect();
            let mut failed = 0u64;
            for id in &admitted {
                if !built.contains(id) {
                    failed += 1;
                    prov.record_rejected(id, Outcome::ExecFailed, |e| {
                        e.notes
                            .push("Execution failed (runtime error or empty result).".to_owned());
                    });
                }
            }
            if failed > 0 {
                prov.bump(|c| c.exec_failed += failed);
            }
        }
        match &self.config.recognizer {
            Some(r) => r.filter_good_explained(nodes, obs, prov),
            None => nodes,
        }
    }

    /// The full pipeline: candidates → recognition filter → ranking →
    /// top-k recommendations.
    ///
    /// Single-mark charts are dropped before ranking: the paper zeroes the
    /// significance of `d(X) = 1` charts (Eqs. 1–2), and without this a
    /// huge-compression transform (e.g. binning monthly data by
    /// minute-of-hour into one bucket) rides its perfect Q score into the
    /// top-k. [`DeepEye::candidates`] stays unfiltered — the experiment
    /// ground truth labels every executable candidate, like the paper's
    /// annotators did.
    pub fn recommend(&self, table: &Table, k: usize) -> Vec<Recommendation> {
        let _recommend = self.config.observer.span("pipeline.recommend");
        let prov = &self.config.provenance;
        let all = self.candidates(table);
        let mut nodes: Vec<VisNode> = Vec::with_capacity(all.len());
        let mut single_mark = 0u64;
        for n in all {
            if n.data.series.len() >= 2 {
                nodes.push(n);
            } else if prov.is_enabled() {
                single_mark += 1;
                let marks = n.data.series.len();
                prov.record_rejected(&n.id(), Outcome::SingleMark, |e| {
                    e.chart = n.chart_type().name().to_owned();
                    e.notes.push(format!(
                        "Dropped before ranking: only {marks} mark(s), \
                         d(X) = 1 significance is zeroed (Eqs. 1-2)."
                    ));
                });
            }
        }
        if prov.is_enabled() && single_mark > 0 {
            prov.bump(|c| c.single_mark += single_mark);
        }
        self.rank_nodes(nodes, k)
    }

    /// Rank an existing node set and return the top-k.
    ///
    /// ORDER BY variants of one chart have identical factors and would
    /// occupy adjacent ranks; the returned list keeps only the best-ranked
    /// variant per (chart, columns, transform, aggregate) — the
    /// deduplicated pages DeepEye's UI shows (Figure 9).
    pub fn rank_nodes(&self, nodes: Vec<VisNode>, k: usize) -> Vec<Recommendation> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let obs = &self.config.observer;
        let prov = &self.config.provenance;
        let _rank = obs.span("pipeline.rank");
        obs.incr("rank.nodes", nodes.len() as u64);
        let breakdowns = compute_factor_breakdowns(&nodes);
        let factors: Vec<Factors> = breakdowns.iter().map(FactorBreakdown::factors).collect();
        // When explaining a hybrid run, the two component orders are needed
        // per node; `rank_observed` computes them internally but does not
        // expose them, so the explained path replicates its exact span
        // structure and combines by hand.
        let mut hybrid_detail: Option<(Vec<usize>, Vec<usize>)> = None;
        let order: Vec<usize> = match &self.config.ranking {
            RankingMethod::PartialOrder => rank_by_partial_order_observed(&nodes, obs),
            RankingMethod::LearningToRank(ltr) => ltr.rank_observed(&nodes, obs),
            RankingMethod::Hybrid(ltr, hybrid) if prov.is_enabled() => {
                let _span = obs.span("rank.hybrid");
                let ltr_order = ltr.rank_observed(&nodes, obs);
                let po_order = rank_by_partial_order_observed(&nodes, obs);
                let combined = hybrid.combine(&ltr_order, &po_order);
                hybrid_detail = Some((ltr_order, po_order));
                combined
            }
            RankingMethod::Hybrid(ltr, hybrid) => hybrid.rank_observed(ltr, &nodes, obs),
        };
        if prov.is_enabled() {
            self.record_rank_provenance(
                &nodes,
                &breakdowns,
                &factors,
                &order,
                hybrid_detail.as_ref(),
            );
        }
        let variant_key = |n: &VisNode| {
            format!(
                "{}|{}|{}|{:?}|{:?}",
                n.query.chart,
                n.query.x,
                n.query.y.as_deref().unwrap_or(""),
                n.query.transform,
                n.query.aggregate
            )
        };
        let mut seen = std::collections::HashSet::new();
        let mut nodes: Vec<Option<VisNode>> = nodes.into_iter().map(Some).collect();
        let mut out = Vec::with_capacity(k.min(nodes.len()));
        let mut ranked = 0u64;
        for idx in order {
            // Rankers emit each index at most once; a repeat is a ranker bug,
            // surfaced in debug builds and skipped in release.
            let Some(key) = nodes[idx].as_ref().map(&variant_key) else {
                debug_assert!(false, "ranking emitted index {idx} twice");
                continue;
            };
            if !seen.insert(key) {
                continue;
            }
            let Some(node) = nodes[idx].take() else {
                continue;
            };
            if prov.is_enabled() {
                ranked += 1;
                let rank = out.len() + 1;
                prov.record(&node.id(), |e| e.outcome = Outcome::Ranked(rank));
            }
            out.push(Recommendation {
                rank: out.len() + 1,
                node,
                factors: factors[idx],
            });
            if out.len() >= k {
                break;
            }
        }
        if prov.is_enabled() && ranked > 0 {
            prov.bump(|c| c.ranked += ranked);
        }
        out
    }

    /// Fill the per-node ranking provenance: factor breakdowns, component
    /// positions and scores of the active ranking method, and — for the
    /// candidates landing in the top `ProvenanceCaps::top_n` pre-dedup
    /// positions — a dominance-graph summary and the narrative notes.
    fn record_rank_provenance(
        &self,
        nodes: &[VisNode],
        breakdowns: &[crate::partial_order::FactorBreakdown],
        factors: &[Factors],
        order: &[usize],
        hybrid_detail: Option<&(Vec<usize>, Vec<usize>)>,
    ) {
        use crate::provenance::DominanceSummary;
        let prov = &self.config.provenance;
        // Callers only reach here when provenance is on; the guard keeps
        // the invariant locally checkable (analyze rule A0002) and makes
        // a stray unguarded call harmless.
        if !prov.is_enabled() {
            return;
        }
        let caps = prov.caps();
        let n = nodes.len();
        let mut final_pos = vec![usize::MAX; n];
        for (pos, &i) in order.iter().enumerate() {
            final_pos[i] = pos;
        }

        let mut po_pos: Vec<Option<usize>> = vec![None; n];
        let mut po_log: Vec<Option<f64>> = vec![None; n];
        let mut ltr_pos: Vec<Option<usize>> = vec![None; n];
        let mut ltr_score: Vec<Option<f64>> = vec![None; n];
        let mut hybrid_parts: Vec<Option<HybridParts>> = vec![None; n];
        match &self.config.ranking {
            RankingMethod::PartialOrder => {
                let scores = partial_order_log_scores(factors);
                for (pos, &i) in order.iter().enumerate() {
                    po_pos[i] = Some(pos);
                }
                for (slot, score) in po_log.iter_mut().zip(scores) {
                    *slot = Some(score);
                }
            }
            RankingMethod::LearningToRank(ltr) => {
                for (pos, &i) in order.iter().enumerate() {
                    ltr_pos[i] = Some(pos);
                }
                for (slot, node) in ltr_score.iter_mut().zip(nodes) {
                    *slot = Some(ltr.score(node));
                }
            }
            RankingMethod::Hybrid(ltr, hybrid) => {
                if let Some((ltr_order, po_order)) = hybrid_detail {
                    let scores = partial_order_log_scores(factors);
                    for (pos, &i) in ltr_order.iter().enumerate() {
                        ltr_pos[i] = Some(pos);
                    }
                    for (pos, &i) in po_order.iter().enumerate() {
                        po_pos[i] = Some(pos);
                    }
                    for i in 0..n {
                        po_log[i] = Some(scores[i]);
                        ltr_score[i] = Some(ltr.score(&nodes[i]));
                        let (l, p) = (ltr_pos[i].unwrap_or(0), po_pos[i].unwrap_or(0));
                        hybrid_parts[i] = Some(HybridParts {
                            l_pos: l,
                            p_pos: p,
                            alpha: hybrid.alpha,
                            combined: hybrid.combined_score(l, p),
                        });
                    }
                }
            }
        }

        // Dominance summaries for the top-N: one pass over the graph's
        // edges, touching only detail-worthy endpoints. The graph is only
        // built at sizes where the rankers themselves would build it.
        let mut summaries: Vec<Option<DominanceSummary>> = vec![None; n];
        if n <= STREAMING_THRESHOLD {
            let graph = DominanceGraph::build_pruned(factors);
            let detail = |i: usize| final_pos[i] < caps.top_n;
            for i in (0..n).filter(|&i| detail(i)) {
                summaries[i] = Some(DominanceSummary::default());
            }
            for u in 0..n {
                for &(v, w) in graph.out_edges(u) {
                    if let Some(s) = summaries[u].as_mut() {
                        s.dominates += 1;
                        if s.strongest_out.as_ref().is_none_or(|(_, best)| w > *best) {
                            s.strongest_out = Some((nodes[v].id(), w));
                        }
                    }
                    if let Some(s) = summaries[v].as_mut() {
                        s.dominated_by += 1;
                        if s.strongest_in.as_ref().is_none_or(|(_, best)| w > *best) {
                            s.strongest_in = Some((nodes[u].id(), w));
                        }
                    }
                }
            }
        }

        for (i, node) in nodes.iter().enumerate() {
            let rank_bd = RankBreakdown {
                po_log_score: po_log[i],
                po_pos: po_pos[i],
                ltr_score: ltr_score[i],
                ltr_pos: ltr_pos[i],
                hybrid: hybrid_parts[i],
                final_pos: (final_pos[i] != usize::MAX).then_some(final_pos[i]),
            };
            let breakdown = breakdowns[i];
            let dominance = summaries[i].take();
            let notes = if final_pos[i] < caps.top_n {
                narrative_notes(node, &factors[i])
            } else {
                Vec::new()
            };
            prov.record(&node.id(), |e| {
                if e.chart.is_empty() {
                    e.chart = node.chart_type().name().to_owned();
                }
                e.factors = Some(breakdown);
                e.rank = Some(rank_bd);
                if dominance.is_some() {
                    e.dominance = dominance;
                }
                if !notes.is_empty() {
                    e.notes = notes;
                }
            });
        }
    }

    /// Fast top-k via the progressive tournament of §V-B (rule-based
    /// enumeration and composite scoring; skips the classifier and the
    /// global graph). Best when only a handful of charts is needed from a
    /// wide table.
    pub fn recommend_progressive(&self, table: &Table, k: usize) -> Vec<Recommendation> {
        let obs = &self.config.observer;
        let prov = &self.config.provenance;
        let _progressive = obs.span("pipeline.progressive");
        prov.set_table(table.name());
        let selector = ProgressiveSelector::new(table, &self.udfs);
        let (scored, _) = selector.top_k_explained(k, obs, prov);
        scored
            .into_iter()
            .enumerate()
            .map(|(i, s)| Recommendation {
                rank: i + 1,
                factors: crate::partial_order::Factors {
                    m: s.score,
                    q: s.score,
                    w: s.score,
                },
                node: s.node,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::{ClassifierKind, LabeledExample};
    use deepeye_data::TableBuilder;
    use deepeye_query::ChartType;

    fn table() -> Table {
        TableBuilder::new("sales")
            .text("region", ["N", "S", "E", "W", "N", "S", "E", "W", "N", "S"])
            .numeric(
                "revenue",
                [10.0, 20.0, 15.0, 30.0, 12.0, 22.0, 18.0, 28.0, 11.0, 21.0],
            )
            .numeric("units", [1.0, 2.0, 1.5, 3.0, 1.2, 2.2, 1.8, 2.8, 1.1, 2.1])
            .build()
            .unwrap()
    }

    #[test]
    fn default_pipeline_recommends() {
        let eye = DeepEye::with_defaults();
        let recs = eye.recommend(&table(), 5);
        assert!(!recs.is_empty());
        assert!(recs.len() <= 5);
        assert_eq!(recs[0].rank, 1);
        // Every recommendation has a renderable spec and query text.
        for r in &recs {
            assert!(r.spec().starts_with('{'));
            assert!(r.query_text("sales").contains("VISUALIZE"));
        }
    }

    #[test]
    fn flight_recorder_config_bounds_spans_but_not_aggregates() {
        let eye = DeepEye::new(DeepEyeConfig::default().with_flight_recorder(4));
        let recs = eye.recommend(&table(), 5);
        assert!(!recs.is_empty());
        let obs = &eye.config().observer;
        let retention = obs.retention();
        assert!(retention.retained <= 4, "ring bounded at 4");
        assert_eq!(
            retention.retained as u64 + retention.dropped,
            retention.finished
        );
        // Aggregates survive sampling: the stage report still covers the
        // full pipeline even though most raw spans were dropped.
        assert!(obs.stage_report().contains("pipeline.recommend"));
        deepeye_obs::validate_metrics_json(&obs.snapshot().metrics_json()).unwrap();
    }

    #[test]
    fn exhaustive_mode_finds_more_candidates() {
        let rule = DeepEye::with_defaults();
        let exhaustive = DeepEye::new(DeepEyeConfig {
            enumeration: EnumerationMode::Exhaustive,
            ..Default::default()
        });
        let t = table();
        let rule_n = rule.candidates(&t).len();
        let ex_n = exhaustive.candidates(&t).len();
        assert!(ex_n > rule_n, "exhaustive {ex_n} vs rules {rule_n}");
    }

    #[test]
    fn recognizer_filters_candidates() {
        // A recognizer trained to reject everything.
        let t = table();
        let eye = DeepEye::with_defaults();
        let nodes = eye.candidates(&t);
        let examples: Vec<LabeledExample> = nodes
            .iter()
            .map(|n| LabeledExample::from_node(n, false))
            .collect();
        let reject_all = Recognizer::train(ClassifierKind::DecisionTree, &examples);
        let eye = DeepEye::new(DeepEyeConfig {
            recognizer: Some(reject_all),
            ..Default::default()
        });
        assert!(eye.candidates(&t).is_empty());
        assert!(eye.recommend(&t, 3).is_empty());
    }

    #[test]
    fn progressive_recommendations_ordered() {
        let eye = DeepEye::with_defaults();
        let recs = eye.recommend_progressive(&table(), 4);
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].factors.m >= w[1].factors.m);
        }
    }

    #[test]
    fn unbounded_k_returns_everything_once() {
        // Regression: k = usize::MAX must not overflow the output
        // capacity, and returns every deduplicated chart.
        let eye = DeepEye::with_defaults();
        let recs = eye.recommend(&table(), usize::MAX);
        assert!(!recs.is_empty());
        let mut keys: Vec<String> = recs
            .iter()
            .map(|r| {
                format!(
                    "{}|{}|{:?}|{:?}|{:?}",
                    r.node.query.chart,
                    r.node.query.x,
                    r.node.query.y,
                    r.node.query.transform,
                    r.node.query.aggregate
                )
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len(), "order variants deduplicated");
    }

    #[test]
    fn recommendations_are_deduplicated() {
        let eye = DeepEye::with_defaults();
        let recs = eye.recommend(&table(), 50);
        let mut ids: Vec<String> = recs.iter().map(|r| r.node.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn correlated_columns_yield_scatter() {
        // revenue and units are strongly correlated → a scatter should rank
        // among the candidates.
        let eye = DeepEye::with_defaults();
        let nodes = eye.candidates(&table());
        assert!(nodes.iter().any(|n| n.chart_type() == ChartType::Scatter));
    }
}
