//! The 14-dimension feature vector of §III.
//!
//! For the two plotted columns the paper uses features (1)–(5) each —
//! distinct count `d(X)`, tuple count `|X|`, unique ratio `r(X)`,
//! min / max, and data type — giving 12, plus (6) the column correlation
//! `c(X, Y)` and (7) the visualization type: 14 in total. Features are
//! computed on the *plotted* (transformed) data, which is what the
//! recognition classifier must judge.

use deepeye_data::stats;
use deepeye_data::{correlation, trend_of_series, DataType};
use deepeye_query::{ChartData, ChartType, Series};

/// Features (1)–(5) for one plotted column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnFeatures {
    /// (1) number of distinct values.
    pub distinct: usize,
    /// (2) number of tuples.
    pub tuples: usize,
    /// (3) unique ratio `d/|X|`.
    pub unique_ratio: f64,
    /// (4) minimum value (0 for categorical).
    pub min: f64,
    /// (4) maximum value (0 for categorical).
    pub max: f64,
    /// (5) data type.
    pub dtype: DataType,
}

impl ColumnFeatures {
    fn from_values(values: &[f64], dtype: DataType) -> Self {
        let tuples = values.len();
        let distinct = distinct_count(values);
        ColumnFeatures {
            distinct,
            tuples,
            unique_ratio: if tuples == 0 {
                0.0
            } else {
                distinct as f64 / tuples as f64
            },
            min: stats::min(values).unwrap_or(0.0),
            max: stats::max(values).unwrap_or(0.0),
            dtype,
        }
    }

    fn from_labels(labels_distinct: usize, tuples: usize, dtype: DataType) -> Self {
        ColumnFeatures {
            distinct: labels_distinct,
            tuples,
            unique_ratio: if tuples == 0 {
                0.0
            } else {
                labels_distinct as f64 / tuples as f64
            },
            min: 0.0,
            max: 0.0,
            dtype,
        }
    }
}

fn distinct_count(values: &[f64]) -> usize {
    let mut bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    bits.sort_unstable();
    bits.dedup();
    bits.len()
}

fn dtype_code(t: DataType) -> f64 {
    match t {
        DataType::Categorical => 0.0,
        DataType::Numerical => 1.0,
        DataType::Temporal => 2.0,
    }
}

fn chart_code(c: ChartType) -> f64 {
    match c {
        ChartType::Bar => 0.0,
        ChartType::Line => 1.0,
        ChartType::Pie => 2.0,
        ChartType::Scatter => 3.0,
    }
}

/// The full feature set of a visualization node. Carries the paper's 14
/// dimensions plus the auxiliary statistics the partial-order factors need
/// (trend fit, y entropy, original row count).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFeatures {
    pub x: ColumnFeatures,
    pub y: ColumnFeatures,
    /// (6) correlation of the plotted x/y series, signed, in [-1, 1].
    pub correlation: f64,
    /// (7) the visualization type.
    pub chart: ChartType,
    /// Rows in the source table, `|X|` before transformation.
    pub source_rows: usize,
    /// Original (pre-transform) data type of the x column.
    pub source_x_type: DataType,
    /// Eq. 4's binary trend test of the y-series (sorted by x).
    pub trend: bool,
    /// R² of the best trend fit, in [0, 1].
    pub trend_fit: f64,
    /// Normalized entropy of non-negative y weights (pie significance).
    pub y_entropy: f64,
    /// Smallest plotted y value (pie charts require min ≥ 0).
    pub y_min: f64,
}

impl NodeFeatures {
    /// Extract features from an executed chart.
    ///
    /// `source_rows` / `source_x_type` describe the original column the
    /// query read so the transform-quality factor `Q(v) = 1 − |X'|/|X|`
    /// can be computed.
    pub fn from_chart(chart: &ChartData, source_rows: usize, source_x_type: DataType) -> Self {
        let (xs, ys, x_feat): (Vec<f64>, Vec<f64>, ColumnFeatures) = match &chart.series {
            Series::Keyed(pairs) => {
                let xs: Vec<f64> = pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| k.scale_position().unwrap_or(i as f64))
                    .collect();
                let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
                let x_feat = if pairs.iter().any(|(k, _)| k.scale_position().is_none()) {
                    ColumnFeatures::from_labels(pairs.len(), pairs.len(), DataType::Categorical)
                } else {
                    let dtype = if source_x_type == DataType::Temporal {
                        DataType::Temporal
                    } else {
                        DataType::Numerical
                    };
                    ColumnFeatures::from_values(&xs, dtype)
                };
                (xs, ys, x_feat)
            }
            Series::Points(pts) => {
                let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
                let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
                let dtype = if source_x_type == DataType::Temporal {
                    DataType::Temporal
                } else {
                    DataType::Numerical
                };
                let x_feat = ColumnFeatures::from_values(&xs, dtype);
                (xs, ys, x_feat)
            }
        };

        let y_feat = ColumnFeatures::from_values(&ys, DataType::Numerical);
        let corr = correlation(&xs, &ys);

        // Trend is evaluated on the y-series in x order.
        let mut order: Vec<usize> = (0..ys.len()).collect();
        order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        let sorted_ys: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        let trend = trend_of_series(&sorted_ys);

        let weights: Vec<f64> = ys.iter().map(|y| y.max(0.0)).collect();
        NodeFeatures {
            x: x_feat,
            y: y_feat,
            correlation: corr.coefficient,
            chart: chart.chart,
            source_rows,
            source_x_type,
            trend: trend.follows_distribution,
            trend_fit: trend.fit,
            y_entropy: stats::normalized_entropy(&weights),
            y_min: stats::min(&ys).unwrap_or(0.0),
        }
    }

    /// The canonical 14-dimension vector fed to the ML models, in the
    /// paper's order: x(1–5), y(1–5), correlation, chart type.
    pub fn to_vector(&self) -> Vec<f64> {
        vec![
            self.x.distinct as f64,
            self.x.tuples as f64,
            self.x.unique_ratio,
            self.x.min,
            self.x.max,
            dtype_code(self.x.dtype),
            self.y.distinct as f64,
            self.y.tuples as f64,
            self.y.unique_ratio,
            self.y.min,
            self.y.max,
            dtype_code(self.y.dtype),
            self.correlation,
            chart_code(self.chart),
        ]
    }

    /// Number of plotted marks `|X'|`.
    pub fn transformed_rows(&self) -> usize {
        self.x.tuples
    }
}

/// Dimension of [`NodeFeatures::to_vector`].
pub const FEATURE_DIM: usize = 14;

/// Human-readable names for the dimensions of [`NodeFeatures::to_vector`]
/// (and [`pair_feature_vector`], which shares the layout), in order.
/// Classifier decision paths are recorded as feature *indices*; provenance
/// rendering maps them back through this table.
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "x.distinct",
    "x.tuples",
    "x.unique_ratio",
    "x.min",
    "x.max",
    "x.dtype",
    "y.distinct",
    "y.tuples",
    "y.unique_ratio",
    "y.min",
    "y.max",
    "y.dtype",
    "correlation",
    "chart",
];

/// The paper-faithful 14-feature vector computed from the **original**
/// columns (§III lists features (1)–(6) over the table's columns `X`, `Y`
/// plus (7) the chart type). Under this reading the ML models cannot see
/// the transform at all — two candidates that differ only in binning have
/// identical vectors. That blindness is precisely the paper's explanation
/// for why learning-to-rank trails the expert partial order ("learning to
/// rank cannot learn these rules"), so the reproduction's experiment
/// harnesses use this vector for the classifier and LambdaMART, while the
/// library's default recognizer may use the richer
/// [`NodeFeatures::to_vector`] (a documented improvement over the paper).
///
/// One-column charts (`y = None`) duplicate the x column stats for the
/// y slots (the chart plots CNT(X) against X).
pub fn pair_feature_vector(
    table: &deepeye_data::Table,
    x: &str,
    y: Option<&str>,
    chart: ChartType,
) -> Option<Vec<f64>> {
    fn column_stats(col: &deepeye_data::Column) -> [f64; 6] {
        [
            col.distinct_count() as f64,
            col.len() as f64,
            col.unique_ratio(),
            col.min_scalar().unwrap_or(0.0),
            col.max_scalar().unwrap_or(0.0),
            dtype_code(col.data_type()),
        ]
    }
    let x_col = table.column_by_name(x)?;
    let y_col = match y {
        Some(name) => table.column_by_name(name)?,
        None => x_col,
    };
    let xs = column_stats(x_col);
    let ys = column_stats(y_col);
    // (6): correlation of the original columns (0 when either side is not
    // numeric — there is no meaningful raw pairing).
    let corr =
        if x_col.data_type() == DataType::Numerical && y_col.data_type() == DataType::Numerical {
            correlation(&x_col.numbers(), &y_col.numbers()).coefficient
        } else {
            0.0
        };
    let mut v = Vec::with_capacity(FEATURE_DIM);
    v.extend_from_slice(&xs);
    v.extend_from_slice(&ys);
    v.push(corr);
    v.push(chart_code(chart));
    Some(v)
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use deepeye_data::TableBuilder;

    #[test]
    fn pair_vector_is_transform_blind_and_fourteen_dim() {
        let t = TableBuilder::new("t")
            .text("cat", ["a", "b", "a"])
            .numeric("v", [1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let v = pair_feature_vector(&t, "cat", Some("v"), ChartType::Bar).unwrap();
        assert_eq!(v.len(), FEATURE_DIM);
        // Chart type is the only thing distinguishing same-pair combos.
        let v2 = pair_feature_vector(&t, "cat", Some("v"), ChartType::Pie).unwrap();
        assert_eq!(v[..13], v2[..13]);
        assert_ne!(v[13], v2[13]);
        // Unknown columns yield None.
        assert!(pair_feature_vector(&t, "nope", Some("v"), ChartType::Bar).is_none());
    }

    #[test]
    fn pair_vector_correlation_for_numeric_pairs() {
        let t = TableBuilder::new("t")
            .numeric("a", (0..30).map(f64::from))
            .numeric("b", (0..30).map(|i| f64::from(i) * 2.0))
            .text("c", (0..30).map(|i| format!("x{i}")))
            .build()
            .unwrap();
        let v = pair_feature_vector(&t, "a", Some("b"), ChartType::Scatter).unwrap();
        assert!(v[12] > 0.99, "corr feature {}", v[12]);
        let vc = pair_feature_vector(&t, "a", Some("c"), ChartType::Bar).unwrap();
        assert_eq!(vc[12], 0.0);
    }

    #[test]
    fn one_column_duplicates_x_stats() {
        let t = TableBuilder::new("t")
            .text("cat", ["a", "b", "a"])
            .build()
            .unwrap();
        let v = pair_feature_vector(&t, "cat", None, ChartType::Pie).unwrap();
        assert_eq!(v[..6], v[6..12]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_query::Key;

    fn keyed_chart(chart: ChartType, pairs: Vec<(Key, f64)>) -> ChartData {
        ChartData {
            chart,
            x_label: "x".into(),
            y_label: "y".into(),
            series: Series::Keyed(pairs),
        }
    }

    #[test]
    fn vector_has_fourteen_dimensions() {
        let chart = keyed_chart(
            ChartType::Bar,
            vec![(Key::Text("a".into()), 1.0), (Key::Text("b".into()), 2.0)],
        );
        let f = NodeFeatures::from_chart(&chart, 100, DataType::Categorical);
        assert_eq!(f.to_vector().len(), FEATURE_DIM);
    }

    #[test]
    fn categorical_keys_detected() {
        let chart = keyed_chart(
            ChartType::Bar,
            vec![(Key::Text("a".into()), 1.0), (Key::Text("b".into()), 5.0)],
        );
        let f = NodeFeatures::from_chart(&chart, 10, DataType::Categorical);
        assert_eq!(f.x.dtype, DataType::Categorical);
        assert_eq!(f.x.distinct, 2);
        assert_eq!(f.y.dtype, DataType::Numerical);
        assert_eq!(f.y.min, 1.0);
        assert_eq!(f.y.max, 5.0);
        assert_eq!(f.source_rows, 10);
    }

    #[test]
    fn numeric_interval_keys_are_numerical() {
        let chart = keyed_chart(
            ChartType::Bar,
            vec![
                (Key::Interval { lo: 0.0, hi: 10.0 }, 3.0),
                (Key::Interval { lo: 10.0, hi: 20.0 }, 4.0),
            ],
        );
        let f = NodeFeatures::from_chart(&chart, 50, DataType::Numerical);
        assert_eq!(f.x.dtype, DataType::Numerical);
        assert_eq!(f.x.min, 5.0); // interval midpoints
        assert_eq!(f.x.max, 15.0);
    }

    #[test]
    fn correlation_of_linear_points() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let chart = ChartData {
            chart: ChartType::Scatter,
            x_label: "x".into(),
            y_label: "y".into(),
            series: Series::Points(pts),
        };
        let f = NodeFeatures::from_chart(&chart, 50, DataType::Numerical);
        assert!(f.correlation > 0.999);
        assert!(f.trend);
    }

    #[test]
    fn trend_sorted_by_x_not_plot_order() {
        // Shuffled plot order of a perfect line must still show a trend.
        let mut pts: Vec<(f64, f64)> = (0..40).map(|i| (i as f64, 3.0 * i as f64)).collect();
        pts.swap(0, 39);
        pts.swap(5, 20);
        let chart = ChartData {
            chart: ChartType::Line,
            x_label: "x".into(),
            y_label: "y".into(),
            series: Series::Points(pts),
        };
        let f = NodeFeatures::from_chart(&chart, 40, DataType::Numerical);
        assert!(f.trend, "fit={}", f.trend_fit);
    }

    #[test]
    fn entropy_and_ymin_for_pie_factors() {
        let uniform = keyed_chart(
            ChartType::Pie,
            vec![(Key::Text("a".into()), 5.0), (Key::Text("b".into()), 5.0)],
        );
        let f = NodeFeatures::from_chart(&uniform, 10, DataType::Categorical);
        assert!((f.y_entropy - 1.0).abs() < 1e-12);
        assert_eq!(f.y_min, 5.0);

        let negative = keyed_chart(
            ChartType::Pie,
            vec![(Key::Text("a".into()), -2.0), (Key::Text("b".into()), 5.0)],
        );
        let f = NodeFeatures::from_chart(&negative, 10, DataType::Categorical);
        assert!(f.y_min < 0.0);
    }

    #[test]
    fn temporal_source_keeps_temporal_dtype() {
        let chart = keyed_chart(
            ChartType::Line,
            vec![
                (
                    Key::Time(deepeye_data::parse_timestamp("2015-01-01").unwrap()),
                    1.0,
                ),
                (
                    Key::Time(deepeye_data::parse_timestamp("2015-01-02").unwrap()),
                    2.0,
                ),
            ],
        );
        let f = NodeFeatures::from_chart(&chart, 99, DataType::Temporal);
        assert_eq!(f.x.dtype, DataType::Temporal);
        assert_eq!(f.transformed_rows(), 2);
    }
}
