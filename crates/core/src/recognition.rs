//! Visualization recognition (§III): a binary classifier that decides
//! whether a candidate visualization node is good or bad. The paper
//! compares decision trees, naive Bayes, and SVM, and adopts the decision
//! tree.

use crate::node::VisNode;
use crate::provenance::{ClassifierEvidence, Outcome, Provenance, TreeStep};
use deepeye_ml::{Dataset, DecisionTree, GaussianNb, LinearSvm, SvmParams, TreeParams};

/// Which classifier backs the recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    DecisionTree,
    NaiveBayes,
    Svm,
}

impl ClassifierKind {
    pub const ALL: [ClassifierKind; 3] = [
        ClassifierKind::DecisionTree,
        ClassifierKind::NaiveBayes,
        ClassifierKind::Svm,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::DecisionTree => "DT",
            ClassifierKind::NaiveBayes => "Bayes",
            ClassifierKind::Svm => "SVM",
        }
    }
}

/// A labeled recognition example: the 14-feature vector of a candidate
/// visualization and whether annotators judged it good.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    pub features: Vec<f64>,
    pub good: bool,
}

impl LabeledExample {
    pub fn from_node(node: &VisNode, good: bool) -> Self {
        LabeledExample {
            features: node.feature_vector(),
            good,
        }
    }
}

#[derive(Debug, Clone)]
enum Model {
    Tree(DecisionTree),
    Bayes(GaussianNb),
    Svm(LinearSvm),
}

/// A trained visualization recognizer.
#[derive(Debug, Clone)]
pub struct Recognizer {
    kind: ClassifierKind,
    model: Model,
}

impl Recognizer {
    /// Train the chosen classifier on labeled examples.
    pub fn train(kind: ClassifierKind, examples: &[LabeledExample]) -> Self {
        let data = Dataset::new(
            examples.iter().map(|e| e.features.clone()).collect(),
            examples.iter().map(|e| e.good).collect(),
        );
        let model = match kind {
            ClassifierKind::DecisionTree => Model::Tree(DecisionTree::train(
                &data,
                // Conservative leaves: recognition features include raw
                // value magnitudes that vary wildly across datasets, and
                // deep splits on them memorize the training tables.
                TreeParams {
                    max_depth: 12,
                    min_samples_split: 40,
                    min_samples_leaf: 20,
                    min_gain: 1e-6,
                },
            )),
            ClassifierKind::NaiveBayes => Model::Bayes(GaussianNb::fit(&data)),
            ClassifierKind::Svm => Model::Svm(LinearSvm::train(&data, SvmParams::default())),
        };
        Recognizer { kind, model }
    }

    pub fn kind(&self) -> ClassifierKind {
        self.kind
    }

    /// Classify a raw feature vector.
    pub fn predict(&self, features: &[f64]) -> bool {
        match &self.model {
            Model::Tree(m) => m.predict(features),
            Model::Bayes(m) => m.predict(features),
            Model::Svm(m) => m.predict(features),
        }
    }

    /// Is this visualization node good?
    pub fn is_good(&self, node: &VisNode) -> bool {
        self.predict(&node.feature_vector())
    }

    /// The evidence behind [`Recognizer::predict`] for one feature
    /// vector: the CART decision path, the SVM margin, or the Bayes
    /// per-class log-likelihoods.
    pub fn evidence(&self, features: &[f64]) -> ClassifierEvidence {
        match &self.model {
            Model::Tree(m) => {
                let (path, leaf_value) = m.decision_path(features);
                ClassifierEvidence::Tree {
                    path: path
                        .iter()
                        .map(|s| TreeStep {
                            feature: s.feature,
                            threshold: s.threshold,
                            value: s.value,
                            went_left: s.went_left,
                        })
                        .collect(),
                    leaf_value,
                }
            }
            Model::Bayes(m) => {
                let (log_likelihood_good, log_likelihood_bad) = m.log_likelihoods(features);
                ClassifierEvidence::Bayes {
                    log_likelihood_good,
                    log_likelihood_bad,
                }
            }
            Model::Svm(m) => ClassifierEvidence::Svm {
                margin: m.decision(features),
            },
        }
    }

    /// Filter a candidate set down to the nodes judged good.
    pub fn filter_good(&self, nodes: Vec<VisNode>) -> Vec<VisNode> {
        nodes.into_iter().filter(|n| self.is_good(n)).collect()
    }

    /// [`Recognizer::filter_good`] under a `pipeline.recognize` span,
    /// counting `recognize.kept` / `recognize.rejected`.
    pub fn filter_good_observed(
        &self,
        nodes: Vec<VisNode>,
        obs: &deepeye_obs::Observer,
    ) -> Vec<VisNode> {
        let _span = obs.span("pipeline.recognize");
        let total = nodes.len() as u64;
        let kept = self.filter_good(nodes);
        obs.incr("recognize.kept", kept.len() as u64);
        obs.incr("recognize.rejected", total - kept.len() as u64);
        kept
    }

    /// [`Recognizer::filter_good_observed`] that additionally records a
    /// per-candidate provenance verdict (kept with evidence, or a
    /// classifier-rejected record). Falls back to the plain observed
    /// filter when provenance is disabled, so the hot path stays
    /// allocation-free.
    pub fn filter_good_explained(
        &self,
        nodes: Vec<VisNode>,
        obs: &deepeye_obs::Observer,
        prov: &Provenance,
    ) -> Vec<VisNode> {
        if !prov.is_enabled() {
            return self.filter_good_observed(nodes, obs);
        }
        let _span = obs.span("pipeline.recognize");
        let mut kept = Vec::with_capacity(nodes.len());
        let mut rejected = 0u64;
        for node in nodes {
            let features = node.feature_vector();
            let id = node.id();
            let evidence = self.evidence(&features);
            if self.predict(&features) {
                prov.record(&id, |e| {
                    e.outcome = Outcome::Kept;
                    e.classifier = Some(evidence);
                });
                kept.push(node);
            } else {
                prov.record_rejected(&id, Outcome::ClassifierRejected, |e| {
                    e.classifier = Some(evidence);
                });
                rejected += 1;
            }
        }
        let kept_n = kept.len() as u64;
        prov.bump(|c| {
            c.classifier_kept += kept_n;
            c.classifier_rejected += rejected;
        });
        obs.incr("recognize.kept", kept_n);
        obs.incr("recognize.rejected", rejected);
        kept
    }

    /// Serialize the trained recognizer (see `deepeye_ml::persist`).
    pub fn to_text(&self) -> String {
        let (tag, body) = match &self.model {
            Model::Tree(m) => ("dt", m.to_text()),
            Model::Bayes(m) => ("bayes", m.to_text()),
            Model::Svm(m) => ("svm", m.to_text()),
        };
        format!("deepeye-recognizer {tag} v1\n{body}")
    }

    /// Decode a recognizer saved by [`Recognizer::to_text`].
    pub fn from_text(text: &str) -> Result<Self, deepeye_ml::PersistError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| deepeye_ml::PersistError {
                message: "missing recognizer header".to_owned(),
            })?;
        match header.trim() {
            "deepeye-recognizer dt v1" => Ok(Recognizer {
                kind: ClassifierKind::DecisionTree,
                model: Model::Tree(DecisionTree::from_text(body)?),
            }),
            "deepeye-recognizer bayes v1" => Ok(Recognizer {
                kind: ClassifierKind::NaiveBayes,
                model: Model::Bayes(GaussianNb::from_text(body)?),
            }),
            "deepeye-recognizer svm v1" => Ok(Recognizer {
                kind: ClassifierKind::Svm,
                model: Model::Svm(LinearSvm::from_text(body)?),
            }),
            other => Err(deepeye_ml::PersistError {
                message: format!("unknown recognizer header {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;

    /// Synthetic rule-shaped labels: good iff x-distinct in [2, 20] and the
    /// chart code matches the x-type code parity — axis-aligned like the
    /// §V-A rules.
    fn rule_examples(n: usize) -> Vec<LabeledExample> {
        (0..n)
            .map(|i| {
                let mut features = vec![0.0; FEATURE_DIM];
                features[0] = (i % 40) as f64; // d(X)
                features[5] = (i % 3) as f64; // x type code
                features[13] = (i % 4) as f64; // chart code
                let good = features[0] >= 2.0 && features[0] <= 20.0 && features[13] <= 1.0;
                LabeledExample { features, good }
            })
            .collect()
    }

    #[test]
    fn all_kinds_train_and_predict() {
        let examples = rule_examples(200);
        for kind in ClassifierKind::ALL {
            let r = Recognizer::train(kind, &examples);
            assert_eq!(r.kind(), kind);
            let _ = r.predict(&examples[0].features);
        }
    }

    #[test]
    fn tree_fits_rule_shaped_labels_best() {
        let examples = rule_examples(400);
        let accuracy = |kind| {
            let r = Recognizer::train(kind, &examples);
            let correct = examples
                .iter()
                .filter(|e| r.predict(&e.features) == e.good)
                .count();
            correct as f64 / examples.len() as f64
        };
        let dt = accuracy(ClassifierKind::DecisionTree);
        let nb = accuracy(ClassifierKind::NaiveBayes);
        let svm = accuracy(ClassifierKind::Svm);
        // The paper's key finding, reproduced mechanically: rule-shaped
        // labels are axis-aligned, which a tree recovers and linear /
        // Gaussian models cannot.
        assert!(dt > 0.99, "DT accuracy {dt}");
        assert!(dt > nb, "DT {dt} should beat Bayes {nb}");
        assert!(dt > svm, "DT {dt} should beat SVM {svm}");
    }

    #[test]
    fn names() {
        assert_eq!(ClassifierKind::DecisionTree.name(), "DT");
        assert_eq!(ClassifierKind::NaiveBayes.name(), "Bayes");
        assert_eq!(ClassifierKind::Svm.name(), "SVM");
    }
}
