//! Layered 3D range tree for dominance reporting (§IV-C: "we can also
//! utilize the range-tree-based indexing method to efficiently construct
//! the graph", citing de Berg et al.).
//!
//! A factor triple `(m, q, w)` strictly dominates another iff it is ≥ on
//! every coordinate and > on at least one. The tree answers closed-quadrant
//! queries "all points with m ≥ m₀, q ≥ q₀, w ≥ w₀" in
//! `O(log² n + k)` (the inner layer stores w-sorted suffixes, so the third
//! level is a binary search rather than another tree); the caller filters
//! exact-equal triples to recover strictness. Building all dominance
//! edges is then `n` queries instead of `n²` comparisons.

use crate::graph::DominanceGraph;
use crate::partial_order::Factors;

/// Inner layer: points of one m-canonical node, sorted by q, with the
/// suffix of each position also sorted by w (a merge-sort-tree layer).
struct QLayer {
    /// Point indices sorted by q ascending.
    by_q: Vec<u32>,
    /// `suffix_w[i]` = the indices `by_q[i..]` sorted by w ascending —
    /// flattened: suffix i occupies `offsets[i]..offsets[i+1]`.
    tree: MergeTree,
}

/// A segment tree over q-rank where each node stores its span's points
/// sorted by w — O(n log n) memory per layer.
struct MergeTree {
    /// Level 0 is the leaves (single points); each level merges pairs.
    levels: Vec<Vec<u32>>,
}

impl MergeTree {
    fn build(points_by_q: &[u32], w_of: &dyn Fn(u32) -> f64) -> Self {
        let mut levels = Vec::new();
        let mut current: Vec<Vec<u32>> = points_by_q.iter().map(|&p| vec![p]).collect();
        levels.push(points_by_q.to_vec()); // level 0 flat (leaf order)
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                match pair {
                    [a] => next.push(a.clone()),
                    [a, b] => {
                        let mut merged = Vec::with_capacity(a.len() + b.len());
                        let (mut i, mut j) = (0, 0);
                        while i < a.len() && j < b.len() {
                            if w_of(a[i]) <= w_of(b[j]) {
                                merged.push(a[i]);
                                i += 1;
                            } else {
                                merged.push(b[j]);
                                j += 1;
                            }
                        }
                        merged.extend_from_slice(&a[i..]);
                        merged.extend_from_slice(&b[j..]);
                        next.push(merged);
                    }
                    _ => unreachable!("chunks(2)"),
                }
            }
            levels.push(next.concat());
            current = next;
        }
        MergeTree { levels }
    }
}

impl QLayer {
    fn build(mut points: Vec<u32>, q_of: &dyn Fn(u32) -> f64, w_of: &dyn Fn(u32) -> f64) -> Self {
        points.sort_by(|&a, &b| q_of(a).total_cmp(&q_of(b)));
        let tree = MergeTree::build(&points, w_of);
        QLayer { by_q: points, tree }
    }

    /// Report all points with q ≥ q0 and w ≥ w0 into `out`.
    fn query(
        &self,
        q0: f64,
        w0: f64,
        q_of: &dyn Fn(u32) -> f64,
        w_of: &dyn Fn(u32) -> f64,
        out: &mut Vec<u32>,
    ) {
        // The q-range is a suffix of `by_q`: find its start.
        let start = self.by_q.partition_point(|&p| q_of(p) < q0);
        let n = self.by_q.len();
        if start >= n {
            return;
        }
        // Decompose the suffix [start, n) into canonical segment-tree
        // nodes; in each, binary-search the w-sorted list.
        self.query_range(start, n, w0, w_of, out);
    }

    /// Walk the implicit segment tree over leaf range [lo, hi).
    fn query_range(
        &self,
        lo: usize,
        hi: usize,
        w0: f64,
        w_of: &dyn Fn(u32) -> f64,
        out: &mut Vec<u32>,
    ) {
        let n = self.by_q.len();
        // Iterative canonical decomposition on a bottom-up implicit tree:
        // at each level, spans are aligned chunks of size 2^level.
        let mut lo = lo;
        let mut hi = hi;
        let mut level = 0usize;
        // Level sizes: level L has chunks of 2^L leaves; node i covers
        // [i·2^L, (i+1)·2^L). levels[L] stores the concatenation of each
        // chunk's w-sorted points (ragged last chunk handled naturally by
        // the build, but offsets here assume perfect alignment; recompute
        // using chunk boundaries of min(len, …)).
        while lo < hi {
            let size = 1usize << level;
            if level + 1 >= self.tree.levels.len() {
                // Top level: emit the remaining range from the flat order.
                for &p in &self.by_q[lo..hi] {
                    if w_of(p) >= w0 {
                        out.push(p);
                    }
                }
                return;
            }
            // Peel off a left chunk if lo is not aligned at the next level.
            if !lo.is_multiple_of(size * 2) {
                let chunk = lo / size;
                let chunk_start = chunk * size;
                let chunk_end = (chunk_start + size).min(n);
                if chunk_start >= lo && chunk_end <= hi {
                    self.emit_chunk(level, chunk, w0, w_of, out);
                    lo = chunk_end;
                } else {
                    // Partial chunk: scan its overlap directly.
                    let end = chunk_end.min(hi);
                    for &p in &self.by_q[lo..end] {
                        if w_of(p) >= w0 {
                            out.push(p);
                        }
                    }
                    lo = end;
                }
                continue;
            }
            // Peel off a right chunk if hi is not aligned.
            if !hi.is_multiple_of(size * 2) && hi > lo {
                let chunk = (hi - 1) / size;
                let chunk_start = chunk * size;
                let chunk_end = (chunk_start + size).min(n);
                if chunk_start >= lo && chunk_end <= hi {
                    self.emit_chunk(level, chunk, w0, w_of, out);
                    hi = chunk_start;
                } else {
                    let start = chunk_start.max(lo);
                    for &p in &self.by_q[start..hi] {
                        if w_of(p) >= w0 {
                            out.push(p);
                        }
                    }
                    hi = start;
                }
                continue;
            }
            level += 1;
        }
    }

    /// Emit the w ≥ w0 suffix of one canonical chunk.
    fn emit_chunk(
        &self,
        level: usize,
        chunk: usize,
        w0: f64,
        w_of: &dyn Fn(u32) -> f64,
        out: &mut Vec<u32>,
    ) {
        let n = self.by_q.len();
        let size = 1usize << level;
        let start = (chunk * size).min(n);
        let end = (start + size).min(n);
        let slice = &self.tree.levels[level][start..end];
        let from = slice.partition_point(|&p| w_of(p) < w0);
        out.extend_from_slice(&slice[from..]);
    }
}

/// The outer layer: a static tree over m with a (q, w) layer per canonical
/// node.
pub struct RangeTree3 {
    factors: Vec<Factors>,
    /// Point indices sorted by m ascending.
    by_m: Vec<u32>,
    /// Canonical chunks per level over the m-order, mirroring QLayer's
    /// implicit segment tree, each with its own (q, w) layer.
    layers: Vec<Vec<QLayer>>,
}

impl RangeTree3 {
    pub fn build(factors: &[Factors]) -> Self {
        let n = factors.len();
        let mut by_m: Vec<u32> = (0..n as u32).collect();
        by_m.sort_by(|&a, &b| factors[a as usize].m.total_cmp(&factors[b as usize].m));
        let q_of = |p: u32| factors[p as usize].q;
        let w_of = |p: u32| factors[p as usize].w;
        let mut layers: Vec<Vec<QLayer>> = Vec::new();
        let mut size = 1usize;
        while size <= n.max(1) {
            let mut level_nodes = Vec::new();
            for chunk in by_m.chunks(size) {
                level_nodes.push(QLayer::build(chunk.to_vec(), &q_of, &w_of));
            }
            layers.push(level_nodes);
            if size > n {
                break;
            }
            size *= 2;
        }
        RangeTree3 {
            factors: factors.to_vec(),
            by_m,
            layers,
        }
    }

    /// All point indices with m ≥ m0, q ≥ q0, w ≥ w0 (closed quadrant).
    pub fn quadrant(&self, m0: f64, q0: f64, w0: f64) -> Vec<u32> {
        let n = self.by_m.len();
        let q_of = |p: u32| self.factors[p as usize].q;
        let w_of = |p: u32| self.factors[p as usize].w;
        let mut out = Vec::new();
        let start = self
            .by_m
            .partition_point(|&p| self.factors[p as usize].m < m0);
        // Canonical decomposition of the suffix [start, n) over the m-tree.
        let mut lo = start;
        let hi = n;
        let mut level = 0usize;
        let mut lo_cur = lo;
        while lo_cur < hi {
            let size = 1usize << level;
            if level + 1 >= self.layers.len() {
                // Top: query the remaining range chunk by chunk at level 0.
                for &p in &self.by_m[lo_cur..hi] {
                    let f = &self.factors[p as usize];
                    if f.q >= q0 && f.w >= w0 {
                        out.push(p);
                    }
                }
                break;
            }
            if !lo_cur.is_multiple_of(size * 2) {
                let chunk = lo_cur / size;
                let chunk_start = chunk * size;
                let chunk_end = (chunk_start + size).min(n);
                if chunk_start >= lo_cur && chunk_end <= hi {
                    if let Some(layer) = self.layers[level].get(chunk) {
                        layer.query(q0, w0, &q_of, &w_of, &mut out);
                    }
                    lo_cur = chunk_end;
                } else {
                    let end = chunk_end.min(hi);
                    for &p in &self.by_m[lo_cur..end] {
                        let f = &self.factors[p as usize];
                        if f.q >= q0 && f.w >= w0 {
                            out.push(p);
                        }
                    }
                    lo_cur = end;
                }
                continue;
            }
            level += 1;
            lo = lo_cur;
            let _ = lo;
        }
        out
    }

    /// Indices that strictly dominate `factors[v]`.
    pub fn dominators_of(&self, v: usize) -> Vec<usize> {
        let Some(f) = self.factors.get(v).copied() else {
            return Vec::new();
        };
        self.quadrant(f.m, f.q, f.w)
            .into_iter()
            .map(|p| p as usize)
            .filter(|&u| u != v && self.factors[u].strictly_dominates(&f))
            .collect()
    }
}

/// Build the dominance graph via range-tree quadrant queries; identical
/// output to [`DominanceGraph::build_naive`] / `build_pruned`.
pub fn build_with_range_tree(factors: &[Factors]) -> DominanceGraph {
    let tree = RangeTree3::build(factors);
    let mut edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); factors.len()];
    for v in 0..factors.len() {
        for u in tree.dominators_of(v) {
            edges[u].push((v, factors[u].edge_weight(&factors[v])));
        }
    }
    DominanceGraph::from_edges(factors.to_vec(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(m: f64, q: f64, w: f64) -> Factors {
        Factors { m, q, w }
    }

    fn pseudo_cloud(n: usize, seed: u64) -> Vec<Factors> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 997) as f64 / 997.0
        };
        (0..n).map(|_| f(next(), next(), next())).collect()
    }

    #[test]
    fn quadrant_matches_brute_force() {
        for n in [1usize, 2, 7, 33, 100] {
            let factors = pseudo_cloud(n, 42 + n as u64);
            let tree = RangeTree3::build(&factors);
            for v in 0..n {
                let fv = factors[v];
                let mut got: Vec<u32> = tree.quadrant(fv.m, fv.q, fv.w);
                got.sort_unstable();
                let mut expected: Vec<u32> = (0..n as u32)
                    .filter(|&u| {
                        let fu = factors[u as usize];
                        fu.m >= fv.m && fu.q >= fv.q && fu.w >= fv.w
                    })
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "n={n} v={v}");
            }
        }
    }

    #[test]
    fn dominators_match_definition() {
        let factors = pseudo_cloud(80, 7);
        let tree = RangeTree3::build(&factors);
        for v in 0..factors.len() {
            let mut got = tree.dominators_of(v);
            got.sort_unstable();
            let mut expected: Vec<usize> = (0..factors.len())
                .filter(|&u| u != v && factors[u].strictly_dominates(&factors[v]))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "v={v}");
        }
    }

    #[test]
    fn graph_matches_naive_build() {
        for n in [0usize, 1, 5, 60] {
            let factors = pseudo_cloud(n, 99 + n as u64);
            let via_tree = build_with_range_tree(&factors);
            let naive = DominanceGraph::build_naive(&factors);
            assert_eq!(via_tree.edge_count(), naive.edge_count(), "n={n}");
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(
                        via_tree.has_edge(u, v),
                        naive.has_edge(u, v),
                        "n={n} {u}->{v}"
                    );
                }
            }
            assert_eq!(via_tree.ranking(), naive.ranking(), "n={n}");
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let factors = vec![f(0.5, 0.5, 0.5); 10];
        let tree = RangeTree3::build(&factors);
        // Equal triples never strictly dominate.
        for v in 0..10 {
            assert!(tree.dominators_of(v).is_empty());
        }
        let g = build_with_range_tree(&factors);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn chain_graph_via_tree() {
        let factors: Vec<Factors> = (0..50)
            .map(|i| {
                let x = i as f64 / 50.0;
                f(x, x, x)
            })
            .collect();
        let g = build_with_range_tree(&factors);
        // Full transitive chain: n(n-1)/2 edges.
        assert_eq!(g.edge_count(), 50 * 49 / 2);
        assert_eq!(g.top_k(1), vec![49]);
    }
}
