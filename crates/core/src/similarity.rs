//! Similarity-based chart search — the zenvisage-style capability the
//! paper positions against (§I: "charts that show similar trends w.r.t. a
//! given chart"; §VII: "zenvisage tries to find other interesting data when
//! the users provide their desired trends").
//!
//! Given a target shape — a sketched series, or another chart — find the
//! candidate charts whose (resampled, normalized) y-series is closest.

use crate::node::VisNode;
use deepeye_query::Series;

/// Extract a chart's y-series in x order.
fn series_of(node: &VisNode) -> Vec<f64> {
    match &node.data.series {
        Series::Keyed(pairs) => {
            let mut indexed: Vec<(f64, f64)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (k, y))| (k.scale_position().unwrap_or(i as f64), *y))
                .collect();
            indexed.sort_by(|a, b| a.0.total_cmp(&b.0));
            indexed.into_iter().map(|(_, y)| y).collect()
        }
        Series::Points(pts) => {
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            sorted.into_iter().map(|(_, y)| y).collect()
        }
    }
}

/// Linearly resample a series to `n` points (piecewise-linear
/// interpolation over the index scale).
pub fn resample(ys: &[f64], n: usize) -> Vec<f64> {
    if ys.is_empty() || n == 0 {
        return vec![0.0; n];
    }
    if ys.len() == 1 {
        return vec![ys[0]; n];
    }
    (0..n)
        .map(|i| {
            let pos = i as f64 / (n - 1).max(1) as f64 * (ys.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(ys.len() - 1);
            let frac = pos - lo as f64;
            ys[lo] * (1.0 - frac) + ys[hi] * frac
        })
        .collect()
}

/// Z-normalize a series (shape matters, offset and scale don't — the
/// standard similarity-search normalization). A constant series maps to
/// all zeros.
pub fn z_normalize(ys: &[f64]) -> Vec<f64> {
    let mean = deepeye_data::stats::mean(ys);
    let sd = deepeye_data::stats::stddev(ys);
    if sd < 1e-12 {
        return vec![0.0; ys.len()];
    }
    ys.iter().map(|y| (y - mean) / sd).collect()
}

/// Shape distance between two series: Euclidean distance of the
/// z-normalized, length-`resolution` resamplings, scaled to a
/// per-point RMS so values are comparable across resolutions.
pub fn shape_distance(a: &[f64], b: &[f64], resolution: usize) -> f64 {
    let ra = z_normalize(&resample(a, resolution));
    let rb = z_normalize(&resample(b, resolution));
    let sum: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / resolution.max(1) as f64).sqrt()
}

/// A similarity hit.
#[derive(Debug, Clone)]
pub struct SimilarityHit {
    /// Index into the searched node set.
    pub index: usize,
    /// Shape distance (lower = more similar).
    pub distance: f64,
}

/// Resampling resolution used by the searches.
pub const DEFAULT_RESOLUTION: usize = 32;

/// Find the k charts whose series best matches a target shape (e.g. a
/// user-sketched trend like "rise then fall"). Single-point charts are
/// skipped — they have no shape.
pub fn find_similar_to_shape(nodes: &[VisNode], target: &[f64], k: usize) -> Vec<SimilarityHit> {
    let mut hits: Vec<SimilarityHit> = nodes
        .iter()
        .enumerate()
        .filter_map(|(index, node)| {
            let ys = series_of(node);
            if ys.len() < 2 {
                return None;
            }
            Some(SimilarityHit {
                index,
                distance: shape_distance(&ys, target, DEFAULT_RESOLUTION),
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.index.cmp(&b.index))
    });
    hits.truncate(k);
    hits
}

/// Find the k charts most similar to an existing chart (excluding the
/// target itself when the reference points into the searched slice).
pub fn find_similar_to_chart(nodes: &[VisNode], target: &VisNode, k: usize) -> Vec<SimilarityHit> {
    let shape = series_of(target);
    find_similar_to_shape(nodes, &shape, k + 1)
        .into_iter()
        .filter(|h| !nodes.get(h.index).is_some_and(|n| std::ptr::eq(n, target)))
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{Aggregate, ChartType, SortOrder, Transform, UdfRegistry, VisQuery};

    fn line_node(values: &[f64]) -> VisNode {
        let n = values.len();
        let t = TableBuilder::new("t")
            .numeric("x", (0..n).map(|i| i as f64))
            .numeric("y", values.iter().copied())
            .build()
            .unwrap();
        VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Line,
                x: "x".into(),
                y: Some("y".into()),
                transform: Transform::None,
                aggregate: Aggregate::Raw,
                order: SortOrder::ByX,
            },
            &UdfRegistry::default(),
        )
        .unwrap()
    }

    #[test]
    fn resample_preserves_endpoints_and_length() {
        let ys = [1.0, 3.0, 2.0];
        let r = resample(&ys, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[6], 2.0);
        assert_eq!(resample(&[5.0], 4), vec![5.0; 4]);
        assert_eq!(resample(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn z_normalize_is_scale_invariant() {
        let a = z_normalize(&[1.0, 2.0, 3.0]);
        let b = z_normalize(&[10.0, 20.0, 30.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert_eq!(z_normalize(&[4.0, 4.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn identical_shapes_have_zero_distance() {
        // Same shape at different scale and length.
        let up_short = [0.0, 1.0, 2.0, 3.0];
        let up_long: Vec<f64> = (0..40).map(|i| 100.0 + 5.0 * i as f64).collect();
        let d = shape_distance(&up_short, &up_long, 32);
        assert!(d < 1e-9, "d={d}");
    }

    #[test]
    fn opposite_shapes_are_far() {
        let up: Vec<f64> = (0..20).map(f64::from).collect();
        let down: Vec<f64> = (0..20).rev().map(f64::from).collect();
        assert!(shape_distance(&up, &down, 32) > 1.5);
    }

    #[test]
    fn search_finds_the_matching_trend() {
        let nodes = vec![
            line_node(&(0..20).map(f64::from).collect::<Vec<_>>()), // rising
            line_node(&(0..20).rev().map(f64::from).collect::<Vec<_>>()), // falling
            line_node(
                &(0..20)
                    .map(|i| ((i as f64) * 0.6).sin())
                    .collect::<Vec<_>>(),
            ), // wave
        ];
        // Target: a rising sketch.
        let hits = find_similar_to_shape(&nodes, &[0.0, 1.0, 2.0], 2);
        assert_eq!(hits[0].index, 0);
        assert!(hits[0].distance < hits[1].distance);
    }

    #[test]
    fn chart_to_chart_excludes_self() {
        let nodes = vec![
            line_node(&[0.0, 1.0, 2.0, 3.0]),
            line_node(&[0.0, 2.0, 4.0, 6.0]),
            line_node(&[3.0, 2.0, 1.0, 0.0]),
        ];
        let hits = find_similar_to_chart(&nodes, &nodes[0], 2);
        assert_eq!(hits.len(), 2);
        assert_ne!(hits[0].index, 0, "self excluded");
        assert_eq!(hits[0].index, 1, "same trend ranks first");
    }

    #[test]
    fn single_point_charts_skipped() {
        let nodes = vec![line_node(&[1.0]), line_node(&[0.0, 1.0])];
        let hits = find_similar_to_shape(&nodes, &[0.0, 1.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 1);
    }
}
