//! Self-contained SVG rendering of visualization nodes — no JavaScript,
//! no external renderer. Covers all four chart types with axes, ticks,
//! and labels; enough for offline dashboards and report generation.

use crate::node::VisNode;
use deepeye_query::{ChartType, Series};
use std::fmt::Write as _;

/// Canvas geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    pub width: f64,
    pub height: f64,
    pub margin: f64,
    /// Max categorical tick labels before thinning.
    pub max_ticks: usize,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 480.0,
            height: 300.0,
            margin: 48.0,
            max_ticks: 12,
        }
    }
}

const SERIES_COLOR: &str = "#4C78A8";
const PIE_COLORS: [&str; 10] = [
    "#4C78A8", "#F58518", "#E45756", "#72B7B2", "#54A24B", "#EECA3B", "#B279A2", "#FF9DA6",
    "#9D755D", "#BAB0AC",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Round a number for tick labels.
fn tick_label(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let ax = x.abs();
    if ax >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if ax >= 1e4 {
        format!("{:.0}k", x / 1e3)
    } else if ax >= 10.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

struct Frame {
    x0: f64,
    y0: f64,
    plot_w: f64,
    plot_h: f64,
    y_min: f64,
    y_max: f64,
}

impl Frame {
    fn y_pos(&self, y: f64) -> f64 {
        let span = (self.y_max - self.y_min).max(1e-12);
        self.y0 + self.plot_h * (1.0 - (y - self.y_min) / span)
    }
}

fn open_svg(out: &mut String, opts: &SvgOptions, title: &str) {
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\" font-size=\"10\">",
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"16\" text-anchor=\"middle\" font-size=\"12\" font-weight=\"bold\">{}</text>",
        opts.width / 2.0,
        esc(title)
    );
}

fn draw_axes(out: &mut String, _opts: &SvgOptions, frame: &Frame, x_label: &str, y_label: &str) {
    let right = frame.x0 + frame.plot_w;
    let bottom = frame.y0 + frame.plot_h;
    let _ = write!(
        out,
        "<line x1=\"{x0}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"#333\"/>\
         <line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x0}\" y2=\"{b}\" stroke=\"#333\"/>",
        x0 = frame.x0,
        y0 = frame.y0,
        r = right,
        b = bottom
    );
    // Y ticks: min, mid, max.
    for frac in [0.0, 0.5, 1.0] {
        let v = frame.y_min + (frame.y_max - frame.y_min) * frac;
        let y = frame.y_pos(v);
        let _ = write!(
            out,
            "<line x1=\"{0}\" y1=\"{y}\" x2=\"{1}\" y2=\"{y}\" stroke=\"#333\"/>\
             <text x=\"{2}\" y=\"{3}\" text-anchor=\"end\">{4}</text>",
            frame.x0 - 4.0,
            frame.x0,
            frame.x0 - 6.0,
            y + 3.0,
            esc(&tick_label(v))
        );
    }
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        frame.x0 + frame.plot_w / 2.0,
        bottom + 30.0,
        esc(x_label)
    );
    let _ = write!(
        out,
        "<text x=\"12\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 12 {})\">{}</text>",
        frame.y0 + frame.plot_h / 2.0,
        frame.y0 + frame.plot_h / 2.0,
        esc(y_label)
    );
}

/// Render a node to a complete `<svg>` document.
pub fn render_svg(node: &VisNode, opts: &SvgOptions) -> String {
    let title = format!(
        "{} · {} vs {}",
        node.chart_type(),
        node.data.x_label,
        node.data.y_label
    );
    let mut out = String::with_capacity(4096);
    open_svg(&mut out, opts, &title);

    match node.chart_type() {
        ChartType::Pie => render_pie(&mut out, node, opts),
        _ => render_cartesian(&mut out, node, opts),
    }
    out.push_str("</svg>");
    out
}

fn render_pie(out: &mut String, node: &VisNode, opts: &SvgOptions) {
    let pairs: Vec<(String, f64)> = match &node.data.series {
        Series::Keyed(p) => p.iter().map(|(k, v)| (k.to_string(), v.max(0.0))).collect(),
        Series::Points(p) => p
            .iter()
            .map(|(x, v)| (format!("{x}"), v.max(0.0)))
            .collect(),
    };
    let total: f64 = pairs.iter().map(|(_, v)| v).sum();
    let cx = opts.width / 2.0;
    let cy = opts.height / 2.0 + 8.0;
    let r = (opts.width.min(opts.height) / 2.0 - opts.margin).max(10.0);
    if total <= 0.0 {
        let _ = write!(
            out,
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" fill=\"#eee\"/>"
        );
        return;
    }
    let mut angle = -std::f64::consts::FRAC_PI_2;
    for (i, (label, v)) in pairs.iter().enumerate() {
        let frac = v / total;
        let sweep = frac * std::f64::consts::TAU;
        let (x1, y1) = (cx + r * angle.cos(), cy + r * angle.sin());
        let end = angle + sweep;
        let (x2, y2) = (cx + r * end.cos(), cy + r * end.sin());
        let large = i32::from(sweep > std::f64::consts::PI);
        let color = PIE_COLORS[i % PIE_COLORS.len()];
        if frac >= 0.999 {
            let _ = write!(
                out,
                "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" fill=\"{color}\"/>"
            );
        } else {
            let _ = write!(
                out,
                "<path d=\"M{cx},{cy} L{x1:.2},{y1:.2} A{r},{r} 0 {large} 1 {x2:.2},{y2:.2} Z\" \
                 fill=\"{color}\" stroke=\"white\"/>"
            );
        }
        // Label at the slice midpoint if the slice is big enough.
        if frac > 0.04 {
            let mid = angle + sweep / 2.0;
            let (lx, ly) = (cx + r * 0.65 * mid.cos(), cy + r * 0.65 * mid.sin());
            let short: String = label.chars().take(12).collect();
            let _ = write!(
                out,
                "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\" fill=\"white\">{}</text>",
                esc(&short)
            );
        }
        angle = end;
    }
}

fn render_cartesian(out: &mut String, node: &VisNode, opts: &SvgOptions) {
    let (positions, labels, ys): (Vec<f64>, Vec<String>, Vec<f64>) = match &node.data.series {
        Series::Keyed(pairs) => {
            let pos = (0..pairs.len()).map(|i| i as f64).collect();
            let labels = pairs.iter().map(|(k, _)| k.to_string()).collect();
            let ys = pairs.iter().map(|(_, y)| *y).collect();
            (pos, labels, ys)
        }
        Series::Points(pts) => {
            let pos = pts.iter().map(|(x, _)| *x).collect();
            let ys = pts.iter().map(|(_, y)| *y).collect();
            (pos, Vec::new(), ys)
        }
    };
    if ys.is_empty() {
        return;
    }
    let y_min = ys.iter().copied().fold(f64::INFINITY, f64::min).min(0.0);
    let y_max = ys
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(y_min + 1e-9);
    let frame = Frame {
        x0: opts.margin,
        y0: opts.margin / 2.0 + 12.0,
        plot_w: opts.width - opts.margin * 1.5,
        plot_h: opts.height - opts.margin * 1.5 - 12.0,
        y_min,
        y_max,
    };
    draw_axes(out, opts, &frame, &node.data.x_label, &node.data.y_label);

    let x_lo = positions.iter().copied().fold(f64::INFINITY, f64::min);
    let x_hi = positions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_hi - x_lo).max(1e-12);
    let x_pos = |x: f64| frame.x0 + frame.plot_w * (x - x_lo) / x_span;

    match node.chart_type() {
        ChartType::Bar => {
            let n = ys.len() as f64;
            let band = frame.plot_w / n;
            let bar_w = (band * 0.8).max(1.0);
            let zero = frame.y_pos(0.0);
            for (i, &y) in ys.iter().enumerate() {
                let x = frame.x0 + band * i as f64 + band * 0.1;
                let y_top = frame.y_pos(y.max(0.0));
                let h = (zero - frame.y_pos(y.abs())).abs().max(0.5);
                let _ = write!(
                    out,
                    "<rect x=\"{x:.2}\" y=\"{:.2}\" width=\"{bar_w:.2}\" height=\"{h:.2}\" fill=\"{SERIES_COLOR}\"/>",
                    if y >= 0.0 { y_top } else { zero },
                );
            }
        }
        ChartType::Line => {
            let mut d = String::new();
            for (i, (&x, &y)) in positions.iter().zip(&ys).enumerate() {
                let cmd = if i == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.2},{:.2} ", x_pos(x), frame.y_pos(y));
            }
            let _ = write!(
                out,
                "<path d=\"{}\" fill=\"none\" stroke=\"{SERIES_COLOR}\" stroke-width=\"1.5\"/>",
                d.trim_end()
            );
        }
        ChartType::Scatter => {
            for (&x, &y) in positions.iter().zip(&ys) {
                let _ = write!(
                    out,
                    "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"2\" fill=\"{SERIES_COLOR}\" fill-opacity=\"0.6\"/>",
                    x_pos(x),
                    frame.y_pos(y)
                );
            }
        }
        ChartType::Pie => unreachable!("handled by render_pie"),
    }

    // Categorical tick labels (thinned).
    if !labels.is_empty() {
        let step = (labels.len() / opts.max_ticks).max(1);
        let band = frame.plot_w / labels.len() as f64;
        for (i, label) in labels.iter().enumerate().step_by(step) {
            let x = frame.x0 + band * (i as f64 + 0.5);
            let short: String = label.chars().take(10).collect();
            let _ = write!(
                out,
                "<text x=\"{x:.1}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                frame.y0 + frame.plot_h + 14.0,
                esc(&short)
            );
        }
    }
}

/// Render a multi-series chart (stacked bars for bar charts, one polyline
/// per series for line charts) with a simple legend.
pub fn render_multi_svg(chart: &deepeye_query::MultiSeriesChart, opts: &SvgOptions) -> String {
    use deepeye_query::Key;

    let mut out = String::with_capacity(8192);
    let title = format!(
        "{} · {} vs {} by series",
        chart.chart, chart.x_label, chart.y_label
    );
    open_svg(&mut out, opts, &title);

    // Shared x-key universe in first-seen order across series.
    let mut keys: Vec<Key> = Vec::new();
    for (_, pts) in &chart.series {
        for (k, _) in pts {
            if !keys.iter().any(|e| e == k) {
                keys.push(k.clone());
            }
        }
    }
    keys.sort_by(|a, b| a.total_cmp(b));
    let key_index = |k: &Key| keys.iter().position(|e| e == k).unwrap_or(0);

    // Per-key stacked totals determine the y-scale for bars; per-point max
    // for lines.
    let stacked = chart.chart == deepeye_query::ChartType::Bar;
    let mut y_max: f64 = 1e-9;
    if stacked {
        let mut totals = vec![0.0f64; keys.len()];
        for (_, pts) in &chart.series {
            for (k, v) in pts {
                totals[key_index(k)] += v.max(0.0);
            }
        }
        y_max = totals.iter().copied().fold(y_max, f64::max);
    } else {
        for (_, pts) in &chart.series {
            for (_, v) in pts {
                y_max = y_max.max(*v);
            }
        }
    }
    let frame = Frame {
        x0: opts.margin,
        y0: opts.margin / 2.0 + 12.0,
        plot_w: opts.width - opts.margin * 1.5,
        plot_h: opts.height - opts.margin * 1.5 - 12.0,
        y_min: 0.0,
        y_max,
    };
    draw_axes(&mut out, opts, &frame, &chart.x_label, &chart.y_label);

    let band = frame.plot_w / keys.len().max(1) as f64;
    if stacked {
        let mut base = vec![0.0f64; keys.len()];
        for (si, (_, pts)) in chart.series.iter().enumerate() {
            let color = PIE_COLORS[si % PIE_COLORS.len()];
            for (k, v) in pts {
                let ki = key_index(k);
                let v = v.max(0.0);
                let x = frame.x0 + band * ki as f64 + band * 0.1;
                let y_top = frame.y_pos(base[ki] + v);
                let h = (frame.y_pos(base[ki]) - y_top).max(0.3);
                let _ = write!(
                    out,
                    "<rect x=\"{x:.2}\" y=\"{y_top:.2}\" width=\"{:.2}\" height=\"{h:.2}\" fill=\"{color}\"/>",
                    band * 0.8
                );
                base[ki] += v;
            }
        }
    } else {
        for (si, (_, pts)) in chart.series.iter().enumerate() {
            let color = PIE_COLORS[si % PIE_COLORS.len()];
            let mut d = String::new();
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (i, (k, v)) in sorted.iter().enumerate() {
                let x = frame.x0 + band * (key_index(k) as f64 + 0.5);
                let cmd = if i == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{x:.2},{:.2} ", frame.y_pos(*v));
            }
            let _ = write!(
                out,
                "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
                d.trim_end()
            );
        }
    }

    // Legend in the top-right corner.
    for (si, (name, _)) in chart.series.iter().take(PIE_COLORS.len()).enumerate() {
        let color = PIE_COLORS[si % PIE_COLORS.len()];
        let y = frame.y0 + 12.0 * si as f64;
        let x = frame.x0 + frame.plot_w - 80.0;
        let short: String = name.chars().take(12).collect();
        let _ = write!(
            out,
            "<rect x=\"{x}\" y=\"{:.1}\" width=\"8\" height=\"8\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            y - 7.0,
            x + 12.0,
            y,
            esc(&short)
        );
    }

    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{execute_xyz, Aggregate, Transform, UdfRegistry, XyzQuery};

    fn multi_chart(chart: ChartType) -> deepeye_query::MultiSeriesChart {
        let n = 24;
        let t = TableBuilder::new("t")
            .text("grp", (0..n).map(|i| ["a", "b"][i % 2]))
            .text("axis", (0..n).map(|i| format!("k{}", i % 4)))
            .numeric("v", (0..n).map(|i| 1.0 + (i % 7) as f64))
            .build()
            .unwrap();
        let q = XyzQuery {
            chart,
            series_column: "grp".into(),
            x: "axis".into(),
            x_transform: Transform::Group,
            z: "v".into(),
            aggregate: Aggregate::Sum,
        };
        execute_xyz(&t, &q, &UdfRegistry::default()).unwrap()
    }

    #[test]
    fn stacked_bar_renders() {
        let svg = render_multi_svg(&multi_chart(ChartType::Bar), &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        // grp alternates with parity, so series "a" covers keys {k0, k2}
        // and "b" covers {k1, k3}: 4 bars + 2 legend swatches = 6 rects.
        assert_eq!(svg.matches("<rect").count(), 6);
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn multi_line_renders_one_path_per_series() {
        let svg = render_multi_svg(&multi_chart(ChartType::Line), &SvgOptions::default());
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("stroke-width"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{Aggregate, SortOrder, Transform, UdfRegistry, VisQuery};

    fn node(chart: ChartType) -> VisNode {
        let t = TableBuilder::new("t")
            .text("cat", ["a&b", "c<d", "e", "a&b", "c<d", "e"])
            .numeric("v", [4.0, 2.0, 6.0, 3.0, 5.0, 1.0])
            .build()
            .unwrap();
        VisNode::build(
            &t,
            VisQuery {
                chart,
                x: "cat".into(),
                y: Some("v".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Sum,
                order: SortOrder::ByY,
            },
            &UdfRegistry::default(),
        )
        .unwrap()
    }

    fn well_formed(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // No raw unescaped data characters.
        assert!(!svg.contains("a&b"), "ampersand must be escaped");
        assert!(
            svg.contains("a&amp;b") || !svg.contains("a&"),
            "escaped label present"
        );
        // Every opened tag family is closed or self-closed: cheap checks.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn bar_chart_renders() {
        let svg = render_svg(&node(ChartType::Bar), &SvgOptions::default());
        well_formed(&svg);
        assert_eq!(svg.matches("<rect").count(), 3, "one bar per category");
        assert!(svg.contains("SUM(v)"));
    }

    #[test]
    fn pie_chart_renders() {
        let svg = render_svg(&node(ChartType::Pie), &SvgOptions::default());
        well_formed(&svg);
        assert_eq!(svg.matches("<path").count(), 3, "one slice per category");
    }

    #[test]
    fn line_and_scatter_render() {
        let line = render_svg(&node(ChartType::Line), &SvgOptions::default());
        well_formed(&line);
        assert!(line.contains("stroke-width"));
        let scatter = render_svg(&node(ChartType::Scatter), &SvgOptions::default());
        well_formed(&scatter);
        assert_eq!(scatter.matches("<circle").count(), 3);
    }

    #[test]
    fn negative_values_do_not_break_bars() {
        let t = TableBuilder::new("t")
            .text("cat", ["a", "b"])
            .numeric("v", [5.0, -3.0])
            .build()
            .unwrap();
        let n = VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Bar,
                x: "cat".into(),
                y: Some("v".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Sum,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap();
        let svg = render_svg(&n, &SvgOptions::default());
        well_formed(&svg);
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn single_slice_pie_is_a_circle() {
        let t = TableBuilder::new("t")
            .text("cat", ["only", "only"])
            .numeric("v", [3.0, 4.0])
            .build()
            .unwrap();
        let n = VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Pie,
                x: "cat".into(),
                y: Some("v".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Sum,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap();
        let svg = render_svg(&n, &SvgOptions::default());
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn tick_labels_compact() {
        assert_eq!(tick_label(0.0), "0");
        assert_eq!(tick_label(2_500_000.0), "2.5M");
        assert_eq!(tick_label(42_000.0), "42k");
        assert_eq!(tick_label(57.0), "57");
        assert_eq!(tick_label(1.234), "1.23");
    }
}
