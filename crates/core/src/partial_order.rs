//! The partial order of §IV: the three ranking factors
//! **M** (matching quality between data and chart, Eqs. 1–5),
//! **Q** (quality of transformation, Eq. 6), and
//! **W** (importance of columns, Eqs. 7–8), plus dominance (Definition 2).

use crate::node::VisNode;
use deepeye_query::ChartType;
use deepeye_query::{Aggregate, Transform};
use std::collections::HashMap;

/// The factor triple of one node, after set-level normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Factors {
    /// Matching quality M(v), normalized per chart type (Eq. 5).
    pub m: f64,
    /// Transformation quality Q(v) = 1 − |X'|/|X| (Eq. 6).
    pub q: f64,
    /// Column importance W(v), normalized over all nodes (Eq. 8).
    pub w: f64,
}

impl Factors {
    /// Definition 2: `self ⪰ other` — at least as good on every factor.
    pub fn dominates(&self, other: &Factors) -> bool {
        self.m >= other.m && self.q >= other.q && self.w >= other.w
    }

    /// Strict dominance: dominates with at least one strict inequality.
    pub fn strictly_dominates(&self, other: &Factors) -> bool {
        self.dominates(other) && (self.m > other.m || self.q > other.q || self.w > other.w)
    }

    /// Edge weight of Eq. 9 for `self ⪰ other`.
    pub fn edge_weight(&self, other: &Factors) -> f64 {
        ((self.m - other.m) + (self.q - other.q) + (self.w - other.w)) / 3.0
    }
}

/// Raw (pre-normalization) matching quality M(v), Eqs. 1–4.
///
/// Pie (Eq. 1): zero when there is a single slice, a negative slice, or an
/// AVG aggregate (no part-to-whole reading); otherwise the slice-weight
/// entropy, discounted by `10/d(X)` beyond ten slices. We use *normalized*
/// entropy so the raw score stays in [0, 1]; Eq. 5's per-chart
/// normalization makes the scale choice immaterial to the final order.
///
/// Bar (Eq. 2): 1 for 2–20 bars, `20/d(X)` beyond, 0 for a single bar.
///
/// Scatter (Eq. 3): the correlation strength `|c(X, Y)|`.
///
/// Line (Eq. 4): `Trend(Y)` — 1 when the series follows a distribution.
pub fn raw_match_quality(node: &VisNode) -> f64 {
    let d = node.features.x.distinct;
    match node.chart_type() {
        ChartType::Pie => {
            if d <= 1 || node.features.y_min < 0.0 || node.query.aggregate == Aggregate::Avg {
                return 0.0;
            }
            let entropy = node.features.y_entropy;
            if d <= 10 {
                entropy
            } else {
                entropy * 10.0 / d as f64
            }
        }
        ChartType::Bar => {
            if d <= 1 {
                0.0
            } else if d <= 20 {
                1.0
            } else {
                20.0 / d as f64
            }
        }
        ChartType::Scatter => node.features.correlation.abs(),
        ChartType::Line => {
            if node.features.trend {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Transformation quality Q(v) = 1 − |X'|/|X| (Eq. 6): the more a
/// transform condenses the data, the better. Raw (untransformed) charts
/// keep |X'| = |X| and thus score 0.
pub fn transform_quality(node: &VisNode) -> f64 {
    let source = node.source_rows();
    if source == 0 {
        return 0.0;
    }
    if node.query.transform == Transform::None {
        return 0.0;
    }
    (1.0 - node.transformed_rows() as f64 / source as f64).clamp(0.0, 1.0)
}

/// Column importance W(X) for every column: the ratio of valid charts
/// containing the column to all valid charts (Eq. 7 text).
pub fn column_importance(nodes: &[VisNode]) -> HashMap<String, f64> {
    let total = nodes.len().max(1) as f64;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for node in nodes {
        for col in node.columns() {
            *counts.entry(col.to_owned()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total))
        .collect()
}

/// One node's factor triple *with* the raw per-equation values that fed
/// the set-relative normalization — the provenance layer records these so
/// "why did M come out 0.8?" is answerable without rerunning Eqs. 1–8.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FactorBreakdown {
    /// Raw matching quality per Eqs. 1–4, before the per-chart max divide.
    pub raw_m: f64,
    /// Normalized M(v) (Eq. 5).
    pub m: f64,
    /// Q(v) = 1 − |X'|/|X| (Eq. 6) — raw and normalized coincide.
    pub q: f64,
    /// Raw column-importance sum (Eq. 7), before the global max divide.
    pub raw_w: f64,
    /// Normalized W(v) (Eq. 8).
    pub w: f64,
}

impl FactorBreakdown {
    /// The normalized triple, dropping the raw components.
    pub fn factors(&self) -> Factors {
        Factors {
            m: self.m,
            q: self.q,
            w: self.w,
        }
    }
}

/// Compute the normalized factor triples for a set of valid nodes.
///
/// Normalization is set-relative exactly as the paper specifies: M is
/// divided by the max M among nodes of the *same chart type* (Eq. 5) and W
/// by the max W over *all* nodes (Eq. 8). Q is already in [0, 1].
pub fn compute_factors(nodes: &[VisNode]) -> Vec<Factors> {
    compute_factor_breakdowns(nodes)
        .iter()
        .map(FactorBreakdown::factors)
        .collect()
}

/// Like [`compute_factors`] but keeps the raw per-equation values
/// alongside the normalized ones.
pub fn compute_factor_breakdowns(nodes: &[VisNode]) -> Vec<FactorBreakdown> {
    let importance = column_importance(nodes);

    let raw_m: Vec<f64> = nodes.iter().map(raw_match_quality).collect();
    let mut max_m_per_chart: HashMap<ChartType, f64> = HashMap::new();
    for (node, &m) in nodes.iter().zip(&raw_m) {
        let e = max_m_per_chart.entry(node.chart_type()).or_insert(0.0);
        if m > *e {
            *e = m;
        }
    }

    let raw_w: Vec<f64> = nodes
        .iter()
        .map(|n| {
            n.columns()
                .iter()
                .map(|c| importance.get(*c).copied().unwrap_or(0.0))
                .sum()
        })
        .collect();
    let max_w = raw_w.iter().copied().fold(0.0f64, f64::max);

    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let max_m = max_m_per_chart
                .get(&node.chart_type())
                .copied()
                .unwrap_or(0.0);
            FactorBreakdown {
                raw_m: raw_m[i],
                m: if max_m > 0.0 { raw_m[i] / max_m } else { 0.0 },
                q: transform_quality(node),
                raw_w: raw_w[i],
                w: if max_w > 0.0 { raw_w[i] / max_w } else { 0.0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{Table, TableBuilder};
    use deepeye_query::{SortOrder, UdfRegistry, VisQuery};

    fn table() -> Table {
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ", "OO", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0, -9.0, 4.0, 1.0, 7.0])
            .numeric(
                "passengers",
                [10.0, 30.0, 20.0, 25.0, 40.0, 35.0, 15.0, 22.0],
            )
            .build()
            .unwrap()
    }

    fn node(chart: ChartType, x: &str, y: &str, agg: Aggregate) -> VisNode {
        VisNode::build(
            &table(),
            VisQuery {
                chart,
                x: x.into(),
                y: Some(y.into()),
                transform: Transform::Group,
                aggregate: agg,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap()
    }

    #[test]
    fn pie_with_avg_scores_zero() {
        // Eq. 1: AVG pies have no part-to-whole reading.
        let n = node(ChartType::Pie, "carrier", "passengers", Aggregate::Avg);
        assert_eq!(raw_match_quality(&n), 0.0);
    }

    #[test]
    fn pie_with_negative_values_scores_zero() {
        let n = node(ChartType::Pie, "carrier", "delay", Aggregate::Sum);
        assert!(n.features.y_min < 0.0);
        assert_eq!(raw_match_quality(&n), 0.0);
    }

    #[test]
    fn pie_with_sum_scores_entropy() {
        let n = node(ChartType::Pie, "carrier", "passengers", Aggregate::Sum);
        let m = raw_match_quality(&n);
        assert!(m > 0.5 && m <= 1.0, "m={m}");
    }

    #[test]
    fn bar_cardinality_bands() {
        // 4 carriers → in the 2..=20 band.
        let n = node(ChartType::Bar, "carrier", "passengers", Aggregate::Avg);
        assert_eq!(raw_match_quality(&n), 1.0);
    }

    #[test]
    fn bar_many_categories_discounted() {
        let mut b = TableBuilder::new("wide");
        let cats: Vec<String> = (0..50).map(|i| format!("c{i}")).collect();
        b = b.text("cat", cats.iter().map(String::as_str));
        b = b.numeric("v", (0..50).map(f64::from));
        let t = b.build().unwrap();
        let n = VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Bar,
                x: "cat".into(),
                y: Some("v".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Avg,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap();
        assert!((raw_match_quality(&n) - 20.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn transform_quality_eq6() {
        // 8 rows → 4 carrier groups (UA, AA, MQ, OO): Q = 1 − 4/8.
        let n = node(ChartType::Bar, "carrier", "passengers", Aggregate::Avg);
        assert!((transform_quality(&n) - (1.0 - 4.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn raw_chart_has_zero_q() {
        let t = table();
        let n = VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Scatter,
                x: "delay".into(),
                y: Some("passengers".into()),
                transform: Transform::None,
                aggregate: Aggregate::Raw,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap();
        assert_eq!(transform_quality(&n), 0.0);
    }

    #[test]
    fn column_importance_ratios() {
        let nodes = vec![
            node(ChartType::Bar, "carrier", "passengers", Aggregate::Avg),
            node(ChartType::Bar, "carrier", "delay", Aggregate::Avg),
            node(ChartType::Pie, "carrier", "passengers", Aggregate::Sum),
        ];
        let w = column_importance(&nodes);
        assert!((w["carrier"] - 1.0).abs() < 1e-12); // in all 3
        assert!((w["passengers"] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w["delay"] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn factors_are_normalized() {
        let nodes = vec![
            node(ChartType::Bar, "carrier", "passengers", Aggregate::Avg),
            node(ChartType::Bar, "carrier", "delay", Aggregate::Sum),
            node(ChartType::Pie, "carrier", "passengers", Aggregate::Sum),
        ];
        let factors = compute_factors(&nodes);
        assert_eq!(factors.len(), 3);
        for f in &factors {
            assert!((0.0..=1.0).contains(&f.m), "m={}", f.m);
            assert!((0.0..=1.0).contains(&f.q));
            assert!((0.0..=1.0).contains(&f.w));
        }
        // The best bar and the best pie both normalize to M = 1 (Eq. 5).
        let best_bar = factors[0].m.max(factors[1].m);
        assert!((best_bar - 1.0).abs() < 1e-12);
        assert!((factors[2].m - 1.0).abs() < 1e-12);
        // Some node attains W = 1 (Eq. 8).
        assert!(factors.iter().any(|f| (f.w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn dominance_definition_2() {
        let a = Factors {
            m: 0.9,
            q: 0.8,
            w: 0.7,
        };
        let b = Factors {
            m: 0.5,
            q: 0.8,
            w: 0.6,
        };
        let c = Factors {
            m: 1.0,
            q: 0.1,
            w: 0.9,
        };
        assert!(a.strictly_dominates(&b));
        assert!(!b.dominates(&a));
        // a and c are incomparable.
        assert!(!a.dominates(&c) && !c.dominates(&a));
        // Reflexive for ⪰, not for ≻.
        assert!(a.dominates(&a));
        assert!(!a.strictly_dominates(&a));
    }

    #[test]
    fn edge_weight_eq9() {
        let a = Factors {
            m: 1.0,
            q: 0.9,
            w: 0.8,
        };
        let b = Factors {
            m: 0.4,
            q: 0.6,
            w: 0.2,
        };
        let expected = ((1.0 - 0.4) + (0.9 - 0.6) + (0.8 - 0.2)) / 3.0;
        assert!((a.edge_weight(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn dominance_is_transitive() {
        let a = Factors {
            m: 0.9,
            q: 0.9,
            w: 0.9,
        };
        let b = Factors {
            m: 0.5,
            q: 0.5,
            w: 0.5,
        };
        let c = Factors {
            m: 0.1,
            q: 0.2,
            w: 0.3,
        };
        assert!(a.strictly_dominates(&b));
        assert!(b.strictly_dominates(&c));
        assert!(a.strictly_dominates(&c));
    }
}
