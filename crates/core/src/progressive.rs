//! The progressive top-k selector of §V-B.
//!
//! Instead of materializing every candidate visualization and ranking the
//! lot, the selector keeps one lazy *leaf* per (column, type) — the paper's
//! `L_c^X` / `L_n^X` / `L_t^X` lists — and runs a tournament: a leaf is
//! only materialized when its optimistic score bound reaches the top of the
//! heap, and materializing a leaf computes **all** of its charts from one
//! shared scan per transform (§V-B optimization 1). Columns whose bound
//! never surfaces are never scanned at all (optimization 2), and ORDER BY
//! is applied only to the k winners (optimization 3).
//!
//! Scores here are the unnormalized composite `(M + Q + W)/3`: unlike
//! Eq. 5's set-relative normalization this is computable leaf-locally,
//! which is what makes progressive evaluation possible. The tournament is
//! exact for this score: it returns the same top-k as scoring every
//! candidate (see the `matches_exhaustive` tests).

use crate::features::NodeFeatures;
use crate::node::VisNode;
use crate::partial_order::{raw_match_quality, transform_quality};
use crate::rules;
use deepeye_data::{DataType, Table};
use deepeye_query::{
    bin_keys, group_keys, Aggregate, Bucketizer, ChartData, Key, Series, SortOrder, Transform,
    UdfRegistry, VisQuery,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A node plus its composite progressive score.
#[derive(Debug, Clone)]
pub struct ScoredNode {
    pub node: VisNode,
    pub score: f64,
}

/// Work counters for the efficiency experiments and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Leaves (columns) actually materialized.
    pub leaves_materialized: usize,
    /// Leaves evicted by their bound: still in the heap unmaterialized when
    /// the tournament filled the top-k (their optimistic bound never beat a
    /// realized score, so their columns were never scanned).
    pub leaves_pruned: usize,
    /// Total leaves (columns with any candidate).
    pub leaves_total: usize,
    /// Candidate nodes generated.
    pub nodes_generated: usize,
    /// Table scans performed (one per materialized (column, transform)).
    pub shared_scans: usize,
}

impl SelectionStats {
    /// Fold another stats block into this one, field by field. Worker
    /// threads keep local counters and merge on join; the merged totals
    /// must equal a sequential run's (see the `parallel_stats_merge` test).
    pub fn merge(&mut self, other: &SelectionStats) {
        self.leaves_materialized += other.leaves_materialized;
        self.leaves_pruned += other.leaves_pruned;
        self.leaves_total += other.leaves_total;
        self.nodes_generated += other.nodes_generated;
        self.shared_scans += other.shared_scans;
    }
}

impl std::ops::AddAssign for SelectionStats {
    fn add_assign(&mut self, rhs: SelectionStats) {
        self.merge(&rhs);
    }
}

/// The canonical ORDER BY for a chart in progressive mode: sortable
/// x-scales read left-to-right, categorical scales show largest first.
/// Order does not change the factor scores, so ranking one canonical
/// variant per chart loses nothing.
fn canonical_order(x_prime: DataType) -> SortOrder {
    match x_prime {
        DataType::Numerical | DataType::Temporal => SortOrder::ByX,
        DataType::Categorical => SortOrder::ByY,
    }
}

/// A candidate chart descriptor, known before any scan.
#[derive(Debug, Clone)]
struct Candidate {
    query: VisQuery,
    /// W(v): sum of participating columns' importance, unnormalized.
    w_raw: f64,
}

/// Heap entry: either an unmaterialized leaf with an optimistic bound or a
/// concrete scored node.
enum Entry {
    Leaf { column: usize, bound: f64 },
    Node { score: f64, seq: usize },
}

impl Entry {
    fn key(&self) -> (f64, u8) {
        // Nodes win ties against leaf bounds (a realized score equal to a
        // bound can be emitted without materializing the leaf — the leaf
        // cannot beat it, only match it; index tie-break keeps determinism).
        match self {
            Entry::Leaf { bound, .. } => (*bound, 0),
            Entry::Node { score, .. } => (*score, 1),
        }
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        let (sa, ta) = self.key();
        let (sb, tb) = other.key();
        sa.total_cmp(&sb).then(ta.cmp(&tb))
    }
}

/// Progressive top-k selection over a table.
pub struct ProgressiveSelector<'a> {
    table: &'a Table,
    udfs: &'a UdfRegistry,
}

impl<'a> ProgressiveSelector<'a> {
    pub fn new(table: &'a Table, udfs: &'a UdfRegistry) -> Self {
        ProgressiveSelector { table, udfs }
    }

    /// All canonical candidates grouped by x-column, with raw W weights.
    fn candidates_by_column(&self) -> (Vec<Vec<Candidate>>, f64) {
        let queries = canonical_candidates(self.table);
        // Column importance from candidate membership (computable without
        // executing anything).
        let total = queries.len().max(1) as f64;
        let mut col_count: HashMap<&str, usize> = HashMap::new();
        for q in &queries {
            *col_count.entry(q.x.as_str()).or_insert(0) += 1;
            if let Some(y) = &q.y {
                if *y != q.x {
                    *col_count.entry(y.as_str()).or_insert(0) += 1;
                }
            }
        }
        let importance: HashMap<String, f64> = col_count
            .into_iter()
            .map(|(c, n)| (c.to_owned(), n as f64 / total))
            .collect();

        let mut by_column: Vec<Vec<Candidate>> = vec![Vec::new(); self.table.column_count()];
        let mut max_w: f64 = 0.0;
        for query in queries {
            let mut w_raw = importance.get(&query.x).copied().unwrap_or(0.0);
            if let Some(y) = &query.y {
                if *y != query.x {
                    w_raw += importance.get(y).copied().unwrap_or(0.0);
                }
            }
            max_w = max_w.max(w_raw);
            let Some(col) = self.table.column_index(&query.x) else {
                debug_assert!(false, "candidate references missing column {}", query.x);
                continue;
            };
            by_column[col].push(Candidate { query, w_raw });
        }
        (by_column, max_w.max(1e-12))
    }

    /// Compute the top-k visualizations progressively.
    pub fn top_k(&self, k: usize) -> (Vec<ScoredNode>, SelectionStats) {
        self.top_k_observed(k, &deepeye_obs::Observer::disabled())
    }

    /// [`ProgressiveSelector::top_k`] with observability: runs under a
    /// `progressive.top_k` span, times each leaf materialization into the
    /// `progressive.leaf_ns` histogram, and mirrors the final
    /// [`SelectionStats`] into `progressive.*` counters.
    pub fn top_k_observed(
        &self,
        k: usize,
        obs: &deepeye_obs::Observer,
    ) -> (Vec<ScoredNode>, SelectionStats) {
        self.top_k_explained(k, obs, &crate::provenance::Provenance::disabled())
    }

    /// [`ProgressiveSelector::top_k_observed`] that additionally records
    /// tournament provenance: a `column:<name>` record per leaf (bound,
    /// materialized-or-pruned), a record per materialized candidate
    /// (winner rank or tournament loss), and the leaf-accounting counts.
    /// With provenance disabled this *is* `top_k_observed` — no ids are
    /// formatted, nothing extra allocates.
    pub fn top_k_explained(
        &self,
        k: usize,
        obs: &deepeye_obs::Observer,
        prov: &crate::provenance::Provenance,
    ) -> (Vec<ScoredNode>, SelectionStats) {
        use crate::provenance::Outcome;
        let _span = obs.span("progressive.top_k");
        let explaining = prov.is_enabled();
        let (by_column, max_w) = self.candidates_by_column();
        let mut stats = SelectionStats::default();
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        for (column, cands) in by_column.iter().enumerate() {
            if cands.is_empty() {
                continue;
            }
            stats.leaves_total += 1;
            // Optimistic bound: M ≤ 1, Q ≤ 1, exact W known upfront.
            let w_best = cands.iter().map(|c| c.w_raw).fold(0.0f64, f64::max) / max_w;
            let bound = (1.0 + 1.0 + w_best) / 3.0;
            heap.push(Entry::Leaf { column, bound });
        }

        let mut materialized: Vec<ScoredNode> = Vec::new();
        let mut emitted: Vec<usize> = Vec::new();
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match heap.pop() {
                None => break,
                Some(Entry::Node { seq, .. }) => {
                    if explaining {
                        emitted.push(seq);
                    }
                    out.push(materialized[seq].clone());
                }
                Some(Entry::Leaf { column, bound }) => {
                    stats.leaves_materialized += 1;
                    if explaining {
                        let name = self
                            .table
                            .column(column)
                            .map(deepeye_data::Column::name)
                            .unwrap_or("?");
                        prov.record(&format!("column:{name}"), |e| {
                            e.outcome = Outcome::LeafMaterialized;
                            e.tournament_score = Some(bound);
                            e.notes
                                .push(format!("Leaf bound {bound:.4} surfaced; column scanned."));
                        });
                    }
                    let leaf_timer = obs.timer("progressive.leaf_ns");
                    let nodes = self.materialize_column(&by_column[column], max_w, &mut stats);
                    drop(leaf_timer);
                    if obs.is_enabled() {
                        // Arena point: leaf materialization is where the
                        // progressive path allocates; charge the batch to
                        // the open `progressive.top_k` span.
                        let bytes: u64 = nodes.iter().map(|s| s.node.approx_heap_bytes()).sum();
                        obs.alloc_many(nodes.len() as u64, bytes);
                    }
                    for scored in nodes {
                        let seq = materialized.len();
                        heap.push(Entry::Node {
                            score: scored.score,
                            seq,
                        });
                        materialized.push(scored);
                    }
                }
            }
        }

        // Leaves still in the heap were evicted by their bound: the top-k
        // filled before their optimistic score surfaced, so their columns
        // were never scanned (§V-B optimization 2).
        stats.leaves_pruned = heap
            .iter()
            .filter(|e| matches!(e, Entry::Leaf { .. }))
            .count();
        if explaining {
            for entry in heap.iter() {
                if let Entry::Leaf { column, bound } = entry {
                    let name = self
                        .table
                        .column(*column)
                        .map(deepeye_data::Column::name)
                        .unwrap_or("?");
                    let bound = *bound;
                    prov.record_rejected(&format!("column:{name}"), Outcome::LeafPruned, |e| {
                        e.tournament_score = Some(bound);
                        e.notes.push(format!(
                            "Bound {bound:.4} never reached the heap top; \
                                 column never scanned."
                        ));
                    });
                }
            }
            for (rank, scored) in out.iter().enumerate() {
                let score = scored.score;
                prov.record(&scored.node.id(), |e| {
                    e.chart = scored.node.chart_type().name().to_owned();
                    e.outcome = Outcome::TournamentRanked(rank + 1);
                    e.tournament_score = Some(score);
                });
            }
            for (seq, scored) in materialized.iter().enumerate() {
                if emitted.contains(&seq) {
                    continue;
                }
                let score = scored.score;
                let chart = scored.node.chart_type().name();
                prov.record_rejected(&scored.node.id(), Outcome::TournamentLost, |e| {
                    e.chart = chart.to_owned();
                    e.tournament_score = Some(score);
                });
            }
            prov.bump(|c| {
                c.leaves_materialized += stats.leaves_materialized as u64;
                c.leaves_pruned += stats.leaves_pruned as u64;
                c.leaves_total += stats.leaves_total as u64;
            });
        }
        obs.incr(
            "progressive.leaves_materialized",
            stats.leaves_materialized as u64,
        );
        obs.incr("progressive.leaves_pruned", stats.leaves_pruned as u64);
        obs.incr("progressive.leaves_total", stats.leaves_total as u64);
        obs.incr("progressive.nodes_generated", stats.nodes_generated as u64);
        obs.incr("progressive.shared_scans", stats.shared_scans as u64);

        // Optimization 3: apply the postponed ORDER BY to the winners only.
        for scored in &mut out {
            apply_order(&mut scored.node);
        }
        (out, stats)
    }

    /// Materialize every candidate of one column with shared scans: one
    /// keys pass per transform, then all (Y, aggregate) accumulations in a
    /// single row sweep.
    fn materialize_column(
        &self,
        candidates: &[Candidate],
        max_w: f64,
        stats: &mut SelectionStats,
    ) -> Vec<ScoredNode> {
        // Group candidates by transform so each transform scans once.
        let mut by_transform: Vec<(&Transform, Vec<&Candidate>)> = Vec::new();
        for cand in candidates {
            match by_transform
                .iter_mut()
                .find(|(t, _)| **t == cand.query.transform)
            {
                Some((_, list)) => list.push(cand),
                None => by_transform.push((&cand.query.transform, vec![cand])),
            }
        }

        let mut out = Vec::new();
        for (transform, cands) in by_transform {
            match transform {
                Transform::None => {
                    // Raw charts execute directly (no aggregation to share).
                    for cand in cands {
                        if let Ok(node) = VisNode::build(self.table, cand.query.clone(), self.udfs)
                        {
                            stats.nodes_generated += 1;
                            out.push(self.score_node(node, cand.w_raw, max_w));
                        }
                    }
                }
                _ => {
                    stats.shared_scans += 1;
                    out.extend(self.shared_scan(transform, &cands, max_w, stats));
                }
            }
        }
        out
    }

    /// One scan of the table for a (column, transform): computes CNT plus
    /// SUM/AVG of every referenced y-column per bucket, then builds every
    /// candidate chart from the accumulated buckets.
    fn shared_scan(
        &self,
        transform: &Transform,
        cands: &[&Candidate],
        max_w: f64,
        stats: &mut SelectionStats,
    ) -> Vec<ScoredNode> {
        let x_name = &cands[0].query.x;
        let Some(x_col) = self.table.column_by_name(x_name) else {
            return Vec::new();
        };
        let keys = match transform {
            Transform::Group => group_keys(x_col),
            Transform::Bin(strategy) => match bin_keys(x_col, strategy, self.udfs) {
                Ok(k) => k,
                Err(_) => return Vec::new(),
            },
            Transform::None => unreachable!("raw charts handled by caller"),
        };

        // The y-columns any candidate needs SUM/AVG for.
        let mut y_names: Vec<&str> = Vec::new();
        for cand in cands {
            if let (Some(y), Aggregate::Sum | Aggregate::Avg) =
                (&cand.query.y, cand.query.aggregate)
            {
                if !y_names.contains(&y.as_str()) {
                    y_names.push(y);
                }
            }
        }
        let y_values: Vec<Vec<Option<f64>>> = y_names
            .iter()
            .map(|name| {
                self.table
                    .column_by_name(name)
                    .map(|c| match c.data() {
                        deepeye_data::ColumnData::Numeric(v) => v.clone(),
                        _ => vec![None; self.table.row_count()],
                    })
                    .unwrap_or_default()
            })
            .collect();

        let mut buckets = Bucketizer::new();
        let mut counts: Vec<u64> = Vec::new();
        let mut sums: Vec<Vec<f64>> = vec![Vec::new(); y_names.len()]; // [y][bucket]
        let mut y_counts: Vec<Vec<u64>> = vec![Vec::new(); y_names.len()];
        for (row, key) in keys.into_iter().enumerate() {
            let Some(key) = key else { continue };
            let idx = buckets.index_of(key);
            if idx == counts.len() {
                counts.push(0);
                for s in &mut sums {
                    s.push(0.0);
                }
                for c in &mut y_counts {
                    c.push(0);
                }
            }
            counts[idx] += 1;
            for (yi, vals) in y_values.iter().enumerate() {
                if let Some(v) = vals.get(row).copied().flatten() {
                    sums[yi][idx] += v;
                    y_counts[yi][idx] += 1;
                }
            }
        }
        if buckets.is_empty() {
            return Vec::new();
        }
        let keys_dense: Vec<Key> = buckets.into_keys();

        let mut out = Vec::with_capacity(cands.len());
        for cand in cands {
            let pairs: Vec<(Key, f64)> = match (&cand.query.y, cand.query.aggregate) {
                (_, Aggregate::Cnt) => keys_dense
                    .iter()
                    .cloned()
                    .zip(counts.iter().map(|&c| c as f64))
                    .collect(),
                (Some(y), Aggregate::Sum) => {
                    let Some(yi) = y_names.iter().position(|n| n == y) else {
                        continue;
                    };
                    keys_dense
                        .iter()
                        .cloned()
                        .zip(sums[yi].iter().copied())
                        .collect()
                }
                (Some(y), Aggregate::Avg) => {
                    let Some(yi) = y_names.iter().position(|n| n == y) else {
                        continue;
                    };
                    keys_dense
                        .iter()
                        .cloned()
                        .zip(sums[yi].iter().zip(&y_counts[yi]).map(|(&s, &c)| {
                            if c == 0 {
                                0.0
                            } else {
                                s / c as f64
                            }
                        }))
                        .collect()
                }
                _ => continue,
            };
            let y_label = match (&cand.query.y, cand.query.aggregate) {
                (Some(y), agg) => format!("{}({})", agg.name(), y),
                (None, _) => format!("CNT({})", cand.query.x),
            };
            let data = ChartData {
                chart: cand.query.chart,
                x_label: cand.query.x.clone(),
                y_label,
                series: Series::Keyed(pairs),
            };
            let features =
                NodeFeatures::from_chart(&data, self.table.row_count(), x_col.data_type());
            stats.nodes_generated += 1;
            let node = VisNode {
                query: cand.query.clone(),
                data,
                features,
            };
            out.push(self.score_node(node, cand.w_raw, max_w));
        }
        out
    }

    /// Score a materialized node; single-mark charts score the floor (the
    /// paper zeroes d(X)=1 significance, and a perfect Q must not carry a
    /// one-point chart into the top-k — mirrors `DeepEye::recommend`).
    fn score_node(&self, node: VisNode, w_raw: f64, max_w: f64) -> ScoredNode {
        if node.data.series.len() < 2 {
            return ScoredNode { score: 0.0, node };
        }
        let m = raw_match_quality(&node);
        let q = transform_quality(&node);
        let w = w_raw / max_w;
        ScoredNode {
            score: (m + q + w) / 3.0,
            node,
        }
    }
}

/// All canonical candidate queries of a table: the rule-based space with
/// one canonical ORDER BY per (x, transform, y, aggregate, chart).
pub fn canonical_candidates(table: &Table) -> Vec<VisQuery> {
    let mut out = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for mut q in rules::rule_based_queries(table) {
        let x_type = table
            .column_by_name(&q.x)
            .map(|c| c.data_type())
            .unwrap_or(DataType::Categorical);
        q.order = match q.transform {
            Transform::None => SortOrder::ByX,
            ref t => canonical_order(rules::transformed_x_type(x_type, t)),
        };
        let id = format!(
            "{}|{}|{}|{:?}|{:?}",
            q.chart,
            q.x,
            q.y.as_deref().unwrap_or(""),
            q.transform,
            q.aggregate
        );
        if seen.insert(id) {
            out.push(q);
        }
    }
    out
}

/// Apply the node's postponed ORDER BY to its series in place.
fn apply_order(node: &mut VisNode) {
    if let Series::Keyed(pairs) = &mut node.data.series {
        match node.query.order {
            SortOrder::None => {}
            SortOrder::ByX => pairs.sort_by(|a, b| a.0.total_cmp(&b.0)),
            SortOrder::ByY => pairs.sort_by(|a, b| b.1.total_cmp(&a.1)),
        }
    }
}

/// Exhaustive reference: materialize and score every canonical candidate,
/// sort best-first. Used by tests and the ablation bench to validate the
/// tournament.
pub fn exhaustive_top_k(
    table: &Table,
    udfs: &UdfRegistry,
    k: usize,
) -> (Vec<ScoredNode>, SelectionStats) {
    let selector = ProgressiveSelector::new(table, udfs);
    let (by_column, max_w) = selector.candidates_by_column();
    let mut stats = SelectionStats::default();
    let mut all = Vec::new();
    for cands in &by_column {
        if cands.is_empty() {
            continue;
        }
        stats.leaves_total += 1;
        stats.leaves_materialized += 1;
        all.extend(selector.materialize_column(cands, max_w, &mut stats));
    }
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.node.id().cmp(&b.node.id()))
    });
    all.truncate(k);
    for scored in &mut all {
        apply_order(&mut scored.node);
    }
    (all, stats)
}

/// [`exhaustive_top_k`] with columns materialized across worker threads.
/// Each worker keeps a local [`SelectionStats`] merged on join with
/// [`SelectionStats::merge`]; the merged totals and the returned top-k are
/// identical to the sequential run's.
pub fn exhaustive_top_k_parallel(
    table: &Table,
    udfs: &UdfRegistry,
    k: usize,
) -> (Vec<ScoredNode>, SelectionStats) {
    let selector = ProgressiveSelector::new(table, udfs);
    let (by_column, max_w) = selector.candidates_by_column();
    let occupied: Vec<&Vec<Candidate>> = by_column.iter().filter(|c| !c.is_empty()).collect();
    let workers = crate::parallel::worker_count(occupied.len());
    let chunk = occupied.len().div_ceil(workers.max(1)).max(1);
    let mut stats = SelectionStats::default();
    let mut all: Vec<ScoredNode> = Vec::new();
    std::thread::scope(|scope| {
        let selector = &selector;
        let handles: Vec<_> = occupied
            .chunks(chunk)
            .map(|cols| {
                scope.spawn(move || {
                    let mut local_stats = SelectionStats::default();
                    let mut local_nodes = Vec::new();
                    for cands in cols {
                        local_stats.leaves_total += 1;
                        local_stats.leaves_materialized += 1;
                        local_nodes.extend(selector.materialize_column(
                            cands,
                            max_w,
                            &mut local_stats,
                        ));
                    }
                    (local_nodes, local_stats)
                })
            })
            .collect();
        for h in handles {
            if let Ok((nodes, local)) = h.join() {
                all.extend(nodes);
                stats += local;
            }
        }
    });
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.node.id().cmp(&b.node.id()))
    });
    all.truncate(k);
    for scored in &mut all {
        apply_order(&mut scored.node);
    }
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{parse_timestamp, Column, TableBuilder};

    fn mixed_table() -> Table {
        let ts: Vec<_> = (0..12)
            .map(|i| {
                parse_timestamp(&format!(
                    "2015-{:02}-{:02} {:02}:00",
                    i % 12 + 1,
                    i % 28 + 1,
                    (i * 3) % 24
                ))
                .unwrap()
            })
            .collect();
        TableBuilder::new("t")
            .text(
                "carrier",
                [
                    "UA", "AA", "UA", "MQ", "OO", "AA", "UA", "MQ", "OO", "UA", "AA", "MQ",
                ],
            )
            .numeric(
                "delay",
                [5.0, 3.0, -1.0, 2.0, 9.0, 4.0, 1.0, 7.0, 6.0, 2.0, 3.0, 8.0],
            )
            .numeric(
                "passengers",
                [
                    10.0, 30.0, 20.0, 25.0, 40.0, 35.0, 15.0, 22.0, 28.0, 12.0, 33.0, 27.0,
                ],
            )
            .column(Column::temporal("scheduled", ts))
            .build()
            .unwrap()
    }

    #[test]
    fn progressive_matches_exhaustive() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let selector = ProgressiveSelector::new(&t, &udfs);
        for k in [1usize, 3, 5, 10, 25] {
            let (prog, _) = selector.top_k(k);
            let (exh, _) = exhaustive_top_k(&t, &udfs, k);
            let prog_scores: Vec<f64> = prog.iter().map(|s| s.score).collect();
            let exh_scores: Vec<f64> = exh.iter().map(|s| s.score).collect();
            for (a, b) in prog_scores.iter().zip(&exh_scores) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "k={k}: {prog_scores:?} vs {exh_scores:?}"
                );
            }
            assert_eq!(prog.len(), exh.len());
        }
    }

    #[test]
    fn small_k_skips_leaves() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let selector = ProgressiveSelector::new(&t, &udfs);
        let (top, stats) = selector.top_k(1);
        assert_eq!(top.len(), 1);
        assert!(stats.leaves_materialized <= stats.leaves_total, "{stats:?}");
        // Exhaustive materializes everything.
        let (_, exh_stats) = exhaustive_top_k(&t, &udfs, 1);
        assert_eq!(exh_stats.leaves_materialized, exh_stats.leaves_total);
        assert!(stats.nodes_generated <= exh_stats.nodes_generated);
    }

    #[test]
    fn shared_scans_fewer_than_nodes() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let (_, stats) = exhaustive_top_k(&t, &udfs, 100);
        assert!(stats.shared_scans > 0);
        assert!(
            stats.shared_scans * 2 < stats.nodes_generated,
            "shared scans {} should amortize over nodes {}",
            stats.shared_scans,
            stats.nodes_generated
        );
    }

    #[test]
    fn shared_scan_matches_direct_execution() {
        // Every progressive node's data must equal executing its query.
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let (top, _) = exhaustive_top_k(&t, &udfs, 1000);
        assert!(!top.is_empty());
        for scored in &top {
            let direct = deepeye_query::execute_with(&t, &scored.node.query, &udfs)
                .expect("progressive produced an executable query");
            assert_eq!(
                scored.node.data.series, direct.series,
                "mismatch for {:?}",
                scored.node.query
            );
        }
    }

    #[test]
    fn results_are_ordered_and_bounded() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let (top, _) = ProgressiveSelector::new(&t, &udfs).top_k(8);
        assert!(top.len() <= 8);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for s in &top {
            assert!((0.0..=1.0).contains(&s.score), "score {}", s.score);
        }
    }

    #[test]
    fn canonical_candidates_are_unique() {
        let t = mixed_table();
        let cands = canonical_candidates(&t);
        let mut ids: Vec<String> = cands.iter().map(|q| format!("{q:?}")).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(before, ids.len());
        assert!(before > 20, "expected a rich candidate set, got {before}");
    }

    #[test]
    fn huge_k_returns_everything() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let (top, stats) = ProgressiveSelector::new(&t, &udfs).top_k(10_000);
        assert_eq!(top.len(), stats.nodes_generated);
        assert_eq!(stats.leaves_materialized, stats.leaves_total);
        assert_eq!(stats.leaves_pruned, 0);
    }

    #[test]
    fn parallel_stats_merge_equals_sequential() {
        // Satellite: per-worker SelectionStats merged with += must report
        // exactly the totals of a sequential exhaustive run, and the ranked
        // output must be identical.
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let (seq, seq_stats) = exhaustive_top_k(&t, &udfs, 50);
        let (par, par_stats) = exhaustive_top_k_parallel(&t, &udfs, 50);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.node.id(), b.node.id());
            assert!((a.score - b.score).abs() < 1e-15);
        }
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let a = SelectionStats {
            leaves_materialized: 1,
            leaves_pruned: 2,
            leaves_total: 3,
            nodes_generated: 4,
            shared_scans: 5,
        };
        let b = SelectionStats {
            leaves_materialized: 10,
            leaves_pruned: 20,
            leaves_total: 30,
            nodes_generated: 40,
            shared_scans: 50,
        };
        let mut sum = a;
        sum += b;
        assert_eq!(
            sum,
            SelectionStats {
                leaves_materialized: 11,
                leaves_pruned: 22,
                leaves_total: 33,
                nodes_generated: 44,
                shared_scans: 55,
            }
        );
        let mut via_merge = a;
        via_merge.merge(&b);
        assert_eq!(sum, via_merge);
    }

    #[test]
    fn leaf_accounting_is_exact() {
        // Golden test: materialized + pruned must equal the leaves the
        // exhaustive path enumerates — which is the number of distinct
        // x-columns in the canonical candidate set. Nothing is silently
        // dropped or double-counted, at any k.
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let expected_leaves: std::collections::HashSet<String> = canonical_candidates(&t)
            .iter()
            .map(|q| q.x.clone())
            .collect();
        let (_, exh_stats) = exhaustive_top_k(&t, &udfs, 1);
        assert_eq!(exh_stats.leaves_total, expected_leaves.len());
        let selector = ProgressiveSelector::new(&t, &udfs);
        for k in [1usize, 2, 3, 5, 10, 100, 10_000] {
            let (_, stats) = selector.top_k(k);
            assert_eq!(
                stats.leaves_materialized + stats.leaves_pruned,
                stats.leaves_total,
                "k={k}: {stats:?}"
            );
            assert_eq!(stats.leaves_total, exh_stats.leaves_total, "k={k}");
        }
        // Small k on a wide table must actually prune something.
        let (_, stats) = selector.top_k(1);
        assert!(stats.leaves_pruned > 0, "{stats:?}");
    }

    #[test]
    fn observed_top_k_counters_match_stats() {
        let t = mixed_table();
        let udfs = UdfRegistry::default();
        let obs = deepeye_obs::Observer::enabled();
        let selector = ProgressiveSelector::new(&t, &udfs);
        let (top, stats) = selector.top_k_observed(3, &obs);
        let (plain, plain_stats) = selector.top_k(3);
        assert_eq!(top.len(), plain.len());
        assert_eq!(stats, plain_stats);
        assert_eq!(
            obs.counter("progressive.leaves_materialized"),
            stats.leaves_materialized as u64
        );
        assert_eq!(
            obs.counter("progressive.leaves_pruned"),
            stats.leaves_pruned as u64
        );
        assert_eq!(
            obs.counter("progressive.leaves_total"),
            stats.leaves_total as u64
        );
        assert_eq!(
            obs.counter("progressive.nodes_generated"),
            stats.nodes_generated as u64
        );
        assert_eq!(
            obs.counter("progressive.shared_scans"),
            stats.shared_scans as u64
        );
        let snap = obs.snapshot();
        let leaf_hist = snap.hist("progressive.leaf_ns");
        assert!(leaf_hist.is_some_and(|h| h.count == stats.leaves_materialized as u64));
        assert_eq!(obs.finished_spans().len(), 1);
        assert_eq!(obs.finished_spans()[0].name, "progressive.top_k");
    }
}
