//! Multi-column visualization selection — recommendation support for the
//! §II-B extensions: XYZ charts (group X as the series/color, bin/group Y
//! as the x-axis, aggregate Z), the shape of the paper's Figure 1(b)
//! stacked bar, plus multi-Y comparisons.
//!
//! The paper bounds this space at `704·m³` and leaves selection to the
//! same machinery; here rule filtering keeps the candidates sane (series
//! column must be categorical with few values, x-axis bin/group per the
//! §V-A transformation rules) and ranking reuses the factor triple on the
//! flattened chart with a series-legibility discount.

use crate::features::NodeFeatures;
use crate::partial_order::raw_match_quality;
use crate::rules;
use deepeye_data::{DataType, Table};
use deepeye_query::{
    execute_xyz, Aggregate, ChartType, MultiSeriesChart, Transform, UdfRegistry, XyzQuery,
};

/// Maximum number of series a multi-column chart may have before it stops
/// being legible (stacked bars with dozens of colors are noise).
pub const MAX_SERIES: usize = 8;

/// A scored multi-column recommendation.
#[derive(Debug, Clone)]
pub struct MultiRecommendation {
    pub rank: usize,
    pub query: XyzQuery,
    pub chart: MultiSeriesChart,
    pub score: f64,
}

/// Enumerate the rule-admitted XYZ candidates of a table:
/// - series column: categorical with 2–[`MAX_SERIES`] distinct values;
/// - x-axis column: any column admitted by the §V-A transformation rules
///   (grouped categorical, binned numeric/temporal), distinct from the
///   series column;
/// - z column: numerical, with AGG ∈ {SUM, AVG, CNT} (CNT also allows a
///   categorical z);
/// - chart: bar (stacked) for categorical/binned x, line for temporal x.
pub fn xyz_candidates(table: &Table) -> Vec<XyzQuery> {
    let mut out = Vec::new();
    for series_col in table.columns() {
        if series_col.data_type() != DataType::Categorical {
            continue;
        }
        let k = series_col.distinct_count();
        if !(2..=MAX_SERIES).contains(&k) {
            continue;
        }
        for x_col in table.columns() {
            if x_col.name() == series_col.name() {
                continue;
            }
            let x_type = x_col.data_type();
            for transform in rules::applicable_transforms(x_type) {
                let x_prime = rules::transformed_x_type(x_type, &transform);
                let chart = match x_prime {
                    DataType::Temporal => ChartType::Line,
                    _ => ChartType::Bar,
                };
                for z_col in table.columns() {
                    if z_col.name() == series_col.name() || z_col.name() == x_col.name() {
                        continue;
                    }
                    let aggs: Vec<Aggregate> = match z_col.data_type() {
                        DataType::Numerical => vec![Aggregate::Sum, Aggregate::Avg],
                        _ => vec![Aggregate::Cnt],
                    };
                    for aggregate in aggs {
                        out.push(XyzQuery {
                            chart,
                            series_column: series_col.name().to_owned(),
                            x: x_col.name().to_owned(),
                            x_transform: transform.clone(),
                            z: z_col.name().to_owned(),
                            aggregate,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Score a multi-series chart: the flattened chart's matching quality and
/// transform quality, a series-count legibility term, and a balance term
/// (series of wildly different coverage stack poorly).
pub fn score_multi(table: &Table, chart: &MultiSeriesChart) -> f64 {
    let flat = chart.flattened();
    let source_x_type = table
        .column_by_name(&chart.x_label)
        .map(|c| c.data_type())
        .unwrap_or(DataType::Categorical);
    let features = NodeFeatures::from_chart(&flat, table.row_count(), source_x_type);
    // Reuse the single-series match quality on the flattened view via a
    // synthetic node (the query part is irrelevant to M).
    let node = crate::node::VisNode {
        query: deepeye_query::VisQuery {
            chart: flat.chart,
            x: chart.x_label.clone(),
            y: None,
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: deepeye_query::SortOrder::None,
        },
        data: flat,
        features,
    };
    let m = raw_match_quality(&node);
    let q = crate::partial_order::transform_quality(&node);

    let s = chart.series.len() as f64;
    let legibility = if chart.series.len() <= MAX_SERIES {
        1.0 - (s - 2.0).max(0.0) / (2.0 * MAX_SERIES as f64)
    } else {
        0.2
    };
    let sizes: Vec<f64> = chart
        .series
        .iter()
        .map(|(_, pts)| pts.len() as f64)
        .collect();
    let balance = deepeye_data::stats::min(&sizes).unwrap_or(0.0)
        / deepeye_data::stats::max(&sizes).unwrap_or(1.0).max(1.0);

    (m + q + legibility + balance) / 4.0
}

/// Recommend the top-k multi-column charts of a table.
pub fn recommend_multi(table: &Table, k: usize, udfs: &UdfRegistry) -> Vec<MultiRecommendation> {
    let mut scored: Vec<(XyzQuery, MultiSeriesChart, f64)> = Vec::new();
    for query in xyz_candidates(table) {
        let Ok(chart) = execute_xyz(table, &query, udfs) else {
            continue;
        };
        if chart.series.len() < 2 {
            continue; // a single series is not a multi-column story
        }
        let score = score_multi(table, &chart);
        scored.push((query, chart, score));
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    scored
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(i, (query, chart, score))| MultiRecommendation {
            rank: i + 1,
            query,
            chart,
            score,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Multi-Y (case (i) of §II-B): one x-column, several y-columns compared on
// a shared axis.
// ---------------------------------------------------------------------------

/// A scored multi-Y recommendation.
#[derive(Debug, Clone)]
pub struct MultiYRecommendation {
    pub rank: usize,
    pub query: deepeye_query::MultiYQuery,
    pub chart: MultiSeriesChart,
    pub score: f64,
}

/// How close two value ranges must be (ratio of the smaller to the larger
/// span) for their columns to share one y-axis legibly.
pub const AXIS_COMPAT_THRESHOLD: f64 = 0.05;

/// Span of a numeric column (max − min), `None` when not numeric/empty.
fn span_of(table: &Table, name: &str) -> Option<f64> {
    let col = table.column_by_name(name)?;
    if col.data_type() != DataType::Numerical {
        return None;
    }
    Some((col.max_scalar()? - col.min_scalar()?).abs())
}

/// Enumerate multi-Y candidates: an x-column admitted by the rules paired
/// with 2–3 numeric y-columns whose value spans are axis-compatible
/// (series with wildly different magnitudes are unreadable on one scale —
/// a constraint the paper's "compare the Y_i columns" intent presumes).
pub fn multi_y_candidates(table: &Table) -> Vec<deepeye_query::MultiYQuery> {
    let numeric: Vec<(&str, f64)> = table
        .columns()
        .iter()
        .filter_map(|c| span_of(table, c.name()).map(|s| (c.name(), s)))
        .collect();
    let mut out = Vec::new();
    for x_col in table.columns() {
        let x_type = x_col.data_type();
        for transform in rules::applicable_transforms(x_type) {
            let x_prime = rules::transformed_x_type(x_type, &transform);
            let chart = match x_prime {
                DataType::Temporal => ChartType::Line,
                _ => ChartType::Bar,
            };
            // All axis-compatible pairs (and triples) of y-columns.
            for i in 0..numeric.len() {
                for j in i + 1..numeric.len() {
                    let (ya, sa) = numeric[i];
                    let (yb, sb) = numeric[j];
                    if ya == x_col.name() || yb == x_col.name() {
                        continue;
                    }
                    let ratio = sa.min(sb) / sa.max(sb).max(1e-12);
                    if ratio < AXIS_COMPAT_THRESHOLD {
                        continue;
                    }
                    out.push(deepeye_query::MultiYQuery {
                        chart,
                        x: x_col.name().to_owned(),
                        ys: vec![ya.to_owned(), yb.to_owned()],
                        transform: transform.clone(),
                        aggregate: Aggregate::Avg,
                        order: deepeye_query::SortOrder::ByX,
                    });
                }
            }
        }
    }
    out
}

/// Recommend the top-k multi-Y comparisons of a table. Scoring combines
/// the per-series flattened match quality, the axis balance of the series,
/// and how differently the series move (comparisons of identical lines are
/// pointless; so are completely unrelated ones — the inverted-U again).
pub fn recommend_multi_y(table: &Table, k: usize, udfs: &UdfRegistry) -> Vec<MultiYRecommendation> {
    let mut scored: Vec<(deepeye_query::MultiYQuery, MultiSeriesChart, f64)> = Vec::new();
    for query in multi_y_candidates(table) {
        let Ok(chart) = deepeye_query::execute_multi_y(table, &query, udfs) else {
            continue;
        };
        if chart.series.len() < 2 || chart.series.iter().any(|(_, pts)| pts.len() < 2) {
            continue;
        }
        // Series divergence: mean pairwise shape distance, mapped through
        // an inverted-U (0 at identical, 0 at unrelated, peak in between).
        let shapes: Vec<Vec<f64>> = chart
            .series
            .iter()
            .map(|(_, pts)| pts.iter().map(|(_, y)| *y).collect())
            .collect();
        let mut dist_sum = 0.0;
        let mut pairs = 0.0;
        for i in 0..shapes.len() {
            for j in i + 1..shapes.len() {
                dist_sum += crate::similarity::shape_distance(&shapes[i], &shapes[j], 16);
                pairs += 1.0;
            }
        }
        let mean_dist = if pairs > 0.0 { dist_sum / pairs } else { 0.0 };
        // shape_distance of z-normalized series tops out around 2.0.
        let u = (mean_dist / 2.0).clamp(0.0, 1.0);
        let divergence = 4.0 * u * (1.0 - u);

        let flat = chart.flattened();
        let features = NodeFeatures::from_chart(&flat, table.row_count(), DataType::Numerical);
        let node = crate::node::VisNode {
            query: deepeye_query::VisQuery {
                chart: flat.chart,
                x: chart.x_label.clone(),
                y: None,
                transform: query.transform.clone(),
                aggregate: Aggregate::Cnt,
                order: deepeye_query::SortOrder::None,
            },
            data: flat,
            features,
        };
        let m = raw_match_quality(&node);
        let q = crate::partial_order::transform_quality(&node);
        let score = (m + q + divergence) / 3.0;
        scored.push((query, chart, score));
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    scored
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(i, (query, chart, score))| MultiYRecommendation {
            rank: i + 1,
            query,
            chart,
            score,
        })
        .collect()
}

#[cfg(test)]
mod multi_y_tests {
    use super::*;
    use deepeye_data::TableBuilder;

    fn table() -> Table {
        let n = 60;
        TableBuilder::new("t")
            .text("cat", (0..n).map(|i| ["a", "b", "c", "d"][i % 4]))
            .numeric("sales", (0..n).map(|i| 100.0 + (i % 13) as f64 * 3.0))
            .numeric(
                "returns",
                (0..n).map(|i| 90.0 + ((i * 7) % 17) as f64 * 2.0),
            )
            .numeric("micros", (0..n).map(|i| (i % 5) as f64 * 1e-4))
            .build()
            .unwrap()
    }

    #[test]
    fn candidates_respect_axis_compatibility() {
        let cands = multi_y_candidates(&table());
        assert!(!cands.is_empty());
        for c in &cands {
            assert_eq!(c.ys.len(), 2);
            // The micro-scale column never shares an axis with the others.
            assert!(
                !c.ys.contains(&"micros".to_owned()) || c.ys.iter().all(|y| y == "micros"),
                "axis-incompatible pair admitted: {c:?}"
            );
            assert!(!c.ys.contains(&c.x));
        }
    }

    #[test]
    fn recommendations_are_scored_and_ordered() {
        let recs = recommend_multi_y(&table(), 4, &UdfRegistry::default());
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &recs {
            assert_eq!(r.chart.series.len(), 2);
            assert!((0.0..=1.0).contains(&r.score), "score {}", r.score);
        }
    }

    #[test]
    fn tables_without_numeric_pairs_yield_nothing() {
        let t = TableBuilder::new("t")
            .text("a", ["x", "y"])
            .numeric("only", [1.0, 2.0])
            .build()
            .unwrap();
        assert!(multi_y_candidates(&t).is_empty());
        assert!(recommend_multi_y(&t, 3, &UdfRegistry::default()).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{parse_timestamp, Column, TableBuilder};

    fn flights() -> Table {
        let n = 120;
        let times: Vec<_> = (0..n)
            .map(|i| parse_timestamp(&format!("2015-{:02}-{:02}", i % 12 + 1, i % 28 + 1)).unwrap())
            .collect();
        TableBuilder::new("t")
            .column(Column::temporal("when", times))
            .text("dest", (0..n).map(|i| ["NYC", "LA", "SF"][i % 3]))
            .numeric("pax", (0..n).map(|i| 100.0 + (i % 37) as f64 * 3.0))
            .numeric("delay", (0..n).map(|i| (i % 23) as f64 - 5.0))
            .build()
            .unwrap()
    }

    #[test]
    fn candidates_respect_rules() {
        let t = flights();
        let cands = xyz_candidates(&t);
        assert!(!cands.is_empty());
        for c in &cands {
            // Series column is the categorical one.
            assert_eq!(c.series_column, "dest");
            assert_ne!(c.x, c.series_column);
            assert_ne!(c.z, c.x);
            assert_ne!(c.z, c.series_column);
            assert!(c.aggregate != Aggregate::Raw);
            assert!(!matches!(c.x_transform, Transform::None));
        }
        // Temporal x gets line charts, others bars.
        assert!(cands
            .iter()
            .any(|c| c.chart == ChartType::Line && c.x == "when"));
    }

    #[test]
    fn recommendations_are_ordered_and_multi_series() {
        let t = flights();
        let recs = recommend_multi(&t, 5, &UdfRegistry::default());
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &recs {
            assert!(r.chart.series.len() >= 2);
            assert!(r.chart.series.len() <= MAX_SERIES);
            assert!((0.0..=1.0).contains(&r.score));
        }
        assert_eq!(recs[0].rank, 1);
    }

    #[test]
    fn too_many_series_excluded() {
        // 40 distinct categories: no multi-column candidate uses it as the
        // series column.
        let n = 200;
        let t = TableBuilder::new("t")
            .text("wide", (0..n).map(|i| format!("c{}", i % 40)))
            .text("narrow", (0..n).map(|i| ["a", "b"][i % 2]))
            .numeric("v", (0..n).map(|i| i as f64))
            .build()
            .unwrap();
        let cands = xyz_candidates(&t);
        assert!(cands.iter().all(|c| c.series_column == "narrow"));
    }

    #[test]
    fn no_categorical_column_means_no_candidates() {
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(f64::from))
            .numeric("b", (0..50).map(|i| f64::from(i) * 2.0))
            .build()
            .unwrap();
        assert!(xyz_candidates(&t).is_empty());
        assert!(recommend_multi(&t, 3, &UdfRegistry::default()).is_empty());
    }
}
