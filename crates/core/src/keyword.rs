//! Keyword search over visualizations — the paper's stated future work
//! ("support keyword queries such that users specify their intent in a
//! natural way", §VIII, realized in the authors' follow-up DeepEye demos).
//!
//! A keyword query like `"delay by hour as line"` is matched against each
//! candidate node: tokens can hit column names, chart types, aggregates,
//! bin units, or intent words ("trend", "correlation", "proportion",
//! "distribution"). Matching rescales the base ranking instead of hard
//! filtering, so a vague query degrades gracefully to the default top-k.

use crate::node::VisNode;
use deepeye_data::TimeUnit;
use deepeye_query::{Aggregate, BinStrategy, ChartType, Transform};

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KeywordQuery {
    /// Lower-cased free tokens matched against column names.
    pub terms: Vec<String>,
    /// Explicit chart-type mentions.
    pub charts: Vec<ChartType>,
    /// Explicit aggregate mentions.
    pub aggregates: Vec<Aggregate>,
    /// Explicit bin-unit mentions ("hourly", "by month", …).
    pub units: Vec<TimeUnit>,
    /// Intent words that map to chart families.
    pub intents: Vec<Intent>,
}

/// High-level user intent recognized from keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// "trend", "over time", "growth" → line charts.
    Trend,
    /// "correlation", "relationship", "versus" → scatter charts.
    Correlation,
    /// "proportion", "share", "breakdown" → pie charts.
    Proportion,
    /// "compare", "ranking", "top" → bar charts.
    Comparison,
    /// "distribution", "histogram", "spread" → binned bar charts.
    Distribution,
}

impl Intent {
    fn chart(self) -> ChartType {
        match self {
            Intent::Trend => ChartType::Line,
            Intent::Correlation => ChartType::Scatter,
            Intent::Proportion => ChartType::Pie,
            Intent::Comparison | Intent::Distribution => ChartType::Bar,
        }
    }
}

fn intent_of(token: &str) -> Option<Intent> {
    match token {
        "trend" | "trends" | "time" | "growth" | "evolution" | "over" => Some(Intent::Trend),
        "correlation" | "correlated" | "relationship" | "versus" | "vs" => {
            Some(Intent::Correlation)
        }
        "proportion" | "share" | "breakdown" | "percentage" | "ratio" => Some(Intent::Proportion),
        "compare" | "comparison" | "ranking" | "top" | "best" | "worst" => Some(Intent::Comparison),
        "distribution" | "histogram" | "spread" | "frequency" => Some(Intent::Distribution),
        _ => None,
    }
}

fn unit_of(token: &str) -> Option<TimeUnit> {
    match token {
        "minute" | "minutely" => Some(TimeUnit::Minute),
        "hour" | "hourly" => Some(TimeUnit::Hour),
        "day" | "daily" => Some(TimeUnit::Day),
        "week" | "weekly" => Some(TimeUnit::Week),
        "month" | "monthly" => Some(TimeUnit::Month),
        "quarter" | "quarterly" => Some(TimeUnit::Quarter),
        "year" | "yearly" | "annual" => Some(TimeUnit::Year),
        _ => None,
    }
}

fn aggregate_of(token: &str) -> Option<Aggregate> {
    match token {
        "sum" | "total" => Some(Aggregate::Sum),
        "average" | "avg" | "mean" => Some(Aggregate::Avg),
        "count" | "cnt" | "number" => Some(Aggregate::Cnt),
        _ => None,
    }
}

const STOPWORDS: [&str; 12] = [
    "by", "of", "as", "a", "an", "the", "in", "per", "for", "with", "show", "chart",
];

impl KeywordQuery {
    /// Parse free text into a keyword query.
    pub fn parse(text: &str) -> Self {
        let mut q = KeywordQuery::default();
        for raw in text.split(|c: char| !c.is_alphanumeric()) {
            let token = raw.to_lowercase();
            if token.is_empty() || STOPWORDS.contains(&token.as_str()) {
                continue;
            }
            if let Some(chart) = ChartType::from_name(&token) {
                q.charts.push(chart);
            } else if let Some(unit) = unit_of(&token) {
                q.units.push(unit);
            } else if let Some(agg) = aggregate_of(&token) {
                q.aggregates.push(agg);
            } else if let Some(intent) = intent_of(&token) {
                q.intents.push(intent);
            } else {
                q.terms.push(token);
            }
        }
        q
    }

    /// Relevance of a node to this query, in [0, 1]. An empty query scores
    /// every node 1 (no-op rescaling).
    pub fn relevance(&self, node: &VisNode) -> f64 {
        let mut score = 0.0;
        let mut weight = 0.0;

        if !self.terms.is_empty() {
            weight += 2.0;
            let cols: Vec<String> = node.columns().iter().map(|c| c.to_lowercase()).collect();
            let hits = self
                .terms
                .iter()
                .filter(|t| cols.iter().any(|c| c.contains(t.as_str())))
                .count();
            score += 2.0 * hits as f64 / self.terms.len() as f64;
        }
        if !self.charts.is_empty() {
            weight += 1.0;
            if self.charts.contains(&node.chart_type()) {
                score += 1.0;
            }
        }
        if !self.intents.is_empty() {
            weight += 1.0;
            if self.intents.iter().any(|i| i.chart() == node.chart_type()) {
                score += 1.0;
            }
        }
        if !self.aggregates.is_empty() {
            weight += 0.5;
            if self.aggregates.contains(&node.query.aggregate) {
                score += 0.5;
            }
        }
        if !self.units.is_empty() {
            weight += 0.5;
            let unit_hit = matches!(
                &node.query.transform,
                Transform::Bin(BinStrategy::Unit(u)) if self.units.contains(u)
            );
            if unit_hit {
                score += 0.5;
            }
        }

        if weight == 0.0 {
            1.0
        } else {
            score / weight
        }
    }

    /// Re-rank a base ranking by keyword relevance: stable sort by
    /// descending relevance, so the base order breaks ties. Nodes with no
    /// keyword match sink below all partial matches but are not dropped.
    pub fn rerank(&self, nodes: &[VisNode], base_order: &[usize]) -> Vec<usize> {
        let mut order = base_order.to_vec();
        let rel: Vec<f64> = nodes.iter().map(|n| self.relevance(n)).collect();
        order.sort_by(|&a, &b| rel[b].total_cmp(&rel[a]));
        order
    }
}

/// Search a table: run the default pipeline, then keyword-rerank.
pub fn keyword_search(
    eye: &crate::deepeye::DeepEye,
    table: &deepeye_data::Table,
    text: &str,
    k: usize,
) -> Vec<crate::deepeye::Recommendation> {
    let query = KeywordQuery::parse(text);
    let nodes = eye.candidates(table);
    if nodes.is_empty() {
        return Vec::new();
    }
    let base = crate::ranking::rank_by_partial_order(&nodes);
    let order = query.rerank(&nodes, &base);
    let factors = crate::partial_order::compute_factors(&nodes);
    // One result per (chart, columns, transform, aggregate): order
    // variants of one chart would otherwise fill the page (same
    // deduplication as `DeepEye::rank_nodes`); single-mark charts are
    // never useful search hits.
    let variant_key = |n: &crate::node::VisNode| {
        format!(
            "{}|{}|{}|{:?}|{:?}",
            n.query.chart,
            n.query.x,
            n.query.y.as_deref().unwrap_or(""),
            n.query.transform,
            n.query.aggregate
        )
    };
    let mut seen = std::collections::HashSet::new();
    let mut nodes: Vec<Option<crate::node::VisNode>> = nodes.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(k.min(nodes.len()));
    for idx in order {
        let Some(node_ref) = nodes[idx].as_ref() else {
            debug_assert!(false, "ranking emitted index {idx} twice");
            continue;
        };
        if node_ref.data.series.len() < 2 || !seen.insert(variant_key(node_ref)) {
            continue;
        }
        let Some(node) = nodes[idx].take() else {
            continue;
        };
        out.push(crate::deepeye::Recommendation {
            rank: out.len() + 1,
            node,
            factors: factors[idx],
        });
        if out.len() >= k {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepeye::DeepEye;
    use deepeye_data::TableBuilder;

    fn table() -> deepeye_data::Table {
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ", "OO", "AA"])
            .numeric("delay", [5.0, 3.0, 1.0, 2.0, 9.0, 4.0])
            .numeric("passengers", [10.0, 30.0, 20.0, 25.0, 40.0, 35.0])
            .build()
            .unwrap()
    }

    #[test]
    fn parse_classifies_tokens() {
        let q = KeywordQuery::parse("average delay by hour as line trend");
        assert_eq!(q.aggregates, vec![Aggregate::Avg]);
        assert_eq!(q.units, vec![TimeUnit::Hour]);
        assert_eq!(q.charts, vec![ChartType::Line]);
        assert_eq!(q.intents, vec![Intent::Trend]);
        assert_eq!(q.terms, vec!["delay"]);
    }

    #[test]
    fn empty_query_is_noop() {
        let q = KeywordQuery::parse("");
        let eye = DeepEye::with_defaults();
        let nodes = eye.candidates(&table());
        for n in &nodes {
            assert_eq!(q.relevance(n), 1.0);
        }
        let base: Vec<usize> = (0..nodes.len()).collect();
        assert_eq!(q.rerank(&nodes, &base), base);
    }

    #[test]
    fn chart_keyword_boosts_matching_type() {
        let eye = DeepEye::with_defaults();
        let recs = keyword_search(&eye, &table(), "pie breakdown of passengers", 3);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].node.chart_type(), ChartType::Pie);
        let cols = recs[0].node.columns();
        assert!(
            cols.contains(&"passengers"),
            "column term respected: {cols:?}"
        );
    }

    #[test]
    fn column_terms_direct_search() {
        let eye = DeepEye::with_defaults();
        let recs = keyword_search(&eye, &table(), "delay", 5);
        // Every top hit involves the delay column.
        assert!(recs.iter().all(|r| r.node.columns().contains(&"delay")));
    }

    #[test]
    fn intent_maps_to_chart_family() {
        assert_eq!(Intent::Trend.chart(), ChartType::Line);
        assert_eq!(Intent::Correlation.chart(), ChartType::Scatter);
        assert_eq!(Intent::Proportion.chart(), ChartType::Pie);
        let q = KeywordQuery::parse("correlation delay versus passengers");
        assert!(q.intents.contains(&Intent::Correlation));
    }

    #[test]
    fn stopwords_and_punctuation_ignored() {
        let q = KeywordQuery::parse("show the delay, by month!");
        assert_eq!(q.terms, vec!["delay"]);
        assert_eq!(q.units, vec![TimeUnit::Month]);
    }
}
