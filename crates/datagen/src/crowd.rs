//! Crowdsourced-comparison simulation and aggregation.
//!
//! The paper built its ranking ground truth by asking 100 students for
//! 285,236 pairwise comparisons and merging them into a total order with
//! crowdsourced top-k techniques (its refs [16, 17]). This module
//! reproduces that pipeline: simulate noisy annotators who compare chart
//! pairs (more disagreement the closer the true scores), then merge the
//! comparisons back into a total order with Borda counting or iterative
//! Copeland refinement — so experiments can use *merged-judgment* ground
//! truth rather than reading the oracle's scores directly.

use crate::oracle::PerceptionOracle;
use deepeye_core::VisNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated pairwise judgment: annotator `worker` preferred `winner`
/// over `loser`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparison {
    pub worker: usize,
    pub winner: usize,
    pub loser: usize,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdConfig {
    /// Number of simulated annotators.
    pub workers: usize,
    /// Comparisons requested per worker.
    pub comparisons_per_worker: usize,
    /// Bradley–Terry-style temperature: higher = noisier judgments.
    pub temperature: f64,
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            workers: 100,
            comparisons_per_worker: 40,
            temperature: 8.0,
            seed: 77,
        }
    }
}

/// Simulate pairwise comparisons over a node set: each judgment follows a
/// Bradley–Terry model on the oracle's latent scores, so near-ties are
/// noisy and clear gaps are near-deterministic — like real annotators.
pub fn simulate_comparisons(
    nodes: &[VisNode],
    oracle: &PerceptionOracle,
    config: &CrowdConfig,
) -> Vec<Comparison> {
    let n = nodes.len();
    if n < 2 {
        return Vec::new();
    }
    let scores: Vec<f64> = nodes.iter().map(|nd| oracle.score(nd)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.workers * config.comparisons_per_worker);
    for worker in 0..config.workers {
        for _ in 0..config.comparisons_per_worker {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let p_a = 1.0 / (1.0 + ((scores[b] - scores[a]) / config.temperature).exp());
            let (winner, loser) = if rng.gen_bool(p_a.clamp(0.0, 1.0)) {
                (a, b)
            } else {
                (b, a)
            };
            out.push(Comparison {
                worker,
                winner,
                loser,
            });
        }
    }
    out
}

/// Merge comparisons by Borda count: each win is one point; ties break by
/// index. Returns the merged order, best first.
pub fn merge_borda(n: usize, comparisons: &[Comparison]) -> Vec<usize> {
    let mut wins = vec![0usize; n];
    for c in comparisons {
        if c.winner < n {
            wins[c.winner] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    order
}

/// Merge comparisons with an iterative rating model (Elo-like batch
/// updates over several passes): more robust than Borda when sampling is
/// uneven because it weights wins by opponent strength. Returns the
/// merged order, best first.
pub fn merge_iterative(n: usize, comparisons: &[Comparison], passes: usize) -> Vec<usize> {
    let mut rating = vec![0.0f64; n];
    let k = 1.0;
    for _ in 0..passes.max(1) {
        for c in comparisons {
            if c.winner >= n || c.loser >= n {
                continue;
            }
            let expect_w = 1.0 / (1.0 + ((rating[c.loser] - rating[c.winner]) / 4.0).exp());
            let delta = k * (1.0 - expect_w);
            rating[c.winner] += delta;
            rating[c.loser] -= delta;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rating[b].total_cmp(&rating[a]).then(a.cmp(&b)));
    order
}

/// Kendall tau-a rank correlation between two orders of the same items,
/// in [-1, 1]. Used to validate that merged crowd orders recover the
/// latent ranking.
pub fn kendall_tau(order_a: &[usize], order_b: &[usize]) -> f64 {
    let n = order_a.len();
    assert_eq!(n, order_b.len(), "orders must cover the same items");
    if n < 2 {
        return 1.0;
    }
    let mut pos_a = vec![0usize; n];
    let mut pos_b = vec![0usize; n];
    for (p, &i) in order_a.iter().enumerate() {
        pos_a[i] = p;
    }
    for (p, &i) in order_b.iter().enumerate() {
        pos_b[i] = p;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let a = pos_a[i].cmp(&pos_a[j]);
            let b = pos_b[i].cmp(&pos_b[j]);
            if a == b {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

/// The full ground-truth pipeline for one dataset's nodes: simulate the
/// crowd, merge with the iterative model, return the merged total order.
pub fn crowd_total_order(
    nodes: &[VisNode],
    oracle: &PerceptionOracle,
    config: &CrowdConfig,
) -> Vec<usize> {
    let comparisons = simulate_comparisons(nodes, oracle, config);
    merge_iterative(nodes.len(), &comparisons, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::flight_table;
    use deepeye_core::DeepEye;

    fn sample_nodes(count: usize) -> Vec<VisNode> {
        let t = flight_table(21, 1_200);
        let mut nodes = DeepEye::with_defaults().candidates(&t);
        nodes.truncate(count);
        nodes
    }

    #[test]
    fn simulation_respects_score_gaps() {
        let nodes = sample_nodes(20);
        let oracle = PerceptionOracle::default();
        let config = CrowdConfig {
            workers: 60,
            comparisons_per_worker: 50,
            ..Default::default()
        };
        let comparisons = simulate_comparisons(&nodes, &oracle, &config);
        assert_eq!(comparisons.len(), 3_000);
        // The best- and worst-scoring nodes should win/lose most matchups.
        let scores: Vec<f64> = nodes.iter().map(|n| oracle.score(n)).collect();
        let best = (0..nodes.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        let (mut wins, mut games) = (0usize, 0usize);
        for c in &comparisons {
            if c.winner == best {
                wins += 1;
                games += 1;
            } else if c.loser == best {
                games += 1;
            }
        }
        assert!(games > 0);
        assert!(
            wins as f64 / games as f64 > 0.6,
            "best node should win most comparisons ({wins}/{games})"
        );
    }

    #[test]
    fn merges_recover_latent_order() {
        let nodes = sample_nodes(15);
        let oracle = PerceptionOracle::default();
        let scores: Vec<f64> = nodes.iter().map(|n| oracle.score(n)).collect();
        let mut latent: Vec<usize> = (0..nodes.len()).collect();
        latent.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));

        let config = CrowdConfig {
            workers: 100,
            comparisons_per_worker: 80,
            ..Default::default()
        };
        let comparisons = simulate_comparisons(&nodes, &oracle, &config);
        let borda = merge_borda(nodes.len(), &comparisons);
        let iterative = merge_iterative(nodes.len(), &comparisons, 3);
        let tau_b = kendall_tau(&borda, &latent);
        let tau_i = kendall_tau(&iterative, &latent);
        assert!(tau_b > 0.6, "Borda tau {tau_b}");
        assert!(tau_i > 0.6, "iterative tau {tau_i}");
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = vec![0usize, 1, 2, 3];
        let b = vec![3usize, 2, 1, 0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &b), -1.0);
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[0], &[0]), 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        let oracle = PerceptionOracle::default();
        let config = CrowdConfig::default();
        assert!(simulate_comparisons(&[], &oracle, &config).is_empty());
        let one = sample_nodes(1);
        assert!(simulate_comparisons(&one, &oracle, &config).is_empty());
        assert_eq!(merge_borda(0, &[]), Vec::<usize>::new());
        assert_eq!(merge_iterative(3, &[], 2), vec![0, 1, 2]);
    }

    #[test]
    fn determinism() {
        let nodes = sample_nodes(10);
        let oracle = PerceptionOracle::default();
        let config = CrowdConfig::default();
        assert_eq!(
            simulate_comparisons(&nodes, &oracle, &config),
            simulate_comparisons(&nodes, &oracle, &config)
        );
        assert_eq!(
            crowd_total_order(&nodes, &oracle, &config),
            crowd_total_order(&nodes, &oracle, &config)
        );
    }
}
