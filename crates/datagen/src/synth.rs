//! Synthetic column generators.
//!
//! The paper's 42 real-world datasets are not redistributable, so the
//! corpus is synthesized with matching marginal statistics (tuple counts,
//! column counts, type mix) and realistic cross-column structure: skewed
//! categoricals, trending/seasonal/correlated numerics, and regular or
//! jittered temporal columns. Everything is seeded and deterministic.

use deepeye_data::{Civil, Column, ColumnData, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator context.
pub struct Synth {
    rng: StdRng,
}

impl Synth {
    pub fn new(seed: u64) -> Self {
        Synth {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Standard normal via Box–Muller (rand 0.8 without rand_distr).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Zipf-ish skewed index in `0..k`: probability ∝ 1/(i+1)^s.
    pub fn zipf(&mut self, k: usize, s: f64) -> usize {
        debug_assert!(k > 0);
        let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        k - 1
    }

    /// Categorical column: `rows` draws from `vocab` with Zipf skew `s`.
    pub fn categorical(&mut self, name: &str, rows: usize, vocab: &[&str], s: f64) -> Column {
        let values: Vec<String> = (0..rows)
            .map(|_| vocab[self.zipf(vocab.len(), s)].to_owned())
            .collect();
        Column::text(name, values)
    }

    /// Generic categorical vocabulary `{prefix}0 … {prefix}{k-1}`.
    pub fn categorical_generic(&mut self, name: &str, rows: usize, k: usize, s: f64) -> Column {
        let vocab: Vec<String> = (0..k).map(|i| format!("{name}_{i}")).collect();
        let refs: Vec<&str> = vocab.iter().map(String::as_str).collect();
        self.categorical(name, rows, &refs, s)
    }

    /// Uniform numeric column in `[lo, hi)`.
    pub fn uniform(&mut self, name: &str, rows: usize, lo: f64, hi: f64) -> Column {
        Column::numeric(name, (0..rows).map(|_| self.rng.gen_range(lo..hi)))
    }

    /// Normal numeric column.
    pub fn gaussian(&mut self, name: &str, rows: usize, mu: f64, sigma: f64) -> Column {
        let vals: Vec<f64> = (0..rows).map(|_| mu + sigma * self.normal()).collect();
        Column::numeric(name, vals)
    }

    /// Log-normal numeric column (e.g. prices, incomes).
    pub fn lognormal(&mut self, name: &str, rows: usize, mu: f64, sigma: f64) -> Column {
        let vals: Vec<f64> = (0..rows)
            .map(|_| (mu + sigma * self.normal()).exp())
            .collect();
        Column::numeric(name, vals)
    }

    /// Numeric column linearly correlated with `base`:
    /// `y = intercept + slope·x + noise`.
    pub fn correlated(
        &mut self,
        name: &str,
        base: &[f64],
        slope: f64,
        intercept: f64,
        noise_sigma: f64,
    ) -> Column {
        let vals: Vec<f64> = base
            .iter()
            .map(|&x| intercept + slope * x + noise_sigma * self.normal())
            .collect();
        Column::numeric(name, vals)
    }

    /// Trending series over the row index with additive noise: captures
    /// "grows over time" columns.
    pub fn trending(
        &mut self,
        name: &str,
        rows: usize,
        start: f64,
        per_row: f64,
        noise_sigma: f64,
    ) -> Column {
        let vals: Vec<f64> = (0..rows)
            .map(|i| start + per_row * i as f64 + noise_sigma * self.normal())
            .collect();
        Column::numeric(name, vals)
    }

    /// Seasonal series: `amp·sin(2π·i/period) + level + noise`.
    pub fn seasonal(
        &mut self,
        name: &str,
        rows: usize,
        level: f64,
        amp: f64,
        period: f64,
        noise_sigma: f64,
    ) -> Column {
        let vals: Vec<f64> = (0..rows)
            .map(|i| {
                level
                    + amp * (2.0 * std::f64::consts::PI * i as f64 / period).sin()
                    + noise_sigma * self.normal()
            })
            .collect();
        Column::numeric(name, vals)
    }

    /// Temporal column of `rows` evenly spaced timestamps starting at
    /// `start`, with `step_seconds` spacing and ±`jitter_seconds` noise.
    pub fn temporal(
        &mut self,
        name: &str,
        rows: usize,
        start: Timestamp,
        step_seconds: i64,
        jitter_seconds: i64,
    ) -> Column {
        let vals: Vec<Timestamp> = (0..rows)
            .map(|i| {
                let jitter = if jitter_seconds > 0 {
                    self.rng.gen_range(-jitter_seconds..=jitter_seconds)
                } else {
                    0
                };
                Timestamp::from_unix_seconds(
                    start.unix_seconds() + i as i64 * step_seconds + jitter,
                )
            })
            .collect();
        Column::temporal(name, vals)
    }

    /// Column with a fraction of null cells (dirty-data realism).
    pub fn with_nulls(&mut self, column: Column, null_rate: f64) -> Column {
        let name = column.name().to_owned();
        let data = match column.data().clone() {
            ColumnData::Numeric(v) => ColumnData::Numeric(
                v.into_iter()
                    .map(|x| {
                        if self.rng.gen_bool(null_rate) {
                            None
                        } else {
                            x
                        }
                    })
                    .collect(),
            ),
            ColumnData::Text(v) => ColumnData::Text(
                v.into_iter()
                    .map(|x| {
                        if self.rng.gen_bool(null_rate) {
                            None
                        } else {
                            x
                        }
                    })
                    .collect(),
            ),
            ColumnData::Temporal(v) => ColumnData::Temporal(
                v.into_iter()
                    .map(|x| {
                        if self.rng.gen_bool(null_rate) {
                            None
                        } else {
                            x
                        }
                    })
                    .collect(),
            ),
        };
        Column::new(name, data)
    }
}

/// Midnight on Jan 1 of `year`.
pub fn year_start(year: i32) -> Timestamp {
    // Jan 1 is a valid civil date in every year.
    #[allow(clippy::expect_used)]
    let civil = Civil::date(year, 1, 1).expect("valid date");
    Timestamp::from_civil(civil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{correlation, DataType};

    #[test]
    fn determinism() {
        let mut a = Synth::new(7);
        let mut b = Synth::new(7);
        assert_eq!(a.uniform("x", 20, 0.0, 1.0), b.uniform("x", 20, 0.0, 1.0));
        let mut c = Synth::new(8);
        assert_ne!(a.uniform("x", 20, 0.0, 1.0), c.uniform("x", 20, 0.0, 1.0));
    }

    #[test]
    fn zipf_is_skewed() {
        let mut s = Synth::new(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[s.zipf(5, 1.2)] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn gaussian_moments() {
        let mut s = Synth::new(2);
        let c = s.gaussian("g", 20_000, 10.0, 2.0);
        let vals = c.numbers();
        let mean = deepeye_data::stats::mean(&vals);
        let sd = deepeye_data::stats::stddev(&vals);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn correlated_column_correlates() {
        let mut s = Synth::new(3);
        let base = s.uniform("x", 500, 0.0, 100.0);
        let xs = base.numbers();
        let y = s.correlated("y", &xs, 2.0, 5.0, 4.0);
        let c = correlation(&xs, &y.numbers());
        assert!(c.strength() > 0.9, "corr {}", c.strength());
    }

    #[test]
    fn trending_column_trends() {
        let mut s = Synth::new(4);
        let c = s.trending("t", 200, 0.0, 1.0, 2.0);
        let t = deepeye_data::trend_of_series(&c.numbers());
        assert!(t.follows_distribution);
    }

    #[test]
    fn temporal_column_is_sorted_without_jitter() {
        let mut s = Synth::new(5);
        let c = s.temporal("when", 100, year_start(2015), 3600, 0);
        let ts = c.timestamps();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.data_type(), DataType::Temporal);
    }

    #[test]
    fn nulls_injected_at_rate() {
        let mut s = Synth::new(6);
        let c = s.uniform("x", 10_000, 0.0, 1.0);
        let c = s.with_nulls(c, 0.1);
        let rate = c.null_count() as f64 / c.len() as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn categorical_vocab_respected() {
        let mut s = Synth::new(9);
        let c = s.categorical("carrier", 100, &["UA", "AA"], 1.0);
        assert!(c.distinct_count() <= 2);
        assert_eq!(c.len(), 100);
    }
}
