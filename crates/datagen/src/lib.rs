//! # deepeye-datagen
//!
//! Experiment substrate for the DeepEye reproduction. The paper evaluates
//! on 42 real-world datasets with 100-student annotations and 9 public use
//! cases — none redistributable — so this crate synthesizes statistically
//! matched stand-ins (see DESIGN.md §3 for the substitution argument):
//!
//! - [`corpus`] — the 42-dataset corpus: X1–X10 test sets matching Table
//!   IV plus 32 training sets spanning Table III's ranges;
//! - [`flight`] — the structured FlyDelay table behind the paper's running
//!   example (hourly delay pattern, carrier effects, correlated delays);
//! - [`oracle`] — the perception oracle that stands in for the human
//!   annotators (deterministic scores, noisy labels, merged rankings);
//! - [`usecases`] — D1–D9 analogues with editorially chosen "published"
//!   charts for the coverage experiment (Table VI);
//! - [`labels`] — glue that turns tables + oracle into recognition
//!   examples and ranking groups;
//! - [`synth`] — the seeded column generators underneath it all.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod crowd;
pub mod flight;
pub mod labels;
pub mod oracle;
pub mod synth;
pub mod usecases;

pub use corpus::{
    build_table, corpus_stats, test_specs, test_tables, training_specs, training_tables,
    CorpusSpec, CorpusStats,
};
pub use crowd::{
    crowd_total_order, kendall_tau, merge_borda, merge_iterative, simulate_comparisons, Comparison,
    CrowdConfig,
};
pub use flight::{flight_table, CARRIERS, DESTINATIONS, FLIGHT_ROWS};
pub use labels::{
    candidate_nodes, combo_crowd_ranking_example, combo_crowd_ranking_examples,
    combo_evaluation_nodes, combo_recognition_examples, combos_of, crowd_ranking_example,
    crowd_ranking_examples, dense_relevance, evaluation_nodes, ranking_example, ranking_examples,
    recognition_examples, Combo, EvalNode, MAX_TRAINING_GROUP,
};
pub use oracle::PerceptionOracle;
pub use synth::{year_start, Synth};
pub use usecases::{coverage_k, use_cases, UseCase};
