//! The perception oracle: a stand-in for the paper's 100 human annotators.
//!
//! The paper's ground truth (2,520 good / 30,892 bad charts and 285,236
//! pairwise comparisons) is not available, so experiments use this oracle:
//! it scores a chart 0–100 from visualization-community heuristics
//! (Mackinlay-style chart/data matching, cardinality legibility,
//! information content, transform parsimony) computed **from the chart
//! data itself** — deliberately *not* by calling DeepEye's own factor code,
//! and with different functional forms (smooth fits instead of binary
//! trend, an inverted-U diversity preference for pies instead of raw
//! entropy), so agreement between DeepEye and the oracle is measured, not
//! assumed. Labels and merged rankings add deterministic, seedable noise,
//! mimicking annotator disagreement.

use deepeye_core::VisNode;
use deepeye_data::stats;
use deepeye_data::{correlation, trend_of_series, DataType};
use deepeye_query::{Aggregate, ChartType, Series, SortOrder, Transform};

/// Deterministic 64-bit hash (FNV-1a) for reproducible per-node noise.
fn fnv1a(seed: u64, text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Uniform in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerceptionOracle {
    pub seed: u64,
    /// Probability that a label is flipped (annotator error).
    pub label_noise: f64,
    /// Score above which a chart is labeled good.
    pub good_threshold: f64,
    /// Std-dev of the score jitter used when merging rankings.
    pub rank_jitter: f64,
}

impl Default for PerceptionOracle {
    fn default() -> Self {
        PerceptionOracle {
            seed: 2018,
            label_noise: 0.03,
            good_threshold: 55.0,
            rank_jitter: 2.5,
        }
    }
}

impl PerceptionOracle {
    pub fn new(seed: u64) -> Self {
        PerceptionOracle {
            seed,
            ..Default::default()
        }
    }

    /// Deterministic perceptual score of a chart in [0, 100]: the
    /// well-formedness base plus the column-interest component.
    pub fn score(&self, node: &VisNode) -> f64 {
        let (base, interest) = self.score_parts(node);
        (base + interest).clamp(0.0, 100.0)
    }

    /// The well-formedness base score (chart/data matching, legibility,
    /// information content, parsimony — no column interest). Binary
    /// good/bad labels threshold this part: annotators judge whether a
    /// chart is *well-made* regardless of whether its topic excites them,
    /// while interest drives the pairwise comparisons among good charts.
    pub fn base_score(&self, node: &VisNode) -> f64 {
        self.score_parts(node).0.clamp(0.0, 100.0)
    }

    fn score_parts(&self, node: &VisNode) -> (f64, f64) {
        let (xs, ys, x_is_categorical): (Vec<f64>, Vec<f64>, bool) = match &node.data.series {
            Series::Keyed(pairs) => {
                let cat = pairs.iter().any(|(k, _)| k.scale_position().is_none());
                let xs = pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| k.scale_position().unwrap_or(i as f64))
                    .collect();
                let ys = pairs.iter().map(|(_, y)| *y).collect();
                (xs, ys, cat)
            }
            Series::Points(pts) => (
                pts.iter().map(|(x, _)| *x).collect(),
                pts.iter().map(|(_, y)| *y).collect(),
                false,
            ),
        };
        let n = ys.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        let x_temporal = node.features.x.dtype == DataType::Temporal;
        let mut score: f64 = 10.0;

        // Cardinality legibility and information content per chart type.
        match node.chart_type() {
            ChartType::Pie => {
                score += match n {
                    0 | 1 => -10.0,
                    2..=7 => 30.0,
                    8..=12 => 20.0,
                    _ => (30.0 - (n as f64 - 12.0)).max(0.0),
                };
                if stats::min(&ys).unwrap_or(0.0) < 0.0 {
                    score -= 40.0; // negative slices are meaningless
                }
                if node.query.aggregate == Aggregate::Avg {
                    score -= 30.0; // no part-to-whole reading
                }
                // Inverted-U diversity preference: identical slices are
                // boring, one dominating slice is unreadable.
                let p =
                    stats::normalized_entropy(&ys.iter().map(|y| y.max(0.0)).collect::<Vec<_>>());
                score += 25.0 * 4.0 * p * (1.0 - p).max(0.0);
                if x_temporal {
                    score -= 20.0; // time slices don't read as parts
                }
            }
            ChartType::Bar => {
                score += match n {
                    0 | 1 => -10.0,
                    2..=25 => 30.0,
                    _ => (30.0 * 25.0 / n as f64).max(0.0),
                };
                // Bars need something to compare — a spread signal the
                // 14-feature vector cannot see (no dispersion feature).
                let spread = stats::stddev(&ys);
                let scale = stats::mean(&ys).abs().max(1e-9);
                score += 20.0 * (spread / scale).clamp(0.0, 1.0);
            }
            ChartType::Line => {
                if x_is_categorical {
                    score -= 25.0; // no meaningful x ordering to connect
                }
                score += match n {
                    0..=2 => -10.0,
                    3..=4 => 5.0,
                    5..=150 => 15.0,
                    _ => (15.0 * 150.0 / n as f64).max(0.0),
                };
                // Trend credit: largely categorical, the way people judge
                // ("it has a pattern" vs "it's noise"), with a small smooth
                // component below the threshold.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
                let sorted: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
                let fit = trend_of_series(&sorted).fit;
                score += if fit >= 0.5 { 35.0 } else { 10.0 * fit };
            }
            ChartType::Scatter => {
                if x_is_categorical {
                    score -= 25.0;
                }
                score += match n {
                    0..=9 => 0.0,
                    10..=19 => 10.0,
                    _ => 20.0,
                };
                score += 40.0 * correlation(&xs, &ys).strength();
                if node.query.transform != Transform::None {
                    score -= 15.0; // aggregated scatters obscure the cloud
                }
            }
        }

        // Transform parsimony: condensing data is good; a transform that
        // keeps (nearly) every row is pointless.
        if node.query.transform != Transform::None {
            let ratio = n as f64 / node.source_rows().max(1) as f64;
            score += 15.0 * (1.0 - ratio).clamp(0.0, 1.0);
            if ratio > 0.8 {
                score -= 15.0;
            }
        }

        // Reading order: a sorted x-scale helps series charts, and sorted
        // bars/slices read best largest-first.
        match node.chart_type() {
            ChartType::Line | ChartType::Scatter if node.query.order == SortOrder::ByX => {
                score += 5.0;
            }
            ChartType::Bar | ChartType::Pie if node.query.order == SortOrder::ByY => {
                score += 5.0;
            }
            _ => {}
        }

        // Column interest: annotators find some attributes more
        // story-worthy than others (the intuition behind the paper's
        // Factor 3). Deterministic per column name; crucially, column
        // *identity* is not in the 14-feature vector, so learning-to-rank
        // cannot model this — while the partial order recovers it through
        // W, because interesting columns survive recognition in more
        // charts. This is the mechanism behind Figure 11's PO > LTR gap.
        let cols = node.columns();
        let interest = if cols.is_empty() {
            0.0
        } else {
            30.0 * cols
                .iter()
                .map(|c| unit(fnv1a(self.seed ^ 0xc01, c)))
                .sum::<f64>()
                / cols.len() as f64
        };

        (score, interest)
    }

    /// Noisy binary label: good / bad, flipped with `label_noise`
    /// probability (deterministic per node and seed).
    pub fn label(&self, node: &VisNode) -> bool {
        let clean = self.base_score(node) >= self.good_threshold;
        let flip = unit(fnv1a(self.seed ^ 0xbad, &node.id())) < self.label_noise;
        clean ^ flip
    }

    /// Graded relevance (0–3) for NDCG: how far above the good threshold
    /// the score lies.
    pub fn relevance(&self, node: &VisNode) -> f64 {
        let s = self.score(node);
        if s < self.good_threshold {
            0.0
        } else if s < self.good_threshold + 10.0 {
            1.0
        } else if s < self.good_threshold + 20.0 {
            2.0
        } else {
            3.0
        }
    }

    /// The merged "crowdsourced" total order of a node set: best first,
    /// by score with per-node jitter (annotators disagree near ties).
    pub fn total_order(&self, nodes: &[VisNode]) -> Vec<usize> {
        let noisy: Vec<f64> = nodes
            .iter()
            .map(|n| {
                let h = fnv1a(self.seed ^ 0x0cde, &n.id());
                // Two-uniform approximation of a centered Gaussian.
                let g = (unit(h) + unit(h.rotate_left(17)) - 1.0) * 1.7;
                self.score(n) + self.rank_jitter * g
            })
            .collect();
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| noisy[b].total_cmp(&noisy[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::flight_table;
    use deepeye_core::DeepEye;
    use deepeye_data::TableBuilder;
    use deepeye_query::{UdfRegistry, VisQuery};

    fn nodes() -> Vec<VisNode> {
        let t = flight_table(11, 2_000);
        DeepEye::with_defaults().candidates(&t)
    }

    #[test]
    fn scores_are_bounded_and_deterministic() {
        let oracle = PerceptionOracle::default();
        for n in nodes().iter().take(40) {
            let s = oracle.score(n);
            assert!((0.0..=100.0).contains(&s));
            assert_eq!(s, oracle.score(n));
        }
    }

    #[test]
    fn good_rate_is_plausible() {
        // The paper labeled 2,520 good / 33,412 annotated charts ≈ 7.5% —
        // but those were *raw* (pair, type) combos. Our candidate set is
        // already §V-A rule-pruned (the obvious garbage never reaches the
        // oracle), so a substantially higher good rate among survivors is
        // expected; it just must stay a genuine split, not degenerate.
        let oracle = PerceptionOracle::default();
        let ns = nodes();
        let good = ns.iter().filter(|n| oracle.label(n)).count();
        let rate = good as f64 / ns.len() as f64;
        assert!(
            (0.05..=0.75).contains(&rate),
            "good rate {rate} over {} candidates",
            ns.len()
        );
        assert!(good > 0, "some charts must be good");
    }

    #[test]
    fn figure_1c_beats_figure_1d() {
        // The paper's canonical good/bad pair: hourly AVG delay (trend)
        // vs daily AVG delay (no trend).
        let t = flight_table(11, 8_000);
        let udfs = UdfRegistry::default();
        let q = |unit: deepeye_data::TimeUnit| VisQuery {
            chart: deepeye_query::ChartType::Line,
            x: "scheduled".into(),
            y: Some("departure delay".into()),
            transform: deepeye_query::Transform::Bin(deepeye_query::BinStrategy::Unit(unit)),
            aggregate: deepeye_query::Aggregate::Avg,
            order: deepeye_query::SortOrder::ByX,
        };
        let hourly = VisNode::build(&t, q(deepeye_data::TimeUnit::Hour), &udfs).unwrap();
        let daily = VisNode::build(&t, q(deepeye_data::TimeUnit::Day), &udfs).unwrap();
        let oracle = PerceptionOracle::default();
        assert!(
            oracle.score(&hourly) > oracle.score(&daily),
            "hourly {} should beat daily {}",
            oracle.score(&hourly),
            oracle.score(&daily)
        );
    }

    #[test]
    fn negative_pie_scores_poorly() {
        let t = TableBuilder::new("t")
            .text("cat", ["a", "b", "c", "a", "b", "c"])
            .numeric("v", [5.0, -3.0, 2.0, 4.0, -1.0, 3.0])
            .build()
            .unwrap();
        let udfs = UdfRegistry::default();
        let pie = VisNode::build(
            &t,
            VisQuery {
                chart: deepeye_query::ChartType::Pie,
                x: "cat".into(),
                y: Some("v".into()),
                transform: deepeye_query::Transform::Group,
                aggregate: deepeye_query::Aggregate::Sum,
                order: deepeye_query::SortOrder::ByY,
            },
            &udfs,
        )
        .unwrap();
        let oracle = PerceptionOracle::default();
        assert!(oracle.score(&pie) < oracle.good_threshold);
        assert_eq!(oracle.relevance(&pie), 0.0);
    }

    #[test]
    fn relevance_grades_monotone_in_score() {
        let oracle = PerceptionOracle::default();
        let ns = nodes();
        for n in ns.iter().take(100) {
            let (s, r) = (oracle.score(n), oracle.relevance(n));
            if s >= oracle.good_threshold + 20.0 {
                assert_eq!(r, 3.0);
            }
            if s < oracle.good_threshold {
                assert_eq!(r, 0.0);
            }
        }
    }

    #[test]
    fn total_order_is_near_score_order() {
        let oracle = PerceptionOracle::default();
        let ns = nodes();
        let sample: Vec<VisNode> = ns.into_iter().take(60).collect();
        let order = oracle.total_order(&sample);
        // Permutation check.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..sample.len()).collect::<Vec<_>>());
        // Kendall-ish sanity: the top of the noisy order should have a
        // higher mean clean score than the bottom.
        let half = sample.len() / 2;
        let top: f64 = order[..half]
            .iter()
            .map(|&i| oracle.score(&sample[i]))
            .sum::<f64>()
            / half as f64;
        let bottom: f64 = order[half..]
            .iter()
            .map(|&i| oracle.score(&sample[i]))
            .sum::<f64>()
            / (sample.len() - half) as f64;
        assert!(top > bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn label_noise_flips_a_few() {
        let clean = PerceptionOracle {
            label_noise: 0.0,
            ..Default::default()
        };
        let noisy = PerceptionOracle {
            label_noise: 0.15,
            ..Default::default()
        };
        let ns = nodes();
        let flips = ns
            .iter()
            .filter(|n| clean.label(n) != noisy.label(n))
            .count();
        let rate = flips as f64 / ns.len() as f64;
        assert!((0.05..=0.3).contains(&rate), "flip rate {rate}");
    }
}
