//! The experiment corpus: 42 seeded synthetic datasets standing in for the
//! paper's 42 real-world tables (Table III), with the 10 held-out test
//! datasets X1–X10 matching Table IV's names, tuple counts, and column
//! counts, and 32 training datasets.

use crate::flight::flight_table;
use crate::synth::{year_start, Synth};
use deepeye_data::{Column, Table, TableBuilder};
use rand::Rng;

/// A dataset's generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    pub name: String,
    pub rows: usize,
    pub cols: usize,
    pub seed: u64,
}

impl CorpusSpec {
    fn new(name: &str, rows: usize, cols: usize, seed: u64) -> Self {
        CorpusSpec {
            name: name.to_owned(),
            rows,
            cols,
            seed,
        }
    }

    /// Scale the row count (for fast tests); at least 3 rows survive.
    pub fn scaled(&self, scale: f64) -> CorpusSpec {
        CorpusSpec {
            rows: ((self.rows as f64 * scale) as usize).max(3),
            ..self.clone()
        }
    }
}

/// The 10 testing datasets of Table IV.
pub fn test_specs() -> Vec<CorpusSpec> {
    vec![
        CorpusSpec::new("Hollywood's Stories", 75, 8, 101),
        CorpusSpec::new("Foreign Visitor Arrivals", 172, 4, 102),
        CorpusSpec::new("McDonald's Menu", 263, 23, 103),
        CorpusSpec::new("Happiness Rank", 316, 12, 104),
        CorpusSpec::new("ZHVI Summary", 1_749, 13, 105),
        CorpusSpec::new("NFL Player Statistics", 4_626, 25, 106),
        CorpusSpec::new("Airbnb Summary", 6_001, 9, 107),
        CorpusSpec::new("Top Baby Names in US", 22_037, 6, 108),
        CorpusSpec::new("Adult", 32_561, 14, 109),
        CorpusSpec::new("FlyDelay", 99_527, 6, 110),
    ]
}

/// The 32 training datasets. Sizes span Table III's ranges (3–~20k tuples,
/// 2–25 columns) across several synthetic domains.
pub fn training_specs() -> Vec<CorpusSpec> {
    let domains = [
        "real estate",
        "transit",
        "census",
        "retail",
        "weather",
        "sports",
        "energy",
        "health",
    ];
    let mut specs = Vec::with_capacity(32);
    // One pathological tiny table (Table III's minimum is 3 tuples).
    specs.push(CorpusSpec::new("tiny summary", 3, 3, 200));
    let row_sizes = [
        18, 42, 90, 150, 210, 260, 340, 420, 520, 640, 780, 900, 1_100, 1_300, 1_600, 1_900, 2_200,
        2_600, 3_000, 3_400, 1_200, 1_500, 1_700, 1_900, 2_100, 2_400, 2_700, 3_000, 3_300, 3_600,
        4_000,
    ];
    let cols = [
        2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 3, 5,
        7, 9, 11, 13, 15, 17,
    ];
    for (i, (&c, &rows)) in cols.iter().zip(row_sizes.iter()).enumerate() {
        let domain = domains[i % domains.len()];
        specs.push(CorpusSpec::new(
            &format!("{domain} survey {i:02}"),
            rows,
            c,
            300 + i as u64,
        ));
    }
    specs
}

/// Build the table for a spec. `FlyDelay` uses the structured flight
/// generator; everything else uses the generic mixed-type synthesizer.
pub fn build_table(spec: &CorpusSpec) -> Table {
    if spec.name == "FlyDelay" {
        return flight_table(spec.seed, spec.rows);
    }
    let mut s = Synth::new(spec.seed);
    let rows = spec.rows.max(1);
    let cols = spec.cols.max(2);

    // Type plan: at least one categorical; a temporal column for most
    // datasets with ≥4 columns; the rest numeric with varied structure.
    let n_cat = 1 + s.rng().gen_range(0..=(cols / 4));
    let has_temporal = cols >= 4 && s.rng().gen_bool(0.7);
    let n_tem = usize::from(has_temporal);
    let n_num = cols.saturating_sub(n_cat + n_tem).max(1);
    let n_cat = cols - n_tem - n_num; // re-balance so counts sum exactly

    // Real-world datasets differ wildly in magnitude (unit prices vs
    // populations vs percentages); give each dataset its own value scale so
    // the corpus is as scale-heterogeneous as real data. This matters for
    // the ML experiments: the 14 features include raw min/max, and a model
    // trained on one scale must cope with others.
    let value_scale = 10f64.powf(s.rng().gen_range(-1.0..4.0));

    let mut builder = TableBuilder::new(&spec.name);
    let mut numeric_history: Vec<Vec<f64>> = Vec::new();

    for i in 0..n_cat {
        let k = s.rng().gen_range(2..=18.min(rows.max(2)));
        let skew = s.rng().gen_range(0.5..1.6);
        builder = builder.column(s.categorical_generic(&format!("category_{i}"), rows, k, skew));
    }
    if n_tem > 0 {
        let year = s.rng().gen_range(2000..2016);
        let steps = [3_600i64, 86_400, 7 * 86_400, 30 * 86_400];
        let step = steps[s.rng().gen_range(0..steps.len())];
        builder = builder.column(s.temporal("recorded", rows, year_start(year), step, step / 4));
    }
    for i in 0..n_num {
        let roll: f64 = s.rng().gen_range(0.0..1.0);
        let col: Column = if roll < 0.25 && !numeric_history.is_empty() {
            // Correlate with an earlier numeric column → scatter stories.
            let base_idx = s.rng().gen_range(0..numeric_history.len());
            let slope =
                s.rng().gen_range(0.5..3.0) * if s.rng().gen_bool(0.5) { 1.0 } else { -1.0 };
            let base = numeric_history[base_idx].clone();
            let noise = s.rng().gen_range(0.05..0.8) * deepeye_data::stats::stddev(&base).max(1.0);
            s.correlated(&format!("metric_{i}"), &base, slope, 10.0, noise)
        } else if roll < 0.45 {
            // Trending series → line stories.
            let (start, per_row, noise) = (
                s.rng().gen_range(0.0..50.0),
                s.rng().gen_range(0.01..0.5),
                s.rng().gen_range(0.5..5.0),
            );
            s.trending(&format!("metric_{i}"), rows, start, per_row, noise)
        } else if roll < 0.6 {
            let (level, amp, period, noise) = (
                s.rng().gen_range(20.0..100.0),
                s.rng().gen_range(5.0..30.0),
                s.rng().gen_range(10.0..80.0),
                s.rng().gen_range(0.5..4.0),
            );
            s.seasonal(&format!("metric_{i}"), rows, level, amp, period, noise)
        } else if roll < 0.8 {
            let signed = s.rng().gen_bool(0.15);
            let mu = if signed {
                s.rng().gen_range(-20.0..20.0)
            } else {
                s.rng().gen_range(30.0..120.0)
            };
            let sigma = s.rng().gen_range(1.0..15.0);
            s.gaussian(&format!("metric_{i}"), rows, mu, sigma)
        } else {
            let mu = s.rng().gen_range(1.0..4.0);
            s.lognormal(&format!("metric_{i}"), rows, mu, 0.6)
        };
        // Apply the dataset's value scale (correlations are preserved).
        let col = {
            let name = col.name().to_owned();
            match col.data() {
                deepeye_data::ColumnData::Numeric(v) => deepeye_data::Column::new(
                    name,
                    deepeye_data::ColumnData::Numeric(
                        v.iter().map(|x| x.map(|x| x * value_scale)).collect(),
                    ),
                ),
                _ => col,
            }
        };
        numeric_history.push(col.numbers());
        // A light sprinkle of nulls in one in four numeric columns.
        let col = if s.rng().gen_bool(0.25) {
            s.with_nulls(col, 0.02)
        } else {
            col
        };
        builder = builder.column(col);
    }

    // Every generator above emits exactly `rows` values per column, so the
    // equal-length invariant of `TableBuilder::build` holds by construction.
    #[allow(clippy::expect_used)]
    let table = builder
        .build()
        .expect("synthesized columns are equal-length");
    table
}

/// Build all test tables at the given row scale (1.0 = paper scale).
pub fn test_tables(scale: f64) -> Vec<Table> {
    test_specs()
        .iter()
        .map(|s| build_table(&s.scaled(scale)))
        .collect()
}

/// Build all training tables at the given row scale.
pub fn training_tables(scale: f64) -> Vec<Table> {
    training_specs()
        .iter()
        .map(|s| build_table(&s.scaled(scale)))
        .collect()
}

/// Aggregate statistics in the shape of the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    pub datasets: usize,
    pub min_tuples: usize,
    pub max_tuples: usize,
    pub avg_tuples: f64,
    pub min_columns: usize,
    pub max_columns: usize,
    pub temporal_columns: usize,
    pub categorical_columns: usize,
    pub numerical_columns: usize,
}

/// Compute Table III-style statistics over a set of tables.
pub fn corpus_stats(tables: &[Table]) -> CorpusStats {
    use deepeye_data::DataType;
    let mut stats = CorpusStats {
        datasets: tables.len(),
        min_tuples: usize::MAX,
        max_tuples: 0,
        avg_tuples: 0.0,
        min_columns: usize::MAX,
        max_columns: 0,
        temporal_columns: 0,
        categorical_columns: 0,
        numerical_columns: 0,
    };
    for t in tables {
        stats.min_tuples = stats.min_tuples.min(t.row_count());
        stats.max_tuples = stats.max_tuples.max(t.row_count());
        stats.avg_tuples += t.row_count() as f64;
        stats.min_columns = stats.min_columns.min(t.column_count());
        stats.max_columns = stats.max_columns.max(t.column_count());
        for c in t.columns() {
            match c.data_type() {
                DataType::Temporal => stats.temporal_columns += 1,
                DataType::Categorical => stats.categorical_columns += 1,
                DataType::Numerical => stats.numerical_columns += 1,
            }
        }
    }
    if !tables.is_empty() {
        stats.avg_tuples /= tables.len() as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_shape() {
        let specs = test_specs();
        assert_eq!(specs.len(), 10);
        assert_eq!(specs[9].name, "FlyDelay");
        assert_eq!(specs[9].rows, 99_527);
        assert_eq!(specs[2].cols, 23); // McDonald's Menu
        assert_eq!(specs[5].cols, 25); // NFL
    }

    #[test]
    fn training_set_has_32() {
        let specs = training_specs();
        assert_eq!(specs.len(), 32);
        assert!(
            specs.iter().any(|s| s.rows == 3),
            "Table III minimum of 3 tuples"
        );
        assert!(specs.iter().all(|s| (2..=25).contains(&s.cols)));
        // Unique names.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn build_matches_spec() {
        for spec in training_specs().iter().take(6) {
            let t = build_table(spec);
            assert_eq!(t.row_count(), spec.rows, "{}", spec.name);
            assert_eq!(t.column_count(), spec.cols, "{}", spec.name);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let spec = &test_specs()[0].scaled(1.0);
        assert_eq!(build_table(spec), build_table(spec));
    }

    #[test]
    fn scaled_specs_shrink() {
        let spec = test_specs()[9].scaled(0.01);
        let t = build_table(&spec);
        assert_eq!(t.row_count(), 995);
        assert_eq!(t.column_count(), 6);
    }

    #[test]
    fn corpus_mixes_types() {
        let tables = training_tables(0.05);
        let stats = corpus_stats(&tables);
        assert_eq!(stats.datasets, 32);
        assert!(stats.categorical_columns > 10);
        assert!(stats.numerical_columns > 50);
        assert!(stats.temporal_columns > 5);
        assert!(stats.min_columns >= 2 && stats.max_columns <= 25);
    }

    #[test]
    fn full_corpus_stats_match_table_iii_ranges() {
        // Spec-level check (no table building needed at full scale).
        let all: Vec<CorpusSpec> = training_specs().into_iter().chain(test_specs()).collect();
        assert_eq!(all.len(), 42);
        let min = all.iter().map(|s| s.rows).min().unwrap();
        let max = all.iter().map(|s| s.rows).max().unwrap();
        let avg = all.iter().map(|s| s.rows).sum::<usize>() as f64 / 42.0;
        assert_eq!(min, 3);
        assert_eq!(max, 99_527);
        // Paper: average 3,381. The Table IV test sets alone force a floor
        // of ~3,984 (167,327 tuples / 42), so we land just above it.
        assert!((3_900.0..=5_500.0).contains(&avg), "avg {avg}");
    }
}
