//! The nine real use cases D1–D9 of Table V (coverage experiment,
//! §VI-A / Table VI).
//!
//! The paper's use cases pair public datasets with the charts their
//! websites actually published; both are gone or unredistributable, so
//! each analogue here pairs a synthetic table with a set of "published"
//! charts chosen by the perception oracle under an *editorial* process
//! that differs from DeepEye's ranking: a different noise seed, a
//! diversity constraint (dashboards repeat neither chart type nor x-column
//! endlessly), and a site-specific chart budget. Coverage-k therefore
//! measures genuine agreement between DeepEye and an external editor, not
//! self-prediction.

use crate::corpus::{build_table, CorpusSpec};
use crate::oracle::PerceptionOracle;
use deepeye_core::{DeepEye, VisNode};
use deepeye_data::Table;
use deepeye_query::VisQuery;

/// A use case: a dataset plus the charts "published" with it.
#[derive(Debug, Clone)]
pub struct UseCase {
    pub name: String,
    pub table: Table,
    pub published: Vec<VisQuery>,
}

/// The D1–D9 analogues. `scale` shrinks row counts for fast tests.
pub fn use_cases(scale: f64) -> Vec<UseCase> {
    let specs = [
        ("Happy Countries", 158, 6, 3, 501u64),
        ("US Baby Names", 2_000, 4, 4, 502),
        ("Flight Statistics", 4_000, 6, 4, 503),
        ("TutorialOfUCB", 300, 5, 2, 504),
        ("CPI Statistics", 360, 4, 3, 505),
        ("Healthcare", 1_200, 8, 5, 506),
        ("Services Statistics", 900, 7, 4, 507),
        ("PPI Statistics", 640, 5, 3, 508),
        ("Average Food Price", 480, 6, 5, 509),
    ];
    specs
        .iter()
        .map(|&(name, rows, cols, budget, seed)| {
            let spec = CorpusSpec {
                name: name.to_owned(),
                rows,
                cols,
                seed,
            }
            .scaled(scale);
            let table = if name == "Flight Statistics" {
                crate::flight::flight_table(seed, spec.rows)
            } else {
                build_table(&spec)
            };
            let published = editorial_picks(&table, budget, seed);
            UseCase {
                name: name.to_owned(),
                table,
                published,
            }
        })
        .collect()
}

/// The "editor": scores candidates with an independently seeded oracle and
/// greedily picks a diverse chart set (at most two per chart type, at most
/// two per x-column).
fn editorial_picks(table: &Table, budget: usize, seed: u64) -> Vec<VisQuery> {
    let editor = PerceptionOracle {
        seed: seed ^ 0xed17,
        rank_jitter: 6.0,
        ..Default::default()
    };
    // No website publishes a one-mark chart; the editor only considers
    // charts with at least two marks (matching `DeepEye::recommend`'s own
    // floor, so published charts stay coverable).
    let candidates: Vec<VisNode> = DeepEye::with_defaults()
        .candidates(table)
        .into_iter()
        .filter(|n| n.data.series.len() >= 2)
        .collect();
    let order = editor.total_order(&candidates);
    let mut picks: Vec<VisQuery> = Vec::with_capacity(budget);
    let mut per_chart: std::collections::HashMap<deepeye_query::ChartType, usize> =
        std::collections::HashMap::new();
    let mut per_x: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for idx in order {
        if picks.len() >= budget {
            break;
        }
        let node = &candidates[idx];
        let chart_count = per_chart.entry(node.chart_type()).or_insert(0);
        let x_count = per_x.entry(node.query.x.clone()).or_insert(0);
        if *chart_count >= 2 || *x_count >= 2 {
            continue;
        }
        *chart_count += 1;
        *x_count += 1;
        picks.push(node.query.clone());
    }
    picks
}

/// Coverage: the smallest k such that DeepEye's top-k contains every
/// published chart, comparing on chart identity (type, columns, transform,
/// aggregate — the published ORDER BY is presentation detail). `None` if a
/// published chart never appears.
pub fn coverage_k(recommended: &[VisQuery], published: &[VisQuery]) -> Option<usize> {
    let key = |q: &VisQuery| {
        format!(
            "{}|{}|{}|{:?}|{:?}",
            q.chart,
            q.x,
            q.y.as_deref().unwrap_or(""),
            q.transform,
            q.aggregate
        )
    };
    let mut worst = 0usize;
    for p in published {
        let pk = key(p);
        match recommended.iter().position(|r| key(r) == pk) {
            Some(pos) => worst = worst.max(pos + 1),
            None => return None,
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_use_cases_with_published_charts() {
        let cases = use_cases(0.2);
        assert_eq!(cases.len(), 9);
        for case in &cases {
            assert!(
                !case.published.is_empty(),
                "{} should have published charts",
                case.name
            );
            assert!(case.published.len() <= 5);
            // Published charts are valid queries against the table.
            for q in &case.published {
                assert!(
                    deepeye_query::execute(&case.table, q).is_ok(),
                    "{}: unexecutable published chart {q:?}",
                    case.name
                );
            }
        }
    }

    #[test]
    fn published_charts_are_diverse() {
        for case in use_cases(0.2) {
            let mut per_chart: std::collections::HashMap<_, usize> = Default::default();
            for q in &case.published {
                *per_chart.entry(q.chart).or_insert(0) += 1;
            }
            assert!(per_chart.values().all(|&c| c <= 2), "{}", case.name);
        }
    }

    #[test]
    fn coverage_k_semantics() {
        let cases = use_cases(0.2);
        let case = &cases[0];
        // Recommending exactly the published set covers at k = len.
        let k = coverage_k(&case.published, &case.published);
        assert_eq!(k, Some(case.published.len()));
        // An empty recommendation list covers nothing.
        assert_eq!(coverage_k(&[], &case.published), None);
        // Empty published set is covered at k = 0.
        assert_eq!(coverage_k(&case.published, &[]), Some(0));
    }

    #[test]
    fn deepeye_covers_published_charts_within_candidates() {
        // The published charts come from DeepEye's own candidate space, so
        // full-length recommendations must cover them.
        let cases = use_cases(0.15);
        let eye = DeepEye::with_defaults();
        for case in cases.iter().take(3) {
            let recs = eye.recommend(&case.table, usize::MAX);
            let queries: Vec<VisQuery> = recs.into_iter().map(|r| r.node.query).collect();
            let k = coverage_k(&queries, &case.published);
            assert!(
                k.is_some(),
                "{}: published charts must be covered",
                case.name
            );
        }
    }

    #[test]
    fn use_cases_are_deterministic() {
        let a = use_cases(0.1);
        let b = use_cases(0.1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.published, y.published, "{}", x.name);
        }
    }
}
