//! The flight-delay table of the paper's running example (Table I /
//! dataset X10 "FlyDelay": 99,527 tuples, 6 columns).
//!
//! The synthetic generator reproduces the structure the paper's figures
//! rely on:
//!
//! - departure delay follows an hour-of-day pattern with a relative high
//!   around 11:00 and a peak around 19:00 (Example 8 / Figure 1(c)), but no
//!   day-of-year structure (so Figure 1(d), the per-day average, is "bad");
//! - arrival delay correlates strongly with departure delay, with a
//!   per-carrier offset (the carrier "OO is bad" story of Figure 1(a));
//! - passengers depend on destination popularity (Figure 1(b)).

use crate::synth::{year_start, Synth};
use deepeye_data::{Column, Table, TableBuilder, Timestamp};
use rand::Rng;

/// Row count of the paper's FlyDelay dataset.
pub const FLIGHT_ROWS: usize = 99_527;

pub const CARRIERS: [&str; 5] = ["UA", "AA", "MQ", "OO", "DL"];
pub const DESTINATIONS: [&str; 10] = [
    "New York",
    "Los Angeles",
    "San Francisco",
    "Atlanta",
    "Denver",
    "Boston",
    "Seattle",
    "Miami",
    "Dallas",
    "Phoenix",
];

/// Mean extra departure delay (minutes) per carrier — OO is the bad one.
const CARRIER_DELAY: [f64; 5] = [2.0, 4.0, 6.0, 14.0, 1.0];

/// Hour-of-day delay curve: low overnight, relative high ~11:00, dip, then
/// the daily peak ~19:00.
fn hourly_delay(hour: u8) -> f64 {
    match hour {
        0..=5 => 1.0,
        6..=8 => 4.0,
        9..=10 => 8.0,
        11 => 12.0,
        12..=14 => 7.0,
        15..=17 => 12.0,
        18 => 18.0,
        19 => 22.0,
        20 => 18.0,
        21 => 12.0,
        _ => 6.0,
    }
}

/// Generate a flight table with `rows` tuples (use [`FLIGHT_ROWS`] for the
/// paper-scale dataset; smaller values keep examples fast).
pub fn flight_table(seed: u64, rows: usize) -> Table {
    let mut s = Synth::new(seed);
    let start = year_start(2015).unix_seconds();
    let seconds_per_year = 365 * 86_400i64;

    let mut scheduled: Vec<Timestamp> = Vec::with_capacity(rows);
    let mut carriers: Vec<&str> = Vec::with_capacity(rows);
    let mut destinations: Vec<&str> = Vec::with_capacity(rows);
    let mut departure: Vec<f64> = Vec::with_capacity(rows);
    let mut arrival: Vec<f64> = Vec::with_capacity(rows);
    let mut passengers: Vec<f64> = Vec::with_capacity(rows);

    for i in 0..rows {
        // Spread departures over the year, biased toward daytime hours.
        let day = (i as i64 * seconds_per_year / rows.max(1) as i64) / 86_400;
        let hour: u8 = {
            let r: f64 = s.rng().gen_range(0.0..1.0);
            // Daytime-heavy hour distribution.
            ((6.0 + 17.0 * r.powf(0.7)) as u8).min(23)
        };
        let minute: u8 = s.rng().gen_range(0..60);
        let ts = Timestamp::from_unix_seconds(
            start + day * 86_400 + i64::from(hour) * 3_600 + i64::from(minute) * 60,
        );
        scheduled.push(ts);

        let carrier_idx = s.zipf(CARRIERS.len(), 0.7);
        carriers.push(CARRIERS[carrier_idx]);
        let dest_idx = s.zipf(DESTINATIONS.len(), 0.9);
        destinations.push(DESTINATIONS[dest_idx]);

        // Departure delay: hour pattern + carrier effect + heavy noise.
        // No day-of-year term → per-day averages carry no story.
        let dep = hourly_delay(hour) + CARRIER_DELAY[carrier_idx] + 8.0 * s.normal();
        departure.push(dep.round());

        // Arrival delay tracks departure delay (the Figure 1(a) story).
        let arr = 0.9 * dep + 2.0 + 4.0 * s.normal();
        arrival.push(arr.round());

        // Passengers by destination popularity with seasonal demand.
        let base = 220.0 - 14.0 * dest_idx as f64;
        let season = 30.0 * (2.0 * std::f64::consts::PI * day as f64 / 365.0).sin();
        let pax = (base + season + 25.0 * s.normal()).clamp(20.0, 400.0);
        passengers.push(pax.round());
    }

    // All six columns are filled row-by-row in the single loop above, so
    // the equal-length invariant of `TableBuilder::build` holds.
    #[allow(clippy::expect_used)]
    let table = TableBuilder::new("FlyDelay")
        .column(Column::temporal("scheduled", scheduled))
        .text("carrier", carriers)
        .text("destination", destinations)
        .numeric("departure delay", departure)
        .numeric("arrival delay", arrival)
        .numeric("passengers", passengers)
        .build()
        .expect("flight table construction cannot fail");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{correlation, trend_of_series, DataType, TimeUnit};
    use deepeye_query::{
        execute, Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery,
    };

    fn small() -> Table {
        flight_table(42, 8_000)
    }

    #[test]
    fn schema_matches_paper() {
        let t = small();
        assert_eq!(t.column_count(), 6);
        assert_eq!(
            t.column_by_name("scheduled").unwrap().data_type(),
            DataType::Temporal
        );
        assert_eq!(
            t.column_by_name("carrier").unwrap().data_type(),
            DataType::Categorical
        );
        assert_eq!(
            t.column_by_name("departure delay").unwrap().data_type(),
            DataType::Numerical
        );
        assert_eq!(t.column_by_name("carrier").unwrap().distinct_count(), 5);
    }

    #[test]
    fn departure_arrival_correlated_like_figure_1a() {
        let t = small();
        let dep = t.column_by_name("departure delay").unwrap().numbers();
        let arr = t.column_by_name("arrival delay").unwrap().numbers();
        let c = correlation(&dep, &arr);
        assert!(c.strength() > 0.7, "corr {}", c.strength());
    }

    #[test]
    fn hourly_average_has_trend_daily_does_not() {
        // The Figure 1(c) vs 1(d) contrast from Example 1.
        let t = small();
        let by_hour = execute(
            &t,
            &VisQuery {
                chart: ChartType::Line,
                x: "scheduled".into(),
                y: Some("departure delay".into()),
                transform: Transform::Bin(BinStrategy::Unit(TimeUnit::Hour)),
                aggregate: Aggregate::Avg,
                order: SortOrder::ByX,
            },
        )
        .unwrap();
        // Periodic hour-of-day bins: at most 24 buckets, with a clear
        // daily pattern (the Figure 1(c) story).
        assert!(by_hour.series.len() <= 24, "hour bins are hour-of-day");
        let profile = by_hour.series.y_values();
        let trend = trend_of_series(&profile);
        assert!(
            trend.follows_distribution,
            "hour-of-day profile should follow a distribution (fit {})",
            trend.fit
        );

        let by_day = execute(
            &t,
            &VisQuery {
                chart: ChartType::Line,
                x: "scheduled".into(),
                y: Some("departure delay".into()),
                transform: Transform::Bin(BinStrategy::Unit(TimeUnit::Day)),
                aggregate: Aggregate::Avg,
                order: SortOrder::ByX,
            },
        )
        .unwrap();
        let daily = by_day.series.y_values();
        let daily_trend = trend_of_series(&daily);
        assert!(
            !daily_trend.follows_distribution,
            "per-day averages should be structureless (fit {})",
            daily_trend.fit
        );
    }

    #[test]
    fn oo_is_the_worst_carrier() {
        let t = small();
        let chart = execute(
            &t,
            &VisQuery {
                chart: ChartType::Bar,
                x: "carrier".into(),
                y: Some("departure delay".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Avg,
                order: SortOrder::ByY,
            },
        )
        .unwrap();
        if let deepeye_query::Series::Keyed(pairs) = &chart.series {
            assert_eq!(
                pairs[0].0.to_string(),
                "OO",
                "worst carrier first: {pairs:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_scalable() {
        assert_eq!(flight_table(1, 500), flight_table(1, 500));
        assert_ne!(flight_table(1, 500), flight_table(2, 500));
        let t = flight_table(3, 100);
        assert_eq!(t.row_count(), 100);
    }
}
