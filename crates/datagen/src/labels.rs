//! Ground-truth assembly: turn tables + the perception oracle into the
//! training/evaluation artifacts the experiments need — labeled
//! recognition examples (§VI-B) and per-dataset ranking groups (§VI-C).

use crate::oracle::PerceptionOracle;
use deepeye_core::{DeepEye, LabeledExample, RankingExample, VisNode};
use deepeye_data::Table;
use deepeye_query::ChartType;

/// All candidate nodes of a table under the default (rule-based) pipeline.
pub fn candidate_nodes(table: &Table) -> Vec<VisNode> {
    DeepEye::with_defaults().candidates(table)
}

/// Labeled recognition examples for a set of tables: every candidate node
/// becomes one (feature vector, good/bad) pair, labeled by the oracle.
pub fn recognition_examples(tables: &[Table], oracle: &PerceptionOracle) -> Vec<LabeledExample> {
    let mut out = Vec::new();
    for table in tables {
        for node in candidate_nodes(table) {
            let good = oracle.label(&node);
            out.push(LabeledExample::from_node(&node, good));
        }
    }
    out
}

/// Per-node evaluation record: features, chart type, gold label.
#[derive(Debug, Clone)]
pub struct EvalNode {
    pub features: Vec<f64>,
    pub chart: ChartType,
    pub good: bool,
}

/// Evaluation records for one table (kept per-table so Tables VII/VIII can
/// break results down by dataset and chart type).
pub fn evaluation_nodes(table: &Table, oracle: &PerceptionOracle) -> Vec<EvalNode> {
    candidate_nodes(table)
        .into_iter()
        .map(|node| EvalNode {
            features: node.feature_vector(),
            chart: node.chart_type(),
            good: oracle.label(&node),
        })
        .collect()
}

/// Cap on training-group size: LambdaMART's lambda pass is quadratic in
/// the graded-pair count per group, and wide tables yield thousands of
/// candidates. Training on a stratified subsample is standard LTR practice
/// (and mirrors the paper, whose students also labeled a bounded set).
pub const MAX_TRAINING_GROUP: usize = 400;

/// One table's ranking group: its candidate nodes with oracle relevance
/// grades, ready for LambdaMART training or NDCG evaluation. Groups larger
/// than [`MAX_TRAINING_GROUP`] are subsampled by stride, which preserves
/// the relevance mix (candidates arrive in column/transform order, not
/// score order).
pub fn ranking_example(table: &Table, oracle: &PerceptionOracle) -> RankingExample {
    let nodes = candidate_nodes(table);
    let stride = nodes.len().div_ceil(MAX_TRAINING_GROUP).max(1);
    let sampled: Vec<&VisNode> = nodes.iter().step_by(stride).collect();
    RankingExample {
        features: sampled.iter().map(|n| n.feature_vector()).collect(),
        relevance: sampled.iter().map(|n| oracle.relevance(n)).collect(),
    }
}

/// Ranking groups for many tables.
pub fn ranking_examples(tables: &[Table], oracle: &PerceptionOracle) -> Vec<RankingExample> {
    tables.iter().map(|t| ranking_example(t, oracle)).collect()
}

/// Dense evaluation relevance from the annotators' merged **total order**
/// (§VI: "we merged the results to get a total order"): the best node gets
/// grade 4, the worst 0, linearly by merged position. Unlike the coarse
/// 0–3 training grades this has no ties, which is what makes NDCG
/// discriminative between rankers.
pub fn dense_relevance(nodes: &[VisNode], oracle: &PerceptionOracle) -> Vec<f64> {
    let order = oracle.total_order(nodes);
    let n = nodes.len();
    let mut rel = vec![0.0; n];
    if n <= 1 {
        return rel;
    }
    for (pos, &node) in order.iter().enumerate() {
        rel[node] = 4.0 * (n - 1 - pos) as f64 / (n - 1) as f64;
    }
    rel
}

/// One table's ranking group with **crowd-derived** relevance grades — the
/// paper's actual training signal: pairwise comparisons from annotators,
/// merged into a total order (§VI "Ground Truth", its refs [16, 17]), then
/// discretized into grades by merged position (top 5% → 3, next 10% → 2,
/// next 20% → 1, rest 0). The comparison budget is deliberately sparse
/// relative to the pair count, exactly like 285k comparisons over tens of
/// thousands of charts; the resulting label noise is what keeps
/// learning-to-rank behind the expert partial order in Figure 11.
pub fn crowd_ranking_example(
    table: &Table,
    oracle: &PerceptionOracle,
    crowd: &crate::crowd::CrowdConfig,
) -> RankingExample {
    // §VI "Ground Truth": comparisons were collected *among the good
    // visualizations only* — annotators never ranked bad charts against
    // anything. The trained ranker is therefore calibrated only on the
    // good region of feature space, exactly like the paper's.
    let nodes: Vec<VisNode> = candidate_nodes(table)
        .into_iter()
        .filter(|n| oracle.label(n))
        .collect();
    let stride = nodes.len().div_ceil(MAX_TRAINING_GROUP).max(1);
    let sampled: Vec<VisNode> = nodes.into_iter().step_by(stride).collect();
    let merged = crate::crowd::crowd_total_order(&sampled, oracle, crowd);
    let n = merged.len().max(1);
    let mut relevance = vec![0.0; n];
    for (pos, &node) in merged.iter().enumerate() {
        let frac = pos as f64 / n as f64;
        relevance[node] = if frac < 0.05 {
            3.0
        } else if frac < 0.15 {
            2.0
        } else if frac < 0.35 {
            1.0
        } else {
            0.0
        };
    }
    RankingExample {
        features: sampled.iter().map(VisNode::feature_vector).collect(),
        relevance,
    }
}

/// Crowd-derived ranking groups for many tables, with a per-table
/// comparison budget scaled to the candidate count.
pub fn crowd_ranking_examples(tables: &[Table], oracle: &PerceptionOracle) -> Vec<RankingExample> {
    tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // Budget mirrors the paper's density: ~285k comparisons over
            // ~2.5k good charts in 42 datasets ≈ a handful of judgments
            // per chart — enough to merge a coarse order, far from enough
            // to pin fine distinctions.
            let crowd = crate::crowd::CrowdConfig {
                workers: 30,
                comparisons_per_worker: 20,
                seed: 7_000 + i as u64,
                ..Default::default()
            };
            crowd_ranking_example(t, oracle, &crowd)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Combo-level ground truth (the paper's annotation granularity)
// ---------------------------------------------------------------------------

/// A (x, y, chart-type) combination — the unit the paper's annotators
/// labeled (≈ `m(m−1)·4` per dataset, matching its ~800 charts/dataset),
/// with the paper-faithful original-column feature vector.
#[derive(Debug, Clone)]
pub struct Combo {
    pub x: String,
    pub y: Option<String>,
    pub chart: ChartType,
    /// [`deepeye_core::features::pair_feature_vector`] of the combo.
    pub features: Vec<f64>,
    /// Indices into the table's candidate-node list that realize this
    /// combo (one per transform/aggregate/order variant).
    pub node_indices: Vec<usize>,
}

/// Group a table's candidate nodes into combos.
pub fn combos_of(table: &Table, nodes: &[VisNode]) -> Vec<Combo> {
    let mut out: Vec<Combo> = Vec::new();
    let mut index: std::collections::HashMap<(String, Option<String>, ChartType), usize> =
        std::collections::HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let key = (
            node.query.x.clone(),
            node.query.y.clone(),
            node.chart_type(),
        );
        match index.get(&key) {
            Some(&c) => out[c].node_indices.push(i),
            None => {
                let Some(features) = deepeye_core::features::pair_feature_vector(
                    table,
                    &key.0,
                    key.1.as_deref(),
                    key.2,
                ) else {
                    continue;
                };
                index.insert(key.clone(), out.len());
                out.push(Combo {
                    x: key.0,
                    y: key.1,
                    chart: key.2,
                    features,
                    node_indices: vec![i],
                });
            }
        }
    }
    out
}

/// Combo-level recognition examples: a combo is good iff any of its
/// realizations is good (the annotator saw a rendered chart, i.e. the best
/// sensible transform of the combo).
pub fn combo_recognition_examples(
    tables: &[Table],
    oracle: &PerceptionOracle,
) -> Vec<LabeledExample> {
    let mut out = Vec::new();
    for table in tables {
        let nodes = candidate_nodes(table);
        for combo in combos_of(table, &nodes) {
            let good = combo.node_indices.iter().any(|&i| oracle.label(&nodes[i]));
            out.push(LabeledExample {
                features: combo.features,
                good,
            });
        }
    }
    out
}

/// Combo-level evaluation records for one table.
pub fn combo_evaluation_nodes(table: &Table, oracle: &PerceptionOracle) -> Vec<EvalNode> {
    let nodes = candidate_nodes(table);
    combos_of(table, &nodes)
        .into_iter()
        .map(|combo| EvalNode {
            good: combo.node_indices.iter().any(|&i| oracle.label(&nodes[i])),
            chart: combo.chart,
            features: combo.features,
        })
        .collect()
}

/// Combo-level crowd ranking group: annotators compared the good combos
/// (each represented by its best rendition) and the comparisons were
/// merged into grades. The features are original-column stats, so the
/// trained ranker is — like the paper's — blind to transforms.
pub fn combo_crowd_ranking_example(
    table: &Table,
    oracle: &PerceptionOracle,
    crowd: &crate::crowd::CrowdConfig,
) -> RankingExample {
    let nodes = candidate_nodes(table);
    let combos: Vec<Combo> = combos_of(table, &nodes)
        .into_iter()
        .filter(|c| c.node_indices.iter().any(|&i| oracle.label(&nodes[i])))
        .collect();
    // Representative node per combo: the annotators' rendered chart.
    let reps: Vec<VisNode> = combos
        .iter()
        .map(|c| {
            let best = c
                .node_indices
                .iter()
                .copied()
                .max_by(|&a, &b| oracle.score(&nodes[a]).total_cmp(&oracle.score(&nodes[b])))
                .unwrap_or(0);
            nodes[best].clone()
        })
        .collect();
    let merged = crate::crowd::crowd_total_order(&reps, oracle, crowd);
    let n = merged.len().max(1);
    let mut relevance = vec![0.0; combos.len()];
    for (pos, &c) in merged.iter().enumerate() {
        let frac = pos as f64 / n as f64;
        relevance[c] = if frac < 0.1 {
            3.0
        } else if frac < 0.3 {
            2.0
        } else if frac < 0.6 {
            1.0
        } else {
            0.0
        };
    }
    RankingExample {
        features: combos.into_iter().map(|c| c.features).collect(),
        relevance,
    }
}

/// Combo-level crowd ranking groups for many tables.
pub fn combo_crowd_ranking_examples(
    tables: &[Table],
    oracle: &PerceptionOracle,
) -> Vec<RankingExample> {
    tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let crowd = crate::crowd::CrowdConfig {
                workers: 30,
                comparisons_per_worker: 20,
                seed: 9_000 + i as u64,
                ..Default::default()
            };
            combo_crowd_ranking_example(t, oracle, &crowd)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_table, training_specs};

    fn small_tables() -> Vec<Table> {
        training_specs()
            .iter()
            .take(4)
            .map(|s| build_table(&s.scaled(0.3)))
            .collect()
    }

    #[test]
    fn recognition_examples_cover_all_candidates() {
        let tables = small_tables();
        let oracle = PerceptionOracle::default();
        let examples = recognition_examples(&tables, &oracle);
        let expected: usize = tables.iter().map(|t| candidate_nodes(t).len()).sum();
        assert_eq!(examples.len(), expected);
        assert!(examples.iter().any(|e| e.good), "some good examples exist");
        assert!(examples.iter().any(|e| !e.good), "some bad examples exist");
        assert!(examples
            .iter()
            .all(|e| e.features.len() == deepeye_core::FEATURE_DIM));
    }

    #[test]
    fn ranking_groups_align() {
        let tables = small_tables();
        let oracle = PerceptionOracle::default();
        let groups = ranking_examples(&tables, &oracle);
        assert_eq!(groups.len(), tables.len());
        for g in &groups {
            assert_eq!(g.features.len(), g.relevance.len());
            assert!(g.relevance.iter().all(|r| (0.0..=3.0).contains(r)));
        }
    }

    #[test]
    fn evaluation_nodes_carry_chart_type() {
        let tables = small_tables();
        let oracle = PerceptionOracle::default();
        let evals = evaluation_nodes(&tables[0], &oracle);
        assert!(!evals.is_empty());
        let types: std::collections::HashSet<ChartType> = evals.iter().map(|e| e.chart).collect();
        assert!(types.len() >= 2, "multiple chart types expected: {types:?}");
    }
}
