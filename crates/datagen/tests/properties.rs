//! Property-based tests for the experiment substrate.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_datagen::{
    build_table, kendall_tau, merge_borda, merge_iterative, CorpusSpec, PerceptionOracle, Synth,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generic synthesizer honors any (rows, cols) spec and is
    /// deterministic per seed.
    #[test]
    fn synthesizer_honors_spec(rows in 1usize..200, cols in 2usize..12, seed in 0u64..500) {
        let spec = CorpusSpec { name: "prop".into(), rows, cols, seed };
        let a = build_table(&spec);
        prop_assert_eq!(a.row_count(), rows);
        prop_assert_eq!(a.column_count(), cols);
        let b = build_table(&spec);
        prop_assert_eq!(a, b);
    }

    /// Zipf draws stay in range for any k.
    #[test]
    fn zipf_in_range(k in 1usize..40, s in 0.1f64..2.5, seed in 0u64..100) {
        let mut synth = Synth::new(seed);
        for _ in 0..50 {
            prop_assert!(synth.zipf(k, s) < k);
        }
    }

    /// Merging any comparison multiset yields a permutation.
    #[test]
    fn merges_are_permutations(
        n in 1usize..30,
        pairs in proptest::collection::vec((0usize..30, 0usize..30), 0..200),
    ) {
        let comparisons: Vec<deepeye_datagen::Comparison> = pairs
            .into_iter()
            .filter(|(a, b)| a != b && *a < n && *b < n)
            .map(|(winner, loser)| deepeye_datagen::Comparison { worker: 0, winner, loser })
            .collect();
        for order in [merge_borda(n, &comparisons), merge_iterative(n, &comparisons, 2)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    /// Kendall tau is symmetric, bounded, and 1 on identical orders.
    #[test]
    fn kendall_tau_laws(perm_seed in 0u64..1000, n in 2usize..25) {
        let shuffle = |seed: u64| {
            let mut v: Vec<usize> = (0..n).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v.swap(i, (state as usize) % (i + 1));
            }
            v
        };
        let a = shuffle(perm_seed);
        let b = shuffle(perm_seed ^ 0x5555);
        let t_ab = kendall_tau(&a, &b);
        let t_ba = kendall_tau(&b, &a);
        prop_assert!((t_ab - t_ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&t_ab));
        prop_assert_eq!(kendall_tau(&a, &a), 1.0);
    }
}

/// Oracle scores are deterministic, bounded, and label noise respects the
/// configured rate across a candidate population.
#[test]
fn oracle_bounds_over_population() {
    let table = build_table(&CorpusSpec {
        name: "o".into(),
        rows: 120,
        cols: 6,
        seed: 9,
    });
    let nodes = deepeye_datagen::candidate_nodes(&table);
    assert!(!nodes.is_empty());
    let oracle = PerceptionOracle::default();
    for n in &nodes {
        let s = oracle.score(n);
        assert!((0.0..=100.0).contains(&s));
        assert!(oracle.base_score(n) <= 100.0);
        assert_eq!(oracle.label(n), oracle.label(n));
        assert!((0.0..=3.0).contains(&oracle.relevance(n)));
    }
    // Different seeds give different column-interest profiles.
    let other = PerceptionOracle::new(999);
    let diff = nodes
        .iter()
        .filter(|n| (oracle.score(n) - other.score(n)).abs() > 1e-9)
        .count();
    assert!(
        diff > nodes.len() / 4,
        "seeds should change scores ({diff})"
    );
}
