//! Generic abstract interpretation: a worklist fixpoint solver over the
//! CFG-lite of [`crate::cfg`], pluggable join-semilattice domains, and
//! Tarjan SCC condensation for bottom-up interprocedural summaries.
//!
//! The solver is deliberately small and textbook: states attach to block
//! *boundaries*, the transfer function is a caller-supplied closure over
//! a block's token range, joins happen where edges meet, and widening
//! kicks in at loop heads after a configurable number of visits so
//! infinite-height domains (intervals) still terminate. Domains are
//! values implementing [`JoinSemiLattice`]; the two shipped here —
//! [`EffectSet`] and [`Interval`] — power rules A0015–A0019 in
//! [`crate::effects`].

use std::collections::BTreeSet;
use std::collections::VecDeque;

use crate::cfg::{BlockKind, Cfg};

/// A join-semilattice: a partial order with least element and least
/// upper bound, plus a widening operator for infinite-height domains.
///
/// Laws the property tests in `tests/absint_props.rs` exercise:
/// `bottom ⊑ x`, `x ⊑ x ⊔ y`, `y ⊑ x ⊔ y`, and `x ⊔ y ⊑ x.widen(y)`
/// with widening chains stabilizing in finitely many steps.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// The least element (unreachable / no information).
    fn bottom() -> Self;
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;
    /// `self ⊑ other`.
    fn leq(&self, other: &Self) -> bool;
    /// Widening: an upper bound of `self ⊔ next` that guarantees
    /// stabilization. Finite domains can keep the default (plain join).
    fn widen(&self, next: &Self) -> Self {
        self.join(next)
    }
}

/// Result of a fixpoint run: the state at entry to and exit from every
/// block, plus how many transfer applications it took.
pub struct Fixpoint<S> {
    /// Per block: state on entry (join over predecessors' exits).
    pub inputs: Vec<S>,
    /// Per block: state on exit (transfer applied to the input).
    pub outputs: Vec<S>,
    /// Total number of transfer-function applications.
    pub steps: usize,
}

/// How many times a loop head is revisited before widening replaces
/// plain join. Small enough to terminate fast, large enough to let
/// short constant chains settle exactly.
pub const WIDEN_DELAY: usize = 3;

/// Solve a forward dataflow problem over `cfg` to fixpoint.
///
/// `transfer(block, input) -> output` must be monotone in `input` for
/// the result to be the least fixpoint; the solver itself terminates for
/// any transfer as long as widening stabilizes (a hard step bound backs
/// that up defensively, so malformed domains degrade to an over-wide
/// answer instead of hanging).
pub fn fixpoint<S, F>(cfg: &Cfg, entry: S, transfer: F) -> Fixpoint<S>
where
    S: JoinSemiLattice,
    F: Fn(usize, &S) -> S,
{
    let n = cfg.blocks.len();
    let mut inputs: Vec<S> = vec![S::bottom(); n];
    let mut outputs: Vec<S> = vec![S::bottom(); n];
    if n == 0 {
        return Fixpoint {
            inputs,
            outputs,
            steps: 0,
        };
    }

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for &s in &block.succs {
            if s < n {
                preds[s].push(b);
            }
        }
    }

    let mut visits: Vec<usize> = vec![0; n];
    let mut queued: Vec<bool> = vec![true; n];
    let mut worklist: VecDeque<usize> = (0..n).collect();
    let mut steps = 0usize;
    // Defensive ceiling: widening makes real domains stabilize long
    // before this; a buggy domain ends with a wide-but-finite answer.
    let max_steps = 64 * n + 256;

    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        let mut incoming = if b == 0 { entry.clone() } else { S::bottom() };
        for &p in &preds[b] {
            incoming = incoming.join(&outputs[p]);
        }
        visits[b] += 1;
        let next_in =
            if matches!(cfg.blocks[b].kind, BlockKind::LoopHead) && visits[b] > WIDEN_DELAY {
                inputs[b].widen(&incoming)
            } else {
                inputs[b].join(&incoming)
            };
        let first = visits[b] == 1;
        if !first && next_in == inputs[b] && steps > 0 {
            continue;
        }
        inputs[b] = next_in;
        let out = transfer(b, &inputs[b]);
        steps += 1;
        if first || out != outputs[b] {
            outputs[b] = out;
            for &s in &cfg.blocks[b].succs {
                if s < n && !queued[s] {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
        }
        if steps >= max_steps {
            break;
        }
    }

    Fixpoint {
        inputs,
        outputs,
        steps,
    }
}

// ---------------------------------------------------------------------
// Effect lattice
// ---------------------------------------------------------------------

/// Effect bit: the function may allocate.
pub const EFFECT_ALLOC: u8 = 1;
/// Effect bit: the function may take a lock.
pub const EFFECT_LOCK: u8 = 2;
/// Effect bit: the function may perform I/O.
pub const EFFECT_IO: u8 = 4;
/// Effect bit: the function may panic.
pub const EFFECT_PANIC: u8 = 8;

/// All effect bits, paired with their report names, in emission order.
pub const EFFECT_BITS: [(u8, &str); 4] = [
    (EFFECT_ALLOC, "alloc"),
    (EFFECT_LOCK, "lock"),
    (EFFECT_IO, "io"),
    (EFFECT_PANIC, "panic"),
];

/// The effect lattice: a powerset of {alloc, lock, io, panic} ordered by
/// inclusion. Finite height, so widening is plain join.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct EffectSet(pub u8);

impl EffectSet {
    /// The pure (bottom) element.
    pub fn pure() -> EffectSet {
        EffectSet(0)
    }

    pub fn is_pure(&self) -> bool {
        self.0 == 0
    }

    pub fn has(&self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    pub fn insert(&mut self, bit: u8) {
        self.0 |= bit;
    }

    /// Report names of the effects present, in fixed order.
    pub fn names(&self) -> Vec<&'static str> {
        EFFECT_BITS
            .iter()
            .filter(|(bit, _)| self.has(*bit))
            .map(|&(_, name)| name)
            .collect()
    }
}

impl JoinSemiLattice for EffectSet {
    fn bottom() -> Self {
        EffectSet(0)
    }
    fn join(&self, other: &Self) -> Self {
        EffectSet(self.0 | other.0)
    }
    fn leq(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }
}

// ---------------------------------------------------------------------
// Interval lattice
// ---------------------------------------------------------------------

/// Sentinel for an unbounded lower end.
pub const NEG_INF: i128 = i128::MIN;
/// Sentinel for an unbounded upper end.
pub const POS_INF: i128 = i128::MAX;

/// A (possibly empty) integer interval `[lo, hi]` with ±∞ sentinels.
///
/// The counters it tracks are unsigned (`u64` fitting comfortably in
/// `i128`), so the conventional "unknown" element used by the rules is
/// `[0, +∞]` rather than full top; `lo > hi` encodes bottom (empty).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

impl Interval {
    /// The empty interval (bottom).
    pub fn empty() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// The full interval `[-∞, +∞]`.
    pub fn top() -> Interval {
        Interval {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// The unknown unsigned value `[0, +∞]`.
    pub fn unsigned_top() -> Interval {
        Interval { lo: 0, hi: POS_INF }
    }

    pub fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub fn range(lo: i128, hi: i128) -> Interval {
        Interval { lo, hi }
    }

    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    pub fn contains(&self, v: i128) -> bool {
        !self.is_empty() && self.lo <= v && v <= self.hi
    }

    pub fn contains_zero(&self) -> bool {
        self.contains(0)
    }

    /// `self ⊆ [lo, hi]` (empty is inside everything).
    pub fn within(&self, lo: i128, hi: i128) -> bool {
        self.is_empty() || (self.lo >= lo && self.hi <= hi)
    }

    fn sat_add(a: i128, b: i128) -> i128 {
        if a == NEG_INF || b == NEG_INF {
            NEG_INF
        } else if a == POS_INF || b == POS_INF {
            POS_INF
        } else {
            a.saturating_add(b)
        }
    }

    /// Interval addition (sentinel-saturating).
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: Interval::sat_add(self.lo, other.lo),
            hi: Interval::sat_add(self.hi, other.hi),
        }
    }

    /// Interval subtraction (sentinel-saturating).
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        let neg = |v: i128| {
            if v == NEG_INF {
                POS_INF
            } else if v == POS_INF {
                NEG_INF
            } else {
                v.saturating_neg()
            }
        };
        Interval {
            lo: Interval::sat_add(self.lo, neg(other.hi)),
            hi: Interval::sat_add(self.hi, neg(other.lo)),
        }
    }

    /// Interval multiplication (sentinel-saturating, sign-correct).
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        let one = |a: i128, b: i128| -> i128 {
            let inf_a = a == NEG_INF || a == POS_INF;
            let inf_b = b == NEG_INF || b == POS_INF;
            if (inf_a && b == 0) || (inf_b && a == 0) {
                0
            } else if inf_a || inf_b {
                if (a < 0) == (b < 0) {
                    POS_INF
                } else {
                    NEG_INF
                }
            } else {
                a.saturating_mul(b)
            }
        };
        let products = [
            one(self.lo, other.lo),
            one(self.lo, other.hi),
            one(self.hi, other.lo),
            one(self.hi, other.hi),
        ];
        let mut lo = products[0];
        let mut hi = products[0];
        for &p in &products[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Interval { lo, hi }
    }

    /// `max(self, other)` pointwise (models `x.max(y)`).
    pub fn max_of(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `min(self, other)` pointwise (models `x.min(y)`).
    pub fn min_of(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }
}

impl JoinSemiLattice for Interval {
    fn bottom() -> Self {
        Interval::empty()
    }
    fn join(&self, other: &Self) -> Self {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo.min(other.lo),
                hi: self.hi.max(other.hi),
            }
        }
    }
    fn leq(&self, other: &Self) -> bool {
        self.is_empty() || (!other.is_empty() && other.lo <= self.lo && self.hi <= other.hi)
    }
    fn widen(&self, next: &Self) -> Self {
        let j = self.join(next);
        if self.is_empty() {
            return j;
        }
        Interval {
            lo: if j.lo < self.lo { NEG_INF } else { self.lo },
            hi: if j.hi > self.hi { POS_INF } else { self.hi },
        }
    }
}

// ---------------------------------------------------------------------
// Bit sets + Tarjan SCC condensation
// ---------------------------------------------------------------------

/// A dense bit set over `0..n`, the representation of one row of the
/// condensed reachability relation.
#[derive(Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w |= 1u64 << (i % 64);
        }
    }

    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }
}

/// Tarjan SCC condensation of a directed graph.
///
/// Components are emitted in **reverse topological order**: every edge
/// of the condensation points from a later component to an earlier one
/// (`comp_succs[c]` only contains indices `< c`), so a bottom-up
/// interprocedural pass is a single ascending sweep over `comps`.
pub struct CondensedGraph {
    /// Node → component index.
    pub comp_of: Vec<usize>,
    /// Component → member nodes (sorted), callees-first order.
    pub comps: Vec<Vec<usize>>,
    /// Condensation edges (deduped, each strictly decreasing).
    pub comp_succs: Vec<Vec<usize>>,
}

impl CondensedGraph {
    /// Per component: the set of components reachable from it,
    /// including itself — one ascending sweep thanks to the reverse
    /// topological component order.
    pub fn reachable_sets(&self) -> Vec<BitSet> {
        let n = self.comps.len();
        let mut reach: Vec<BitSet> = Vec::with_capacity(n);
        for c in 0..n {
            let mut set = BitSet::new(n);
            set.insert(c);
            for &s in &self.comp_succs[c] {
                if let Some(prev) = reach.get(s) {
                    set.union_with(prev);
                }
            }
            reach.push(set);
        }
        reach
    }
}

/// Iterative Tarjan over `0..n` with adjacency `succs` (out-of-range
/// targets are ignored). No recursion, so workspace-deep call chains
/// cannot overflow the stack.
pub fn condense(n: usize, succs: &[Vec<usize>]) -> CondensedGraph {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![0usize; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let edges: &[usize] = succs.get(v).map(|e| e.as_slice()).unwrap_or(&[]);
            if *child < edges.len() {
                let w = edges[*child];
                *child += 1;
                if w >= n {
                    continue;
                }
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp_of[w] = comps.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }

    let mut succ_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); comps.len()];
    for (v, out) in succs.iter().enumerate().take(n) {
        for &w in out {
            if w < n && comp_of[v] != comp_of[w] {
                succ_sets[comp_of[v]].insert(comp_of[w]);
            }
        }
    }
    CondensedGraph {
        comp_of,
        comps,
        comp_succs: succ_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::cfg::{Block, BlockKind};

    fn block(kind: BlockKind, succs: Vec<usize>) -> Block {
        Block {
            start: 0,
            end: 0,
            line: 1,
            kind,
            succs,
        }
    }

    #[test]
    fn effect_lattice_laws() {
        let a = EffectSet(EFFECT_ALLOC | EFFECT_LOCK);
        let b = EffectSet(EFFECT_IO);
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert!(EffectSet::bottom().leq(&a));
        assert_eq!(j.names(), vec!["alloc", "lock", "io"]);
    }

    #[test]
    fn interval_ops_are_sound() {
        let a = Interval::range(1, 5);
        let b = Interval::range(0, 3);
        assert_eq!(a.add(&b), Interval::range(1, 8));
        assert_eq!(a.sub(&b), Interval::range(-2, 5));
        assert_eq!(a.mul(&b), Interval::range(0, 15));
        assert_eq!(a.max_of(&Interval::exact(3)), Interval::range(3, 5));
        assert_eq!(a.min_of(&Interval::exact(3)), Interval::range(1, 3));
        assert!(Interval::unsigned_top().contains_zero());
        assert!(!Interval::range(1, POS_INF).contains_zero());
    }

    #[test]
    fn interval_widening_stabilizes() {
        let mut cur = Interval::exact(0);
        let mut next = Interval::range(0, 1);
        for _ in 0..4 {
            let w = cur.widen(&next);
            assert!(cur.join(&next).leq(&w));
            cur = w;
            next = next.add(&Interval::exact(1));
        }
        assert_eq!(cur.hi, POS_INF);
        assert_eq!(cur.widen(&next), cur);
    }

    #[test]
    fn fixpoint_reaches_loop_closure() {
        // entry -> loop head -> body -> loop head; head -> exit.
        let cfg = Cfg {
            blocks: vec![
                block(BlockKind::Entry, vec![1]),
                block(BlockKind::LoopHead, vec![2, 3]),
                block(BlockKind::Seq, vec![1]),
                block(BlockKind::Exit, vec![]),
            ],
        };
        // Transfer: body adds the IO effect; everything else passes
        // through. The loop must propagate IO around the back edge.
        let result = fixpoint(&cfg, EffectSet(EFFECT_ALLOC), |b, s: &EffectSet| {
            let mut out = *s;
            if b == 2 {
                out.insert(EFFECT_IO);
            }
            out
        });
        assert!(result.outputs[3].has(EFFECT_ALLOC));
        assert!(result.outputs[3].has(EFFECT_IO));
        assert!(result.steps < 64);
    }

    #[test]
    fn fixpoint_widens_interval_loops() {
        // A counting loop: the interval at the head must widen to +∞
        // rather than iterating forever.
        let cfg = Cfg {
            blocks: vec![
                block(BlockKind::Entry, vec![1]),
                block(BlockKind::LoopHead, vec![2, 3]),
                block(BlockKind::Seq, vec![1]),
                block(BlockKind::Exit, vec![]),
            ],
        };
        let result = fixpoint(&cfg, Interval::exact(0), |b, s: &Interval| {
            if b == 2 {
                s.add(&Interval::exact(1))
            } else {
                *s
            }
        });
        assert_eq!(result.inputs[1].lo, 0);
        assert_eq!(result.inputs[1].hi, POS_INF);
        assert!(result.steps < 64);
    }

    #[test]
    fn condensation_is_reverse_topological() {
        // 0 -> 1 <-> 2 -> 3, 0 -> 3.
        let succs = vec![vec![1, 3], vec![2], vec![1, 3], vec![]];
        let g = condense(4, &succs);
        assert_eq!(g.comps.len(), 3);
        assert_eq!(g.comp_of[1], g.comp_of[2]);
        for (c, out) in g.comp_succs.iter().enumerate() {
            for &s in out {
                assert!(s < c, "condensation edge {c} -> {s} not reverse-topo");
            }
        }
        let reach = g.reachable_sets();
        assert!(reach[g.comp_of[0]].contains(g.comp_of[3]));
        assert!(reach[g.comp_of[1]].contains(g.comp_of[3]));
        assert!(!reach[g.comp_of[3]].contains(g.comp_of[0]));
    }

    #[test]
    fn bitset_roundtrip() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        let mut t = BitSet::new(130);
        t.insert(65);
        s.union_with(&t);
        for i in [0usize, 64, 65, 129] {
            assert!(s.contains(i));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(200));
    }
}
