//! `deepeye-analyze`: the repo's own static-analysis and concurrency
//! checking toolbox.
//!
//! Two engines share this crate:
//!
//! * **Invariant linter** ([`lexer`], [`lint`], [`rules`], [`report`]) —
//!   a lightweight Rust lexer plus a rule framework enforcing the
//!   project invariants rustc and clippy cannot see: the clock
//!   discipline (`A0001`), observability call-site guards (`A0002`),
//!   no lock held across a recording callback (`A0003`), doc/code sync
//!   for sema diagnostic codes (`A0004`) and metric names (`A0005`),
//!   and structured concurrency only (`A0006`). Rules produce
//!   `file:line` diagnostics, honour a checked-in `analyze.allow`
//!   baseline (expected to stay empty), and export machine-readable
//!   JSON validated by `trace_check --lint-report`.
//!
//!   On top of the lexer sits an interprocedural dataflow layer
//!   ([`cfg`](mod@cfg), [`callgraph`], [`dataflow`]): per-function CFG-lite
//!   extraction, a workspace call graph with receiver-type method
//!   resolution, and the `A0008`–`A0012` rules — static lock-order
//!   cycles, panic reachability from public APIs, dropped `Result`s,
//!   allocation in hot loops, and call-graph propagation of
//!   `is_enabled()` guard facts. Interprocedural findings carry their
//!   full `file:line` witness chain, reconstructed from one shared
//!   SCC-condensed reachability relation and capped at the first cycle.
//!
//!   Above that sits an abstract-interpretation layer ([`absint`],
//!   [`effects`]): a worklist fixpoint solver over the CFG-lite with
//!   pluggable join-semilattice domains — a finite effect lattice
//!   (alloc/lock/io/panic) and a widening interval lattice — computing
//!   bottom-up two-world (any-path / disabled-world) effect summaries
//!   over the Tarjan condensation. It powers `A0015` (the zero-cost
//!   theorem: disabled-path observability is effect-free), `A0016`
//!   (saturating counter arithmetic, interval-proven narrowing casts),
//!   `A0017` (no unbounded growth in long-lived loops), `A0018` (no
//!   division by a possibly-zero abstract value), and `A0019` (the
//!   theorem statement in DESIGN.md §8 re-verified against the proof).
//!   The per-function summaries export as the `effects` array of the
//!   v3 JSON report.
//!
//! * **Loom-lite model checker** ([`model`]) — a deterministic
//!   cooperative scheduler that runs small 2–3-thread models of the
//!   repo's real concurrency (observer counter merging, span
//!   parenting, top-k work partitioning) under exhaustively enumerated
//!   or seeded-random interleavings, with vector-clock shadow state
//!   that reports data races, deadlocks, and failed assertions together
//!   with the schedule that produced them.
//!
//! The `analyze` binary drives both: `analyze --workspace` lints the
//! tree (`--effects` prints the zero-cost proof rows, `--rules` runs a
//! subset, `--list-rules` prints the catalog), `analyze --models`
//! explores the checked-in models.
//!
//! DESIGN.md §8 documents the rule catalog and the checker's scope and
//! limits; a doc-sync test keeps that section and [`rules::RULES`]
//! identical.

#![forbid(unsafe_code)]

pub mod absint;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod effects;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod report;
pub mod rules;

pub use callgraph::Analysis;
pub use lint::{Baseline, CallGraphSummary, Diagnostic, LintOutcome, PathStep, Workspace};
pub use report::{lint_report_json, validate_lint_report, ReportSummary};
