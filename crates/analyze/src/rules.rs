//! The project-invariant rule catalog (`A0001`–`A0020`).
//!
//! These are the invariants clippy cannot express because they are
//! *ours*: which crate owns the clock, what discipline the observability
//! layer's call sites follow, which documents must agree with which
//! constants. Each rule is a pure function over the lexed [`Workspace`]
//! plus the once-per-run interprocedural
//! [`Analysis`]; all rules skip
//! `#[cfg(test)]` regions and `tests/`/`benches/` files (panicking and
//! unguarded shortcuts are the failure channel there) and never scan
//! `vendor/*` (not loaded at all).
//!
//! `A0001`–`A0007`, `A0013`, `A0014`, and `A0020` are single-window token matchers;
//! `A0008`–`A0012` (implemented in [`crate::dataflow`]) walk the call
//! graph and attach `file:line` witness chains to their findings.
//!
//! The catalog table in DESIGN.md §8 is the human-facing mirror of
//! [`RULES`]; a doc-sync test keeps the two identical.

use crate::callgraph::Analysis;
use crate::lexer::Token;
use crate::lint::{Diagnostic, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One registered rule.
pub struct Rule {
    /// Stable code, `A0001`-style.
    pub code: &'static str,
    /// One-line summary (matches the DESIGN.md §8 catalog row).
    pub summary: &'static str,
    /// Whether the rule walks the call graph / effect summaries
    /// (vs. a single-window token matcher). Surfaced by `--list-rules`.
    pub interprocedural: bool,
    pub check: fn(&Workspace, &Analysis) -> Vec<Diagnostic>,
}

/// Every rule the linter runs, in code order.
pub static RULES: &[Rule] = &[
    Rule {
        code: "A0001",
        summary: "no raw std::time::Instant outside deepeye-obs (use the span clock)",
        interprocedural: false,
        check: instant_outside_obs,
    },
    Rule {
        code: "A0002",
        summary:
            "provenance/observer record calls with eager arguments must sit behind is_enabled()",
        interprocedural: false,
        check: unguarded_record_calls,
    },
    Rule {
        code: "A0003",
        summary: "no Mutex guard held across an observer/provenance callback",
        interprocedural: false,
        check: lock_across_callback,
    },
    Rule {
        code: "A0004",
        summary:
            "sema diagnostic codes are unique and in sync with the sema doc table and DESIGN.md",
        interprocedural: false,
        check: sema_code_sync,
    },
    Rule {
        code: "A0005",
        summary: "metric name literals match the central registry (deepeye_obs::metrics)",
        interprocedural: false,
        check: metric_registry_sync,
    },
    Rule {
        code: "A0006",
        summary: "no thread::spawn — threads come from thread::scope",
        interprocedural: false,
        check: free_thread_spawn,
    },
    Rule {
        code: "A0007",
        summary: "bench.* metric names agree across the perf harness, the registry, and DESIGN.md",
        interprocedural: false,
        check: bench_registry_sync,
    },
    Rule {
        code: "A0008",
        summary: "no lock-order cycles across the workspace call graph (static ABBA deadlock detection)",
        interprocedural: true,
        check: crate::dataflow::lock_order,
    },
    Rule {
        code: "A0009",
        summary: "public core/query/obs APIs cannot reach panic!/unwrap/expect/unguarded indexing through any call chain",
        interprocedural: true,
        check: crate::dataflow::panic_reachability,
    },
    Rule {
        code: "A0010",
        summary: "Results from fallible workspace calls are consumed — no `let _ =` discard or unread `.ok()`",
        interprocedural: true,
        check: crate::dataflow::dropped_results,
    },
    Rule {
        code: "A0011",
        summary: "no raw allocation in hot loops reachable from execute/top_k without alloc attribution in scope",
        interprocedural: true,
        check: crate::dataflow::hot_loop_allocations,
    },
    Rule {
        code: "A0012",
        summary: "is_enabled() guard facts propagate through calls — helpers reached only under guards need no local re-check",
        interprocedural: true,
        check: crate::dataflow::guard_propagation,
    },
    Rule {
        code: "A0013",
        summary: "telemetry metric and field names agree across the obs registry, the recorder sources, and DESIGN.md §10",
        interprocedural: false,
        check: telemetry_registry_sync,
    },
    Rule {
        code: "A0014",
        summary: "executor cost operator and cost.* counter names agree across the registry, the executor instrumentation, and DESIGN.md §12",
        interprocedural: false,
        check: cost_registry_sync,
    },
    Rule {
        code: "A0015",
        summary: "disabled-path and NoCost-monomorphized functions are effect-free — the zero-cost theorem, proven by fixpoint effect inference",
        interprocedural: true,
        check: crate::effects::zero_cost,
    },
    Rule {
        code: "A0016",
        summary: "counter flows (cost.*/obs.*/telemetry.*/health.*) use saturating arithmetic and interval-proven narrowing casts",
        interprocedural: false,
        check: crate::effects::counter_arith,
    },
    Rule {
        code: "A0017",
        summary: "no unbounded collection growth in loops reachable from long-lived entries without a capacity bound or ring",
        interprocedural: true,
        check: crate::effects::unbounded_growth,
    },
    Rule {
        code: "A0018",
        summary: "no division or modulo by a possibly-zero abstract value in histogram-bucket and rollup math",
        interprocedural: false,
        check: crate::effects::div_by_zero,
    },
    Rule {
        code: "A0019",
        summary: "DESIGN.md's zero-cost theorem names only functions the effect engine proves pure",
        interprocedural: true,
        check: crate::effects::design_sync,
    },
    Rule {
        code: "A0020",
        summary: "health.* metric and field names agree across the obs registry, the health-engine sources, and DESIGN.md §13",
        interprocedural: false,
        check: health_registry_sync,
    },
];

fn diag(file: &SourceFile, line: u32, code: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        code,
        message,
        path: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// A0001 — the clock discipline.

fn instant_outside_obs(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.in_dir("crates/obs") {
            continue; // the span clock's home owns the raw clock
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if t.is_ident("Instant") && file.is_product(i) {
                out.push(diag(
                    file,
                    t.line,
                    "A0001",
                    "raw `std::time::Instant`; time through deepeye-obs \
                     (`Observer::timer`/`span` or `Stopwatch`) so every measurement \
                     shares the span clock"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0002 — the no-op discipline.
//
// `Observer` and `Provenance` are zero-cost when disabled *inside* the
// call — but the arguments are evaluated eagerly at the call site. A
// provenance record's id is a heap `String` (`query_id`, `node.id()`,
// `format!`), so an unguarded `prov.record(…)` allocates on the hot path
// of every un-instrumented run. The rule demands a lexical
// `is_enabled()` guard around every provenance record-family call, and
// around observer calls whose arguments visibly allocate.
//
// The recognized guard shapes (direct guard, match-arm guard, named
// guard variable, negated early-return guard) are encoded in
// `cfg::guard_mask`, which this rule shares with the call-graph layer.
//
// Record calls inside a *non-pub helper that has resolved product call
// sites* are deferred to A0012, which checks that every call path into
// the helper is guarded — so a guarded wrapper does not need a local
// re-check.

pub(crate) const PROV_METHODS: &[&str] = &["record", "record_rejected", "bump"];
const OBS_METHODS: &[&str] = &[
    "alloc",
    "alloc_many",
    "alloc_release",
    "incr",
    "record_ns",
    "record_many_ns",
    "timer",
    "span",
    "span_under",
];
const ALLOC_MARKERS: &[&str] = &[
    "format",
    "to_owned",
    "to_string",
    "from",
    "query_id",
    "join",
    "clone",
    "collect",
];

/// The kind of record call a site is (drives the A0002 message).
pub(crate) enum RecordKind {
    /// Provenance record family — always allocates an id.
    Prov,
    /// Observer call with a visibly allocating argument.
    ObsAlloc,
}

/// If tokens at `i` start a record-family method call
/// (`prov.record(…)`, `obs.incr(format!…)`, …), return
/// `(receiver, method, kind)`. Shared by A0002 and A0012.
pub(crate) fn record_call_at(file: &SourceFile, i: usize) -> Option<(&str, &str, RecordKind)> {
    let toks = &file.tokens;
    let recv = toks[i].ident()?;
    if !(toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('(')))
    {
        return None;
    }
    let method = toks.get(i + 2).and_then(Token::ident)?;
    let recv_lower = recv.to_ascii_lowercase();
    let is_prov_recv = recv_lower.contains("prov");
    let is_obs_recv = recv_lower == "obs" || recv_lower.contains("observer");
    if is_prov_recv && PROV_METHODS.contains(&method) {
        Some((recv, method, RecordKind::Prov))
    } else if is_obs_recv && OBS_METHODS.contains(&method) && args_allocate(toks, i + 3) {
        Some((recv, method, RecordKind::ObsAlloc))
    } else {
        None
    }
}

fn unguarded_record_calls(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.in_dir("crates/obs") || file.is_test_file {
            continue;
        }
        let mask = &a.guard_masks[fi];
        for i in 0..file.tokens.len() {
            if !file.is_product(i) || mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some((recv, method, kind)) = record_call_at(file, i) else {
                continue;
            };
            // A non-pub helper with resolved product call sites belongs
            // to A0012: the guard may live at the call sites.
            if let Some(func) = a.func_at(fi, i) {
                if !a.funcs[func].is_pub && crate::dataflow::has_product_caller(ws, a, func) {
                    continue;
                }
            }
            let message = match kind {
                RecordKind::Prov => format!(
                    "`{recv}.{method}(…)` outside an `is_enabled()` guard — provenance \
                     ids allocate eagerly even when recording is off"
                ),
                RecordKind::ObsAlloc => format!(
                    "`{recv}.{method}(…)` builds an allocating argument outside an \
                     `is_enabled()` guard — the disabled observer still pays for it"
                ),
            };
            out.push(diag(file, file.tokens[i].line, "A0002", message));
        }
    }
    out
}

/// Whether the argument list opening at `toks[open]` (a `(`) contains an
/// allocation marker before its matching close.
fn args_allocate(toks: &[Token], open: usize) -> bool {
    let mut depth = 0usize;
    for t in &toks[open..] {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.ident().is_some_and(|id| ALLOC_MARKERS.contains(&id)) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// A0003 — no lock held across an observer/provenance callback.
//
// Recording into the Observer/Provenance sinks takes *their* internal
// lock; calling them while holding one of ours nests two mutexes on the
// hot path — a contention multiplier at best, a deadlock when the sink
// ever calls back out. `deepeye-obs` and `core::provenance` own their
// sink locks and are exempt.

fn lock_across_callback(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const CALLBACKS: &[&str] = &[
        "alloc",
        "alloc_many",
        "alloc_release",
        "incr",
        "record_ns",
        "record_many_ns",
        "timer",
        "span",
        "span_under",
        "record",
        "record_rejected",
        "bump",
    ];
    let mut out = Vec::new();
    for file in &ws.files {
        if file.in_dir("crates/obs")
            || file.rel == "crates/core/src/provenance.rs"
            || file.is_test_file
        {
            continue;
        }
        let toks = &file.tokens;
        // Depth of the innermost block holding a `let`-bound lock guard;
        // None when no guard is live.
        let mut depth = 0usize;
        let mut locked_at: Option<usize> = None;
        let mut lock_line = 0u32;
        let mut stmt_start = 0usize;
        let mut temp_lock = false; // non-`let` lock, lives to the `;`
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if locked_at.is_some_and(|d| depth < d) {
                    locked_at = None;
                }
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct(';') {
                stmt_start = i + 1;
                temp_lock = false;
                continue;
            }
            // `.lock()` — a guard is born.
            if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && file.is_product(i)
            {
                if toks.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
                    locked_at = Some(depth);
                    lock_line = t.line;
                } else {
                    temp_lock = true;
                    lock_line = t.line;
                }
                continue;
            }
            if locked_at.is_none() && !temp_lock {
                continue;
            }
            // Observer/provenance callback while the guard lives?
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .and_then(Token::ident)
                    .is_some_and(|m| CALLBACKS.contains(&m))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && file.is_product(i)
            {
                let method = toks[i + 1].ident().unwrap_or_default();
                out.push(diag(
                    file,
                    toks[i + 1].line,
                    "A0003",
                    format!(
                        "`.{method}(…)` called while a Mutex guard taken on line \
                         {lock_line} is still held — drop the guard before recording"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0004 — sema diagnostic-code sync.

fn sema_code_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    let Some(sema) = ws.file("crates/query/src/sema.rs") else {
        return Vec::new(); // partial workspace (unit tests)
    };
    let is_code = |s: &str| {
        s.len() == 5
            && (s.starts_with("E00") || s.starts_with("W01"))
            && s[1..].chars().all(|c| c.is_ascii_digit())
    };

    // Emitted codes: string literals in non-test sema code (the
    // `Code::as_str` table is the only place they occur).
    let mut emitted: BTreeMap<String, u32> = BTreeMap::new();
    let mut dups: Vec<(String, u32)> = Vec::new();
    for (i, t) in sema.tokens.iter().enumerate() {
        if let Some(lit) = t.str_lit() {
            if is_code(lit) && sema.is_product(i) {
                if emitted.contains_key(lit) {
                    dups.push((lit.to_owned(), t.line));
                } else {
                    emitted.insert(lit.to_owned(), t.line);
                }
            }
        }
    }

    // The module-doc table: `//! | E0001 | … |` rows in the raw text.
    let mut doc_table: BTreeSet<String> = BTreeSet::new();
    for line in sema.raw.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix("//!") else {
            continue;
        };
        let Some(cell) = rest.trim_start().strip_prefix('|') else {
            continue;
        };
        let code = cell.split('|').next().unwrap_or("").trim();
        if is_code(code) {
            doc_table.insert(code.to_owned());
        }
    }

    // Codes mentioned anywhere in DESIGN.md.
    let mut design: BTreeSet<String> = BTreeSet::new();
    let text = &ws.design;
    let chars: Vec<char> = text.chars().collect();
    let mut k = 0usize;
    while k < chars.len() {
        if (chars[k] == 'E' || chars[k] == 'W')
            && k + 5 <= chars.len()
            && chars[k + 1..k + 5].iter().all(|c| c.is_ascii_digit())
            && (k == 0 || !chars[k - 1].is_ascii_alphanumeric())
            && (k + 5 == chars.len() || !chars[k + 5].is_ascii_alphanumeric())
        {
            let code: String = chars[k..k + 5].iter().collect();
            if is_code(&code) {
                design.insert(code);
            }
            k += 5;
        } else {
            k += 1;
        }
    }

    let mut out = Vec::new();
    for (code, line) in dups {
        out.push(diag(
            sema,
            line,
            "A0004",
            format!("diagnostic code {code} emitted twice — codes must be unique"),
        ));
    }
    for (code, &line) in &emitted {
        if !doc_table.contains(code) {
            out.push(diag(
                sema,
                line,
                "A0004",
                format!("code {code} is emitted but missing from the sema module-doc table"),
            ));
        }
        if !ws.design.is_empty() && !design.contains(code) {
            out.push(diag(
                sema,
                line,
                "A0004",
                format!("code {code} is emitted but never mentioned in DESIGN.md"),
            ));
        }
    }
    for code in &doc_table {
        if !emitted.contains_key(code) {
            out.push(diag(
                sema,
                1,
                "A0004",
                format!("doc table lists {code} but sema never emits it"),
            ));
        }
    }
    if !ws.design.is_empty() {
        for code in &design {
            if !emitted.contains_key(code) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: 1,
                    code: "A0004",
                    message: format!("DESIGN.md mentions {code} but sema never emits it"),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0005 — metric names come from the registry.

fn metric_registry_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const COUNTER_CALLS: &[&str] = &["incr"];
    const HIST_CALLS: &[&str] = &["timer", "record_ns", "record_many_ns"];
    let metric_shaped = |s: &str| {
        s.contains('.')
            && !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
    };
    let mut used_counters: BTreeSet<String> = BTreeSet::new();
    let mut used_hists: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for file in &ws.files {
        if file.in_dir("crates/obs") || file.in_dir("crates/analyze") {
            continue; // the registry's own crate and this linter's fixtures
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(method) = toks.get(i + 1).and_then(Token::ident) else {
                continue;
            };
            let is_counter_call = COUNTER_CALLS.contains(&method);
            let is_hist_call = HIST_CALLS.contains(&method);
            if !(is_counter_call || is_hist_call)
                || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            if !file.is_product(i) {
                continue;
            }
            // Every metric-shaped string literal inside the argument list
            // (covers `incr(if ok { "exec.ok" } else { "exec.err" }, 1)`).
            let mut depth = 0usize;
            for t in &toks[i + 2..] {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(lit) = t.str_lit() {
                    if !metric_shaped(lit) {
                        continue;
                    }
                    let known = if is_counter_call {
                        used_counters.insert(lit.to_owned());
                        deepeye_obs::metrics::is_counter(lit)
                    } else {
                        used_hists.insert(lit.to_owned());
                        deepeye_obs::metrics::is_histogram(lit)
                    };
                    if !known {
                        let kind = if is_counter_call {
                            "counter"
                        } else {
                            "histogram"
                        };
                        out.push(diag(
                            file,
                            t.line,
                            "A0005",
                            format!(
                                "{kind} {lit:?} is not in the central metric registry \
                                 (deepeye_obs::metrics) — a typo forks the metric"
                            ),
                        ));
                    }
                }
            }
        }
    }
    // Dead registry entries: only meaningful on a full workspace scan.
    if ws.file("crates/core/src/deepeye.rs").is_some() {
        // Flight-recorder and health-engine self-metrics are recorded
        // inside crates/obs, which this rule's scan skips; A0013 and
        // A0020 own their sync instead.
        let recorder_metric = |name: &str| {
            name.starts_with("obs.")
                || name.starts_with("telemetry.")
                || name.starts_with("health.")
        };
        for name in deepeye_obs::metrics::COUNTERS {
            if recorder_metric(name) {
                continue;
            }
            if !used_counters.contains(*name) {
                out.push(Diagnostic {
                    file: "crates/obs/src/metrics.rs".to_owned(),
                    line: 1,
                    code: "A0005",
                    message: format!("registered counter {name:?} is recorded nowhere"),
                    path: Vec::new(),
                });
            }
        }
        for name in deepeye_obs::metrics::HISTOGRAMS {
            if recorder_metric(name) {
                continue;
            }
            if !used_hists.contains(*name) {
                out.push(Diagnostic {
                    file: "crates/obs/src/metrics.rs".to_owned(),
                    line: 1,
                    code: "A0005",
                    message: format!("registered histogram {name:?} is recorded nowhere"),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0006 — structured concurrency only.

fn free_thread_spawn(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].is_ident("thread")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("spawn"))
                && file.is_product(i)
            {
                out.push(diag(
                    file,
                    toks[i].line,
                    "A0006",
                    "free `thread::spawn` — use `thread::scope` so every worker joins \
                     before its borrowed data dies and panics surface at the join"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0007 — the bench perf layer, the registry, and DESIGN.md agree.
//
// The perf harness is a third consumer of the metric namespace: its JSON
// artifact names the `bench.*` histogram each stage records into, the
// budget table constrains those same histograms, and DESIGN.md §9
// documents them. A0005 already rejects unregistered names at record
// call sites; this rule closes the remaining drift channels — a
// `bench.*` literal anywhere in the harness layer that the registry
// does not know, a registered `bench.*` histogram the harness never
// wires up, and DESIGN.md naming a `bench.*` metric that does not exist.

fn bench_registry_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const BENCH_FILES: &[&str] = &[
        "crates/bench/src/perf.rs",
        "crates/bench/src/bin/harness.rs",
        "crates/bench/src/bin/perfgate.rs",
    ];
    let metric_shaped = |s: &str| {
        s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
    };
    let mut out = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for rel in BENCH_FILES {
        let Some(file) = ws.file(rel) else { continue };
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(lit) = t.str_lit() else { continue };
            if !lit.starts_with("bench.") || !metric_shaped(lit) || !file.is_product(i) {
                continue;
            }
            used.insert(lit.to_owned());
            if !deepeye_obs::metrics::is_histogram(lit) {
                out.push(diag(
                    file,
                    t.line,
                    "A0007",
                    format!(
                        "bench metric {lit:?} is not a registered histogram \
                         (deepeye_obs::metrics) — the artifact would name a \
                         metric dashboards cannot find"
                    ),
                ));
            }
        }
    }
    // The reverse directions only make sense when the harness layer is in
    // the scanned set (full workspace runs; unit fixtures gate themselves
    // by including crates/bench/src/perf.rs).
    if ws.file("crates/bench/src/perf.rs").is_some() {
        for name in deepeye_obs::metrics::HISTOGRAMS {
            if !name.starts_with("bench.") {
                continue;
            }
            if !used.contains(*name) {
                out.push(Diagnostic {
                    file: "crates/bench/src/perf.rs".to_owned(),
                    line: 1,
                    code: "A0007",
                    message: format!(
                        "registered bench histogram {name:?} is not wired into the \
                         perf harness layer"
                    ),
                    path: Vec::new(),
                });
            }
            if !ws.design.is_empty() && !ws.design.contains(name) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: 1,
                    code: "A0007",
                    message: format!(
                        "registered bench histogram {name:?} is not documented in DESIGN.md"
                    ),
                    path: Vec::new(),
                });
            }
        }
        // DESIGN.md → registry: a `bench.*_ns`-shaped token in the prose
        // that the registry does not know is a doc lie.
        let design = ws.design.as_str();
        let mut pos = 0usize;
        while let Some(found) = design[pos..].find("bench.") {
            let start = pos + found;
            pos = start + "bench.".len();
            // Skip words like "microbench." or "deepeye-bench.": only a
            // standalone `bench.` token starts a metric name.
            if start > 0
                && design[..start]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
            {
                continue;
            }
            let rest = &design[pos..];
            let word_len = rest
                .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                .unwrap_or(rest.len());
            let token = &design[start..pos + word_len];
            if token.ends_with("_ns") && !deepeye_obs::metrics::is_histogram(token) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: (design[..start].matches('\n').count() + 1) as u32,
                    code: "A0007",
                    message: format!(
                        "DESIGN.md names bench metric {token:?}, which is not in the registry"
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0013 — the flight recorder's telemetry names and fields stay in sync.
//
// The flight recorder owns a second metric namespace (`obs.*`,
// `telemetry.*`) recorded inside crates/obs itself — exactly the region
// A0005's workspace scan skips — plus the `deepeye-telemetry/v1` line
// schema whose field names the emitter, the validator, and DESIGN.md §10
// must agree on. This rule closes those channels: a recorder-owned
// metric literal in the recorder sources that the registry does not
// know; a registered `obs.*`/`telemetry.*` metric the recorder never
// records or §10 never documents; a recorder-shaped token in §10 that
// the registry does not know; and a `TELEMETRY_FIELDS` schema field §10
// does not document backticked.

fn telemetry_registry_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const OBS_FILES: &[&str] = &[
        "crates/obs/src/observer.rs",
        "crates/obs/src/ring.rs",
        "crates/obs/src/telemetry.rs",
        "crates/obs/src/watchdog.rs",
    ];
    let metric_shaped = |s: &str| {
        s.contains('.')
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
    };
    let recorder_name = |s: &str| s.starts_with("obs.") || s.starts_with("telemetry.");
    let mut out = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for rel in OBS_FILES {
        let Some(file) = ws.file(rel) else { continue };
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(lit) = t.str_lit() else { continue };
            if !recorder_name(lit) || !metric_shaped(lit) || !file.is_product(i) {
                continue;
            }
            used.insert(lit.to_owned());
            if !deepeye_obs::metrics::is_counter(lit) && !deepeye_obs::metrics::is_histogram(lit) {
                out.push(diag(
                    file,
                    t.line,
                    "A0013",
                    format!(
                        "recorder metric {lit:?} is not in the central metric registry \
                         (deepeye_obs::metrics) — a typo forks the metric"
                    ),
                ));
            }
        }
    }
    // The reverse directions gate on the recorder sources being in the
    // scanned set (full workspace runs; unit fixtures gate themselves by
    // including crates/obs/src/telemetry.rs).
    if ws.file("crates/obs/src/telemetry.rs").is_some() {
        let design = ws.design.as_str();
        // The flight-recorder section: "## 10." up to the next top-level
        // heading. If the heading moves, fall back to the whole document
        // so the rule degrades to weaker matching instead of passing
        // silently.
        let (section, section_start) = match design.find("## 10.") {
            Some(start) => {
                let rest = &design[start..];
                match rest.find("\n## 11.") {
                    Some(end) => (&rest[..end], start),
                    None => (rest, start),
                }
            }
            None => (design, 0),
        };
        for name in deepeye_obs::metrics::COUNTERS
            .iter()
            .chain(deepeye_obs::metrics::HISTOGRAMS)
        {
            if !recorder_name(name) {
                continue;
            }
            if !used.contains(*name) {
                out.push(Diagnostic {
                    file: "crates/obs/src/metrics.rs".to_owned(),
                    line: 1,
                    code: "A0013",
                    message: format!(
                        "registered recorder metric {name:?} is recorded nowhere in the \
                         flight-recorder sources"
                    ),
                    path: Vec::new(),
                });
            }
            if !design.is_empty() && !section.contains(name) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: 1,
                    code: "A0013",
                    message: format!("recorder metric {name:?} is not documented in DESIGN.md §10"),
                    path: Vec::new(),
                });
            }
        }
        // §10 → registry: an `obs.*`/`telemetry.*`-shaped token in the
        // section that the registry does not know is a doc lie.
        for prefix in ["obs.", "telemetry."] {
            let mut pos = 0usize;
            while let Some(found) = section[pos..].find(prefix) {
                let start = pos + found;
                pos = start + prefix.len();
                // Only a standalone token starts a metric name — skip
                // `deepeye-obs.` and similar.
                if start > 0
                    && section[..start]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
                {
                    continue;
                }
                let rest = &section[pos..];
                let word_len = rest
                    .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                    .unwrap_or(rest.len());
                if word_len == 0 {
                    continue; // `obs.*` wildcards and sentence-final dots
                }
                let token = &section[start..pos + word_len];
                if !deepeye_obs::metrics::is_counter(token)
                    && !deepeye_obs::metrics::is_histogram(token)
                {
                    let offset = (section_start + start).min(design.len());
                    out.push(Diagnostic {
                        file: "DESIGN.md".to_owned(),
                        line: (design[..offset].matches('\n').count() + 1) as u32,
                        code: "A0013",
                        message: format!(
                            "DESIGN.md §10 names recorder metric {token:?}, which is not in \
                             the registry"
                        ),
                        path: Vec::new(),
                    });
                }
            }
        }
        // Telemetry schema fields must be documented (backticked) in §10.
        if !design.is_empty() {
            for field in deepeye_obs::TELEMETRY_FIELDS {
                if !section.contains(&format!("`{field}`")) {
                    out.push(Diagnostic {
                        file: "DESIGN.md".to_owned(),
                        line: 1,
                        code: "A0013",
                        message: format!(
                            "telemetry schema field {field:?} is not documented in DESIGN.md §10"
                        ),
                        path: Vec::new(),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0020 — the health engine's metric and schema names stay in sync.
//
// The health engine adds a third self-metric namespace (`health.*`) and a
// second versioned document schema (`deepeye-health/v1`). The same drift
// channels A0013 closes for the recorder apply here: a typo'd `health.*`
// literal at a record site forks the metric; a registered `health.*`
// counter no health-engine source records is dead weight; DESIGN.md §13
// can name a metric the registry never heard of, or omit one it has, or
// skip a schema field `validate_health_json` enforces. Same mechanics as
// A0013, scoped to the health-engine sources and §13.

fn health_registry_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const HEALTH_FILES: &[&str] = &[
        "crates/obs/src/health.rs",
        "crates/obs/src/series.rs",
        "crates/obs/src/observer.rs",
        "crates/obs/src/telemetry.rs",
    ];
    let metric_shaped = |s: &str| {
        s.contains('.')
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
    };
    let health_name = |s: &str| s.starts_with("health.");
    let mut out = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for rel in HEALTH_FILES {
        let Some(file) = ws.file(rel) else { continue };
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(lit) = t.str_lit() else { continue };
            if !health_name(lit) || !metric_shaped(lit) || !file.is_product(i) {
                continue;
            }
            used.insert(lit.to_owned());
            if !deepeye_obs::metrics::is_counter(lit) && !deepeye_obs::metrics::is_histogram(lit) {
                out.push(diag(
                    file,
                    t.line,
                    "A0020",
                    format!(
                        "health metric {lit:?} is not in the central metric registry \
                         (deepeye_obs::metrics) — a typo forks the metric"
                    ),
                ));
            }
        }
    }
    // The reverse directions gate on the health-engine sources being in
    // the scanned set (full workspace runs; unit fixtures gate themselves
    // by including crates/obs/src/health.rs).
    if ws.file("crates/obs/src/health.rs").is_some() {
        let design = ws.design.as_str();
        // The health-engine section: "## 13." to the end of the document
        // (it is currently the last section; a "\n## 14." bound kicks in
        // if one is ever added). If the heading moves, fall back to the
        // whole document so the rule degrades to weaker matching instead
        // of passing silently.
        let (section, section_start) = match design.find("## 13.") {
            Some(start) => {
                let rest = &design[start..];
                match rest.find("\n## 14.") {
                    Some(end) => (&rest[..end], start),
                    None => (rest, start),
                }
            }
            None => (design, 0),
        };
        for name in deepeye_obs::metrics::COUNTERS
            .iter()
            .chain(deepeye_obs::metrics::HISTOGRAMS)
        {
            if !health_name(name) {
                continue;
            }
            if !used.contains(*name) {
                out.push(Diagnostic {
                    file: "crates/obs/src/metrics.rs".to_owned(),
                    line: 1,
                    code: "A0020",
                    message: format!(
                        "registered health metric {name:?} is recorded nowhere in the \
                         health-engine sources"
                    ),
                    path: Vec::new(),
                });
            }
            if !design.is_empty() && !section.contains(name) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: 1,
                    code: "A0020",
                    message: format!("health metric {name:?} is not documented in DESIGN.md §13"),
                    path: Vec::new(),
                });
            }
        }
        // §13 → registry: a `health.*`-shaped token in the section that
        // the registry does not know is a doc lie.
        {
            let prefix = "health.";
            let mut pos = 0usize;
            while let Some(found) = section[pos..].find(prefix) {
                let start = pos + found;
                pos = start + prefix.len();
                // Only a standalone token starts a metric name — skip
                // `deepeye-health.` and similar.
                if start > 0
                    && section[..start]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
                {
                    continue;
                }
                let rest = &section[pos..];
                let word_len = rest
                    .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                    .unwrap_or(rest.len());
                if word_len == 0 {
                    continue; // `health.*` wildcards and sentence-final dots
                }
                let token = &section[start..pos + word_len];
                if !deepeye_obs::metrics::is_counter(token)
                    && !deepeye_obs::metrics::is_histogram(token)
                {
                    let offset = (section_start + start).min(design.len());
                    out.push(Diagnostic {
                        file: "DESIGN.md".to_owned(),
                        line: (design[..offset].matches('\n').count() + 1) as u32,
                        code: "A0020",
                        message: format!(
                            "DESIGN.md §13 names health metric {token:?}, which is not in \
                             the registry"
                        ),
                        path: Vec::new(),
                    });
                }
            }
        }
        // Health document schema fields must be documented (backticked)
        // in §13.
        if !design.is_empty() {
            for field in deepeye_obs::HEALTH_FIELDS {
                if !section.contains(&format!("`{field}`")) {
                    out.push(Diagnostic {
                        file: "DESIGN.md".to_owned(),
                        line: 1,
                        code: "A0020",
                        message: format!(
                            "health schema field {field:?} is not documented in DESIGN.md §13"
                        ),
                        path: Vec::new(),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0014 — the executor cost taxonomy, the registry, the instrumentation,
// and DESIGN.md §12 agree.
//
// The cost profiler spans three layers that can silently drift: the
// operator taxonomy (`deepeye_obs::cost::Op`), the `cost.*` counters the
// worker flush writes (central registry + literal call sites in
// crates/core/src/parallel.rs), and the executor instrumentation in
// crates/query/src/{exec,batch}.rs that charges each operator. A0005
// already rejects unregistered metric literals at record call sites;
// this rule closes the cost-specific channels: a taxonomy operator whose
// counter is missing from the registry, a registered `cost.*` counter
// that names no operator, an operator the executor never charges, a
// registered `cost.*` counter the flush site never writes, and a DESIGN
// §12 section that fails to document an operator or names a `cost.*`
// metric the registry does not know.

/// `rows_scanned` → `RowsScanned`, the `Op` variant ident the executor
/// instrumentation must reference.
fn op_variant_ident(name: &str) -> String {
    let mut out = String::new();
    for word in name.split('_') {
        let mut chars = word.chars();
        if let Some(first) = chars.next() {
            out.push(first.to_ascii_uppercase());
            out.extend(chars);
        }
    }
    out
}

fn cost_registry_sync(ws: &Workspace, _a: &Analysis) -> Vec<Diagnostic> {
    const EXECUTOR_FILES: &[&str] = &["crates/query/src/exec.rs", "crates/query/src/batch.rs"];
    const FLUSH_FILE: &str = "crates/core/src/parallel.rs";
    let metric_shaped = |s: &str| {
        s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
    };
    let mut out = Vec::new();

    // `cost.*` literals in the profiler sources must be registered
    // counters — a typo forks the metric.
    let mut flushed: BTreeSet<String> = BTreeSet::new();
    for rel in EXECUTOR_FILES.iter().chain([&FLUSH_FILE]) {
        let Some(file) = ws.file(rel) else { continue };
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(lit) = t.str_lit() else { continue };
            if !lit.starts_with("cost.") || !metric_shaped(lit) || !file.is_product(i) {
                continue;
            }
            if *rel == FLUSH_FILE {
                flushed.insert(lit.to_owned());
            }
            if !deepeye_obs::metrics::is_counter(lit) {
                out.push(diag(
                    file,
                    t.line,
                    "A0014",
                    format!(
                        "cost metric {lit:?} is not a registered counter \
                         (deepeye_obs::metrics) — a typo forks the metric"
                    ),
                ));
            }
        }
    }

    // The reverse directions gate on the executor sources being in the
    // scanned set (full workspace runs; unit fixtures gate themselves by
    // including crates/query/src/exec.rs).
    if ws.file("crates/query/src/exec.rs").is_none() {
        return out;
    }

    // Taxonomy ↔ registry, both directions.
    for op in deepeye_obs::Op::ALL {
        if !deepeye_obs::metrics::is_counter(op.metric()) {
            out.push(Diagnostic {
                file: "crates/obs/src/metrics.rs".to_owned(),
                line: 1,
                code: "A0014",
                message: format!(
                    "cost operator {:?} has no registered counter {:?}",
                    op.name(),
                    op.metric()
                ),
                path: Vec::new(),
            });
        }
    }
    for name in deepeye_obs::metrics::COUNTERS {
        let Some(op_name) = name.strip_prefix("cost.") else {
            continue;
        };
        if deepeye_obs::Op::from_name(op_name).is_none() {
            out.push(Diagnostic {
                file: "crates/obs/src/metrics.rs".to_owned(),
                line: 1,
                code: "A0014",
                message: format!(
                    "registered counter {name:?} names no operator in the cost taxonomy"
                ),
                path: Vec::new(),
            });
        }
    }

    // Every operator must be charged somewhere in the executor: the
    // `Op::<Variant>` ident has to appear in exec.rs or batch.rs product
    // code, else the taxonomy promises a count that is always zero.
    for op in deepeye_obs::Op::ALL {
        let variant = op_variant_ident(op.name());
        let charged = EXECUTOR_FILES.iter().any(|rel| {
            ws.file(rel).is_some_and(|file| {
                file.tokens
                    .iter()
                    .enumerate()
                    .any(|(i, t)| t.is_ident(&variant) && file.is_product(i))
            })
        });
        if !charged {
            out.push(Diagnostic {
                file: "crates/query/src/exec.rs".to_owned(),
                line: 1,
                code: "A0014",
                message: format!(
                    "cost operator {:?} (Op::{variant}) is never charged in the \
                     executor instrumentation",
                    op.name()
                ),
                path: Vec::new(),
            });
        }
    }

    // Every registered `cost.*` counter must be flushed by the worker
    // flush site, else the exactness invariant silently loses it.
    if ws.file(FLUSH_FILE).is_some() {
        for name in deepeye_obs::metrics::COUNTERS {
            if name.starts_with("cost.") && !flushed.contains(*name) {
                out.push(Diagnostic {
                    file: FLUSH_FILE.to_owned(),
                    line: 1,
                    code: "A0014",
                    message: format!(
                        "registered cost counter {name:?} is never flushed by the \
                         worker flush site"
                    ),
                    path: Vec::new(),
                });
            }
        }
    }

    // DESIGN.md §12: every operator documented backticked, and every
    // `cost.*`-shaped token in the section known to the registry.
    let design = ws.design.as_str();
    if !design.is_empty() {
        let (section, section_start) = match design.find("## 12.") {
            Some(start) => {
                let rest = &design[start..];
                match rest.find("\n## 13.") {
                    Some(end) => (&rest[..end], start),
                    None => (rest, start),
                }
            }
            None => (design, 0),
        };
        for op in deepeye_obs::Op::ALL {
            if !section.contains(&format!("`{}`", op.name())) {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: 1,
                    code: "A0014",
                    message: format!(
                        "cost operator {:?} is not documented in DESIGN.md §12",
                        op.name()
                    ),
                    path: Vec::new(),
                });
            }
        }
        let mut pos = 0usize;
        while let Some(found) = section[pos..].find("cost.") {
            let start = pos + found;
            pos = start + "cost.".len();
            // Only a standalone token starts a metric name — skip
            // `deepeye-cost.` and similar.
            if start > 0
                && section[..start]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || "_-.".contains(c))
            {
                continue;
            }
            let rest = &section[pos..];
            let word_len = rest
                .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                .unwrap_or(rest.len());
            if word_len == 0 {
                continue; // `cost.*` wildcards and sentence-final dots
            }
            let token = &section[start..pos + word_len];
            if !deepeye_obs::metrics::is_counter(token) {
                let offset = (section_start + start).min(design.len());
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: (design[..offset].matches('\n').count() + 1) as u32,
                    code: "A0014",
                    message: format!(
                        "DESIGN.md §12 names cost metric {token:?}, which is not in the registry"
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Baseline;

    fn run_rule(code: &str, files: Vec<(&str, &str)>, design: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(files, design);
        let analysis = Analysis::build(&ws);
        RULES
            .iter()
            .find(|r| r.code == code)
            .map(|r| (r.check)(&ws, &analysis))
            .unwrap_or_default()
    }

    #[test]
    fn a0001_flags_instant_outside_obs() {
        let hits = run_rule(
            "A0001",
            vec![
                (
                    "crates/core/src/x.rs",
                    "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
                ),
                ("crates/obs/src/clock.rs", "use std::time::Instant;"),
                (
                    "crates/core/src/y.rs",
                    "// Instant only in a comment\nfn g() {}",
                ),
            ],
            "",
        );
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|d| d.file == "crates/core/src/x.rs"));
    }

    #[test]
    fn a0001_allows_tests() {
        let hits = run_rule(
            "A0001",
            vec![(
                "crates/core/src/x.rs",
                "#[cfg(test)]\nmod tests { use std::time::Instant; }",
            )],
            "",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn a0002_flags_unguarded_and_accepts_guarded() {
        let src = r#"
fn bad(prov: &Provenance) {
    prov.record("id", |e| e.x = 1);
}
fn good(prov: &Provenance) {
    if prov.is_enabled() {
        prov.record("id", |e| e.x = 1);
    }
}
fn named(prov: &Provenance) {
    let explaining = prov.is_enabled();
    if explaining {
        prov.bump(|c| c.n += 1);
    }
}
fn early(prov: &Provenance) {
    if !prov.is_enabled() {
        return;
    }
    prov.record_rejected("id", Outcome::X, |e| e.x = 1);
}
fn arm(prov: &Provenance, m: Mode) {
    match m {
        Mode::A if prov.is_enabled() => {
            prov.record("id", |e| e.x = 1);
        }
        _ => {}
    }
}
"#;
        let hits = run_rule("A0002", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn a0002_negated_guard_block_is_not_guarded() {
        let src = r#"
fn f(prov: &Provenance) {
    if !prov.is_enabled() {
        prov.bump(|c| c.n += 1);
        return;
    }
}
"#;
        let hits = run_rule("A0002", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn a0002_observer_allocating_args() {
        let src = r#"
fn f(obs: &Observer, name: &str) {
    obs.incr("plain.name", 1);
    obs.record_many_ns(&format!("dyn.{name}"), &[1]);
}
"#;
        let hits = run_rule("A0002", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn a0003_lock_across_callback() {
        let src = r#"
fn bad(state: &Mutex<u64>, obs: &Observer) {
    let guard = state.lock().unwrap_or_else(|p| p.into_inner());
    obs.incr("exec.ok", *guard);
}
fn good(state: &Mutex<u64>, obs: &Observer) {
    let n = {
        let guard = state.lock().unwrap_or_else(|p| p.into_inner());
        *guard
    };
    obs.incr("exec.ok", n);
}
"#;
        let hits = run_rule("A0003", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn a0004_detects_drift() {
        let sema = r#"
//! | E0001 | SELECT | x missing |
//! | E0002 | SELECT | y missing |
impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A => "E0001",
            Code::B => "E0003",
        }
    }
}
"#;
        let hits = run_rule(
            "A0004",
            vec![("crates/query/src/sema.rs", sema)],
            "codes `E0001` and `E0003` plus phantom `E0004`.",
        );
        let msgs: Vec<_> = hits.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("E0003") && m.contains("doc table")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("E0002") && m.contains("never emits")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("E0004")), "{msgs:?}");
    }

    #[test]
    fn a0004_flags_duplicate_codes() {
        let sema = "//! | E0001 | SELECT | x |\nfn f() { let a = \"E0001\"; let b = \"E0001\"; }";
        let hits = run_rule("A0004", vec![("crates/query/src/sema.rs", sema)], "`E0001`");
        assert!(
            hits.iter().any(|d| d.message.contains("unique")),
            "{hits:?}"
        );
    }

    #[test]
    fn a0005_flags_unregistered_metric() {
        let src = r#"fn f(obs: &Observer) { obs.incr("exec.okay", 1); obs.incr("exec.ok", 1); }"#;
        let hits = run_rule("A0005", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("exec.okay"));
    }

    #[test]
    fn a0005_checks_kind_not_just_name() {
        // A histogram name passed to a counter call is a category error.
        let src = r#"fn f(obs: &Observer) { obs.incr("exec.query_ns", 1); }"#;
        let hits = run_rule("A0005", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn a0006_flags_free_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let hits = run_rule("A0006", vec![("crates/core/src/x.rs", src)], "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn clean_sources_produce_no_findings() {
        let ws = Workspace::from_sources(
            vec![(
                "crates/core/src/x.rs",
                r#"
fn f(obs: &Observer, prov: &Provenance) {
    obs.incr("exec.ok", 1);
    if prov.is_enabled() {
        prov.record("id", |e| e.x = 1);
    }
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
"#,
            )],
            "",
        );
        let outcome = crate::lint::run(&ws, &Baseline::default());
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn baseline_suppresses_and_reports_stale() {
        let ws = Workspace::from_sources(
            vec![("crates/core/src/x.rs", "use std::time::Instant;")],
            "",
        );
        let baseline =
            Baseline::parse("A0001 crates/core/src/x.rs\nA0006 crates/core/src/gone.rs\n")
                .expect("parses");
        let outcome = crate::lint::run(&ws, &baseline);
        assert!(outcome.violations.is_empty());
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.stale, vec!["A0006 crates/core/src/gone.rs"]);
    }

    /// A perf-layer fixture wiring every registered `bench.*` histogram.
    const PERF_FIXTURE: &str = r#"
pub fn metric(stage: Stage) -> &'static str {
    match stage {
        Stage::Enumerate => "bench.enumerate_ns",
        Stage::Execute => "bench.execute_ns",
        Stage::Recognize => "bench.recognize_ns",
        Stage::Rank => "bench.rank_ns",
        Stage::TopK => "bench.topk_ns",
        Stage::Analyze => "bench.analyze_ns",
    }
}
"#;

    /// A DESIGN.md fixture documenting every registered `bench.*` histogram.
    const DESIGN_FIXTURE: &str = "## 9. Performance observability\n\
        `bench.enumerate_ns` `bench.execute_ns` `bench.recognize_ns` \
        `bench.rank_ns` `bench.topk_ns` `bench.analyze_ns`\n";

    #[test]
    fn a0007_clean_when_all_three_agree() {
        let hits = run_rule(
            "A0007",
            vec![("crates/bench/src/perf.rs", PERF_FIXTURE)],
            DESIGN_FIXTURE,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0007_flags_unregistered_literal_in_harness() {
        let hits = run_rule(
            "A0007",
            vec![
                ("crates/bench/src/perf.rs", PERF_FIXTURE),
                (
                    "crates/bench/src/bin/harness.rs",
                    r#"fn f(obs: &Observer) { obs.record_many_ns("bench.enumarate_ns", &[1]); }"#,
                ),
            ],
            DESIGN_FIXTURE,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/bench/src/bin/harness.rs");
        assert!(hits[0].message.contains("bench.enumarate_ns"));
    }

    #[test]
    fn a0007_flags_unwired_registry_entry() {
        let reduced = PERF_FIXTURE.replace("\"bench.topk_ns\"", "\"bench.rank_ns\"");
        let hits = run_rule(
            "A0007",
            vec![("crates/bench/src/perf.rs", reduced.as_str())],
            DESIGN_FIXTURE,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/bench/src/perf.rs");
        assert!(hits[0].message.contains("bench.topk_ns"));
    }

    #[test]
    fn a0007_flags_design_doc_drift_both_ways() {
        // Docs miss a registered metric.
        let missing = DESIGN_FIXTURE.replace("`bench.rank_ns` ", "");
        let hits = run_rule(
            "A0007",
            vec![("crates/bench/src/perf.rs", PERF_FIXTURE)],
            &missing,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert!(hits[0].message.contains("not documented"));
        // Docs invent an unregistered metric.
        let invented = format!("{DESIGN_FIXTURE}\nAlso `bench.bogus_ns` is great.\n");
        let hits = run_rule(
            "A0007",
            vec![("crates/bench/src/perf.rs", PERF_FIXTURE)],
            &invented,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("bench.bogus_ns"));
    }

    #[test]
    fn a0007_ignores_prefixed_and_non_metric_tokens() {
        let prose = format!(
            "{DESIGN_FIXTURE}\nThe microbench.speed_ns suite and the bench. \
             directory are unrelated; deepeye-bench.total_ns too.\n"
        );
        let hits = run_rule(
            "A0007",
            vec![("crates/bench/src/perf.rs", PERF_FIXTURE)],
            &prose,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0007_skips_partial_workspaces() {
        let hits = run_rule(
            "A0007",
            vec![("crates/core/src/x.rs", "fn f() {}")],
            "whatever `bench.bogus_ns`",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    /// A telemetry.rs fixture recording every registered recorder metric.
    const TELEMETRY_FIXTURE: &str = r#"
fn account(state: &mut State, drops: u64) {
    *state.counters.entry("obs.spans_dropped").or_insert(0) += drops;
    *state.counters.entry("obs.stall").or_insert(0) += 1;
    *state.counters.entry("telemetry.ticks").or_insert(0) += 1;
}
"#;

    /// A DESIGN.md §10 fixture documenting every recorder metric and
    /// every telemetry schema field.
    fn recorder_design() -> String {
        let fields = deepeye_obs::TELEMETRY_FIELDS
            .iter()
            .map(|f| format!("`{f}`"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "## 10. Flight recorder\nMetrics: obs.spans_dropped obs.stall telemetry.ticks\n\
             Fields: {fields}\n\n## 11. Testing strategy\nno recorder names here\n"
        )
    }

    #[test]
    fn a0013_clean_when_all_agree() {
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &recorder_design(),
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0013_flags_unregistered_recorder_literal() {
        let hits = run_rule(
            "A0013",
            vec![
                ("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE),
                (
                    "crates/obs/src/watchdog.rs",
                    r#"fn f(obs: &Observer) { obs.incr("obs.stal", 1); }"#,
                ),
            ],
            &recorder_design(),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/obs/src/watchdog.rs");
        assert!(hits[0].message.contains("obs.stal"));
    }

    #[test]
    fn a0013_flags_unrecorded_registry_entry() {
        let reduced = TELEMETRY_FIXTURE.replace("\"obs.stall\"", "\"obs.spans_dropped\"");
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", reduced.as_str())],
            &recorder_design(),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/obs/src/metrics.rs");
        assert!(hits[0].message.contains("obs.stall"));
    }

    #[test]
    fn a0013_flags_design_drift_both_ways() {
        // §10 misses a registered recorder metric.
        let missing = recorder_design().replace("obs.stall ", "");
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &missing,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert!(hits[0].message.contains("not documented"));
        // §10 invents an unregistered recorder metric.
        let invented =
            recorder_design().replace("Fields:", "Also telemetry.tocks is great.\nFields:");
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &invented,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("telemetry.tocks"));
    }

    #[test]
    fn a0013_requires_schema_fields_documented() {
        let missing = recorder_design().replace("`interval_ns` ", "");
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &missing,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("interval_ns"));
    }

    #[test]
    fn a0013_ignores_wildcards_and_prefixed_tokens() {
        let prose = recorder_design().replace(
            "Fields:",
            "The obs.* and telemetry.* namespaces belong to deepeye-obs. Sections end with obs.\nFields:",
        );
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &prose,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0013_skips_recorder_names_outside_section_10() {
        // Names after the §11 heading are out of scope for the doc scan.
        let design = format!(
            "{}More prose naming telemetry.bogus after the section.\n",
            recorder_design()
        );
        let hits = run_rule(
            "A0013",
            vec![("crates/obs/src/telemetry.rs", TELEMETRY_FIXTURE)],
            &design,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0013_skips_partial_workspaces() {
        let hits = run_rule(
            "A0013",
            vec![("crates/core/src/x.rs", "fn f() {}")],
            "whatever telemetry.bogus",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    /// A health.rs fixture recording every registered health metric.
    const HEALTH_FIXTURE: &str = r#"
fn account(state: &mut State) {
    *state.counters.entry("health.ticks").or_insert(0) += 1;
    *state.counters.entry("health.ingest_errors").or_insert(0) += 1;
    *state.counters.entry("health.evaluations").or_insert(0) += 1;
}
"#;

    /// A DESIGN.md §13 fixture documenting every health metric and every
    /// health document schema field.
    fn health_design() -> String {
        let fields = deepeye_obs::HEALTH_FIELDS
            .iter()
            .map(|f| format!("`{f}`"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "## 12. Cost profiler\nno health names here\n\n\
             ## 13. Health engine\nMetrics: health.ticks health.ingest_errors \
             health.evaluations\nFields: {fields}\n"
        )
    }

    #[test]
    fn a0020_clean_when_all_agree() {
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", HEALTH_FIXTURE)],
            &health_design(),
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0020_flags_unregistered_health_literal() {
        let hits = run_rule(
            "A0020",
            vec![
                ("crates/obs/src/health.rs", HEALTH_FIXTURE),
                (
                    "crates/obs/src/observer.rs",
                    r#"fn f(obs: &Observer) { obs.incr("health.tick", 1); }"#,
                ),
            ],
            &health_design(),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/obs/src/observer.rs");
        assert!(hits[0].message.contains("health.tick"));
    }

    #[test]
    fn a0020_flags_unrecorded_registry_entry() {
        let reduced = HEALTH_FIXTURE.replace("\"health.evaluations\"", "\"health.ticks\"");
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", reduced.as_str())],
            &health_design(),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/obs/src/metrics.rs");
        assert!(hits[0].message.contains("health.evaluations"));
    }

    #[test]
    fn a0020_flags_design_drift_both_ways() {
        // §13 misses a registered health metric.
        let missing = health_design().replace("health.ingest_errors ", "");
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", HEALTH_FIXTURE)],
            &missing,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert!(hits[0].message.contains("not documented"));
        // §13 invents an unregistered health metric.
        let invented = health_design().replace("Fields:", "Also health.tocks is great.\nFields:");
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", HEALTH_FIXTURE)],
            &invented,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "DESIGN.md");
        assert!(hits[0].message.contains("health.tocks"));
    }

    #[test]
    fn a0020_requires_schema_fields_documented() {
        let missing = health_design().replace("`detector` ", "");
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", HEALTH_FIXTURE)],
            &missing,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("detector"));
    }

    #[test]
    fn a0020_ignores_wildcards_and_section_12_names() {
        // `health.*` wildcards and names before the §13 heading are out
        // of scope for the doc scan.
        let prose = health_design().replace(
            "no health names here",
            "health.bogus is out of scope; the health.* namespace belongs to deepeye-obs",
        );
        let with_wildcard = prose.replace(
            "Fields:",
            "The health.* namespace ends sentences with health.\nFields:",
        );
        let hits = run_rule(
            "A0020",
            vec![("crates/obs/src/health.rs", HEALTH_FIXTURE)],
            &with_wildcard,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0020_skips_partial_workspaces() {
        let hits = run_rule(
            "A0020",
            vec![("crates/core/src/x.rs", "fn f() {}")],
            "whatever health.bogus",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    const EXEC_FIXTURE: &str = r#"
fn run<C: CostAcc>(cost: &mut C) {
    cost.add(Op::RowsScanned, 1);
    cost.add(Op::BinComputations, 1);
    cost.add(Op::GroupProbes, 1);
    cost.add(Op::GroupInserts, 1);
    cost.add(Op::AggUpdates, 1);
    cost.add(Op::SortComparisons, 1);
    cost.add(Op::OutputRows, 1);
}
"#;

    const FLUSH_FIXTURE: &str = r#"
fn flush(obs: &Observer, total: &OpCosts) {
    if !obs.is_enabled() {
        return;
    }
    obs.incr("cost.rows_scanned", 1);
    obs.incr("cost.bin_computations", 1);
    obs.incr("cost.group_probes", 1);
    obs.incr("cost.group_inserts", 1);
    obs.incr("cost.agg_updates", 1);
    obs.incr("cost.sort_comparisons", 1);
    obs.incr("cost.output_rows", 1);
}
"#;

    fn cost_design() -> String {
        let ops = deepeye_obs::Op::ALL
            .into_iter()
            .map(|op| format!("`{}`", op.name()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "## 12. Cost profiling\n\nOperators {ops}, flushed into \
             cost.rows_scanned and friends.\n\n## 13. Next\n"
        )
    }

    #[test]
    fn a0014_clean_when_all_layers_agree() {
        let hits = run_rule(
            "A0014",
            vec![
                ("crates/query/src/exec.rs", EXEC_FIXTURE),
                ("crates/query/src/batch.rs", "fn b() {}"),
                ("crates/core/src/parallel.rs", FLUSH_FIXTURE),
            ],
            &cost_design(),
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0014_flags_unregistered_cost_literal() {
        let flush = FLUSH_FIXTURE.replace("cost.group_probes", "cost.group_probez");
        let hits = run_rule(
            "A0014",
            vec![
                ("crates/query/src/exec.rs", EXEC_FIXTURE),
                ("crates/core/src/parallel.rs", flush.as_str()),
            ],
            &cost_design(),
        );
        // The typo literal is unregistered AND the real counter is now
        // never flushed — both directions fire.
        assert!(
            hits.iter().any(|d| d.message.contains("cost.group_probez")
                && d.file == "crates/core/src/parallel.rs"),
            "{hits:?}"
        );
        assert!(
            hits.iter()
                .any(|d| d.message.contains("never flushed")
                    && d.message.contains("cost.group_probes")),
            "{hits:?}"
        );
    }

    #[test]
    fn a0014_flags_uncharged_operator() {
        let exec = EXEC_FIXTURE.replace("cost.add(Op::SortComparisons, 1);", "");
        let hits = run_rule(
            "A0014",
            vec![
                ("crates/query/src/exec.rs", exec.as_str()),
                ("crates/core/src/parallel.rs", FLUSH_FIXTURE),
            ],
            &cost_design(),
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("Op::SortComparisons"), "{hits:?}");
        assert!(hits[0].message.contains("never charged"), "{hits:?}");
    }

    #[test]
    fn a0014_flags_design_drift_both_ways() {
        let design = cost_design()
            .replace("`sort_comparisons`", "`sort_compares`")
            .replace("and friends", "and the phantom cost.hash_joins");
        let hits = run_rule(
            "A0014",
            vec![
                ("crates/query/src/exec.rs", EXEC_FIXTURE),
                ("crates/core/src/parallel.rs", FLUSH_FIXTURE),
            ],
            &design,
        );
        assert!(
            hits.iter()
                .any(|d| d.message.contains("sort_comparisons")
                    && d.message.contains("not documented")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|d| d.message.contains("cost.hash_joins")
                && d.message.contains("not in the registry")),
            "{hits:?}"
        );
    }

    #[test]
    fn a0014_ignores_prefixed_tokens_and_wildcards() {
        // The prefixed token and wildcard sit inside §12 itself.
        let design = cost_design().replace(
            "\n\n## 13. Next\n",
            "\nProse naming deepeye-cost.bogus and a bare cost.* wildcard.\n\n## 13. Next\n",
        );
        let hits = run_rule(
            "A0014",
            vec![
                ("crates/query/src/exec.rs", EXEC_FIXTURE),
                ("crates/core/src/parallel.rs", FLUSH_FIXTURE),
            ],
            &design,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0014_skips_partial_workspaces() {
        let hits = run_rule(
            "A0014",
            vec![("crates/core/src/x.rs", "fn f() {}")],
            "whatever cost.bogus",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
