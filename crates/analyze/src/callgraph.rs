//! The workspace call graph and the shared `Analysis` context.
//!
//! [`Analysis::build`] runs once per lint invocation: it extracts every
//! function definition (via [`crate::cfg`]), precomputes the per-file
//! guard and loop-depth masks, and then resolves call sites to their
//! callees so the interprocedural rules (A0008–A0012) can walk chains
//! instead of single token windows.
//!
//! Resolution is heuristic — this is a lexer-level analysis, not rustc —
//! and it degrades *safely*: an unresolved call simply contributes no
//! edge, so reachability-based rules err toward silence rather than
//! noise. The heuristics, in order:
//!
//! 1. `Self::m(…)` → the enclosing `impl` type's method `m`.
//! 2. `Type::m(…)` (capitalized head) → the method `m` of `Type`.
//! 3. `path::to::f(…)` → the unique function whose qualified name ends
//!    with the written path (crate names normalized: `deepeye_core` →
//!    `core`, `crate` → the caller's crate).
//! 4. `recv.m(…)` → the receiver's type from `self`, a typed parameter,
//!    or a `let recv = Type::…` / `let recv: Type` local, then `Type::m`.
//! 5. A bare `f(…)` or method with unknown receiver → the unique
//!    workspace function of that name, unless the name is a common std
//!    method (`push`, `len`, `clone`, …) where "unique in workspace"
//!    proves nothing.

use crate::absint::{condense, BitSet, CondensedGraph};
use crate::cfg::{self, FuncDef};
use crate::effects::EffectSummary;
use crate::lexer::Token;
use crate::lint::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in [`Analysis::funcs`].
    pub caller: usize,
    /// Resolved callee (index into [`Analysis::funcs`]), when a
    /// heuristic matched.
    pub callee: Option<usize>,
    /// The callee name as written at the site.
    pub callee_name: String,
    /// File index of the site (same as the caller's file).
    pub file: usize,
    /// 1-based line of the callee-name token.
    pub line: u32,
    /// Token index of the callee-name token.
    pub tok: usize,
    /// The site sits behind an `is_enabled()` guard.
    pub guarded: bool,
    /// Loop-nesting depth at the site (0 = not in a loop).
    pub loop_depth: u32,
}

/// Everything the interprocedural rules need, built once per run.
pub struct Analysis {
    pub funcs: Vec<FuncDef>,
    pub calls: Vec<CallSite>,
    /// Per function: call-site indices *inside* it.
    pub calls_from: Vec<Vec<usize>>,
    /// Per function: call-site indices that *target* it.
    pub callers_of: Vec<Vec<usize>>,
    /// Per file: per-token `is_enabled()` guard mask.
    pub guard_masks: Vec<Vec<bool>>,
    /// Per file: per-token loop-nesting depth.
    pub loop_depths: Vec<Vec<u32>>,
    /// Per file: per-token index of the innermost enclosing function.
    owner: Vec<Vec<Option<usize>>>,
    /// SCC-condensed reachability over resolved product calls, shared
    /// by every interprocedural rule (A0009, A0011, A0015, A0017).
    pub reach: Reachability,
    /// Per-function effect summaries from the abstract-interpretation
    /// pass (see [`crate::effects`]), indexed like `funcs`.
    pub effects: Vec<EffectSummary>,
}

/// The one SCC-condensed reachability relation over the product call
/// graph. Built once per [`Analysis::build`]; `reaches` is then two
/// component lookups and one bit test, so rules no longer re-walk the
/// graph per entry point.
pub struct Reachability {
    /// Tarjan condensation of the product call graph (components in
    /// reverse topological order — callees before callers).
    pub scc: CondensedGraph,
    /// Per component: reachable components (including itself).
    reach: Vec<BitSet>,
}

impl Reachability {
    /// A relation over the empty graph (placeholder during build).
    pub fn empty() -> Reachability {
        Reachability {
            scc: condense(0, &[]),
            reach: Vec::new(),
        }
    }

    /// Condense the resolved product call edges of `a`.
    pub fn build(ws: &Workspace, a: &Analysis) -> Reachability {
        let n = a.funcs.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &a.calls {
            let Some(callee) = c.callee else { continue };
            if ws.files[c.file].is_product(c.tok)
                && !a.funcs[c.caller].is_test
                && !a.funcs[callee].is_test
            {
                succs[c.caller].push(callee);
            }
        }
        for out in &mut succs {
            out.sort_unstable();
            out.dedup();
        }
        let scc = condense(n, &succs);
        let reach = scc.reachable_sets();
        Reachability { scc, reach }
    }

    /// The component of function `f`.
    pub fn component(&self, f: usize) -> usize {
        self.scc.comp_of.get(f).copied().unwrap_or(0)
    }

    /// `from` can reach `to` through resolved product calls (reflexive:
    /// every function reaches itself).
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        match (self.scc.comp_of.get(from), self.scc.comp_of.get(to)) {
            (Some(&a), Some(&b)) => self.reach.get(a).is_some_and(|set| set.contains(b)),
            _ => false,
        }
    }

    /// `a` and `b` sit in the same strongly-connected component.
    pub fn same_component(&self, a: usize, b: usize) -> bool {
        self.scc.comp_of.get(a).is_some() && self.component(a) == self.component(b)
    }
}

/// A witness chain of call sites from `from` toward `to` over resolved
/// product calls, following the precomputed reachability relation and
/// capped at the first cycle: the walk never re-enters a component, so
/// recursive groups contribute one representative step instead of an
/// unbounded spiral. Returns call-site indices; may stop short of `to`
/// when the only remaining path loops back through a visited component.
pub fn product_chain(ws: &Workspace, a: &Analysis, from: usize, to: usize) -> Vec<usize> {
    let mut chain = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut cur = from;
    seen.insert(a.reach.component(cur));
    while cur != to {
        let mut advanced = false;
        for &ci in &a.calls_from[cur] {
            let c = &a.calls[ci];
            let Some(callee) = c.callee else { continue };
            if !ws.files[c.file].is_product(c.tok) || a.funcs[callee].is_test {
                continue;
            }
            if callee != to {
                if !a.reach.reaches(callee, to) {
                    continue;
                }
                if seen.contains(&a.reach.component(callee)) {
                    continue;
                }
            }
            chain.push(ci);
            seen.insert(a.reach.component(callee));
            cur = callee;
            advanced = true;
            break;
        }
        if !advanced {
            break;
        }
    }
    chain
}

/// Methods so common in std that a unique *workspace* definition of the
/// same name proves nothing about a call with an unknown receiver.
const COMMON_METHODS: &[&str] = &[
    "abs",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drop",
    "ends_with",
    "eq",
    "extend",
    "fetch_add",
    "fetch_max",
    "fetch_min",
    "fetch_sub",
    "filter",
    "find",
    "fmt",
    "fold",
    "from",
    "get",
    "hash",
    "insert",
    "into",
    "is_empty",
    "iter",
    "join",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "parse",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "replace",
    "reserve",
    "sort",
    "split",
    "starts_with",
    "store",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "with_capacity",
    "write",
];

impl Analysis {
    /// Extract functions, masks, and the resolved call graph.
    pub fn build(ws: &Workspace) -> Analysis {
        let mut funcs: Vec<FuncDef> = Vec::new();
        let mut guard_masks: Vec<Vec<bool>> = Vec::new();
        let mut loop_depths: Vec<Vec<u32>> = Vec::new();
        let mut owner: Vec<Vec<Option<usize>>> = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let start = funcs.len();
            funcs.extend(cfg::functions_in_file(file, fi));
            guard_masks.push(cfg::guard_mask(file));
            loop_depths.push(cfg::loop_depths(&file.tokens));
            // Innermost-function ownership: outer functions are emitted
            // before the nested ones they contain, so assigning in order
            // lets inner ranges overwrite outer ones.
            let mut own = vec![None; file.tokens.len()];
            for (qi, f) in funcs.iter().enumerate().skip(start) {
                for slot in own
                    .iter_mut()
                    .take(f.body_end.min(file.tokens.len()))
                    .skip(f.body_start)
                {
                    *slot = Some(qi);
                }
            }
            owner.push(own);
        }

        // Name and type-method indices for resolution.
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in funcs.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(ty) = &f.impl_type {
                by_type_method
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }

        let mut analysis = Analysis {
            calls_from: vec![Vec::new(); funcs.len()],
            callers_of: vec![Vec::new(); funcs.len()],
            funcs,
            calls: Vec::new(),
            guard_masks,
            loop_depths,
            owner,
            reach: Reachability::empty(),
            effects: Vec::new(),
        };
        for fi in 0..ws.files.len() {
            analysis.extract_calls(ws, fi, &by_name, &by_type_method);
        }
        for (ci, c) in analysis.calls.iter().enumerate() {
            analysis.calls_from[c.caller].push(ci);
            if let Some(callee) = c.callee {
                analysis.callers_of[callee].push(ci);
            }
        }
        analysis.reach = Reachability::build(ws, &analysis);
        analysis.effects = crate::effects::summarize(ws, &analysis);
        analysis
    }

    /// The innermost function containing token `tok` of file `file`.
    pub fn func_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.owner.get(file)?.get(tok).copied().flatten()
    }

    /// The function with the given qualified name, if unique.
    pub fn by_qual(&self, qual: &str) -> Option<usize> {
        let mut hit = None;
        for (i, f) in self.funcs.iter().enumerate() {
            if f.qual == qual {
                if hit.is_some() {
                    return None;
                }
                hit = Some(i);
            }
        }
        hit
    }

    /// Call sites resolved to a workspace function.
    pub fn resolved_calls(&self) -> usize {
        self.calls.iter().filter(|c| c.callee.is_some()).count()
    }

    /// Total CFG blocks across all functions.
    pub fn block_count(&self) -> usize {
        self.funcs.iter().map(|f| f.cfg.blocks.len()).sum()
    }

    /// Total CFG successor edges across all functions.
    pub fn edge_count(&self) -> usize {
        self.funcs.iter().map(|f| f.cfg.edge_count()).sum()
    }

    fn extract_calls(
        &mut self,
        ws: &Workspace,
        fi: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
        by_type_method: &BTreeMap<(String, String), Vec<usize>>,
    ) {
        let file = &ws.files[fi];
        let toks = &file.tokens;
        // Per-function local types are lazily built on first use.
        let mut local_types: BTreeMap<usize, BTreeMap<String, String>> = BTreeMap::new();
        for (i, tok) in toks.iter().enumerate() {
            let Some(caller) = self.func_at(fi, i) else {
                continue;
            };
            let site = if tok.is_punct('.') {
                self.method_call(fi, i, caller, by_name, by_type_method, &mut local_types, ws)
            } else {
                self.path_call(fi, i, caller, by_name, by_type_method, ws)
            };
            if let Some(site) = site {
                self.calls.push(site);
            }
        }
    }

    /// `recv.m(…)` at a `.` token.
    #[allow(clippy::too_many_arguments)]
    fn method_call(
        &self,
        fi: usize,
        i: usize,
        caller: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
        by_type_method: &BTreeMap<(String, String), Vec<usize>>,
        local_types: &mut BTreeMap<usize, BTreeMap<String, String>>,
        ws: &Workspace,
    ) -> Option<CallSite> {
        let toks = &ws.files[fi].tokens;
        let name = toks.get(i + 1).and_then(Token::ident)?;
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        let f = &self.funcs[caller];
        // Receiver type, best effort.
        let recv_ty: Option<String> = match toks.get(i.wrapping_sub(1)) {
            Some(prev) if prev.is_ident("self") => f.impl_type.clone(),
            Some(prev) => prev.ident().and_then(|recv| {
                f.params
                    .iter()
                    .find(|(p, _)| p == recv)
                    .map(|(_, ty)| ty.clone())
                    .filter(|ty| !ty.is_empty())
                    .or_else(|| {
                        local_types
                            .entry(caller)
                            .or_insert_with(|| local_let_types(toks, f))
                            .get(recv)
                            .cloned()
                    })
            }),
            None => None,
        };
        let callee = match recv_ty.as_deref() {
            Some(ty) => by_type_method
                .get(&(ty.to_owned(), name.to_owned()))
                .filter(|c| c.len() == 1)
                .map(|c| c[0]),
            None => self.unique_fallback(name, caller, by_name),
        };
        Some(self.site(fi, i + 1, toks[i + 1].line, caller, name, callee))
    }

    /// `f(…)`, `path::f(…)`, `Type::m(…)`, `Self::m(…)` at the
    /// callee-name ident token (the one directly before the `(`).
    fn path_call(
        &self,
        fi: usize,
        i: usize,
        caller: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
        by_type_method: &BTreeMap<(String, String), Vec<usize>>,
        ws: &Workspace,
    ) -> Option<CallSite> {
        let toks = &ws.files[fi].tokens;
        let name = toks[i].ident()?;
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        // Not a method call (handled at the `.`), not a definition, not a
        // macro (`name!(` never lands here — the `!` sits between).
        if toks
            .get(i.wrapping_sub(1))
            .is_some_and(|t| t.is_punct('.') || t.is_ident("fn"))
        {
            return None;
        }
        if cfg::is_keyword(name) {
            return None;
        }
        // Collect the `::`-separated path leading up to the name.
        let mut segs: Vec<&str> = vec![name];
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].ident().is_some()
        {
            segs.push(toks[j - 3].ident().unwrap_or_default());
            j -= 3;
        }
        segs.reverse();
        let f = &self.funcs[caller];
        let callee = if segs.len() >= 2 {
            let head = segs[segs.len() - 2];
            if head == "Self" {
                f.impl_type.as_deref().and_then(|ty| {
                    by_type_method
                        .get(&(ty.to_owned(), name.to_owned()))
                        .filter(|c| c.len() == 1)
                        .map(|c| c[0])
                })
            } else if head.chars().next().is_some_and(char::is_uppercase) {
                by_type_method
                    .get(&(head.to_owned(), name.to_owned()))
                    .filter(|c| c.len() == 1)
                    .map(|c| c[0])
            } else {
                self.resolve_module_path(&segs, caller, by_name)
            }
        } else {
            self.resolve_free(name, caller, by_name)
        };
        Some(self.site(fi, i, toks[i].line, caller, name, callee))
    }

    /// Resolve `path::to::f` by qualified-name suffix match, after
    /// normalizing crate-name segments (`deepeye_core` → `core`,
    /// `crate` → the caller's own crate).
    fn resolve_module_path(
        &self,
        segs: &[&str],
        caller: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
    ) -> Option<usize> {
        let caller_crate = self.funcs[caller]
            .qual
            .split("::")
            .next()
            .unwrap_or_default()
            .to_owned();
        let norm: Vec<String> = segs
            .iter()
            .map(|s| {
                if *s == "crate" {
                    caller_crate.clone()
                } else if let Some(rest) = s.strip_prefix("deepeye_") {
                    rest.to_owned()
                } else {
                    (*s).to_owned()
                }
            })
            .collect();
        let suffix = norm.join("::");
        let name = segs.last()?;
        let cands = by_name.get(*name)?;
        let matches: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let q = &self.funcs[c].qual;
                q == &suffix || q.ends_with(&format!("::{suffix}"))
            })
            .collect();
        match matches.len() {
            1 => Some(matches[0]),
            0 => {
                // The written path may skip intermediate modules
                // (`deepeye_core::prune(…)` re-exported from a submodule):
                // fall back to crate + name agreement when unique.
                let krate = norm.first()?;
                let loose: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let f = &self.funcs[c];
                        f.impl_type.is_none() && f.qual.starts_with(&format!("{krate}::"))
                    })
                    .collect();
                (loose.len() == 1).then(|| loose[0])
            }
            _ => None,
        }
    }

    /// Resolve a bare `f(…)`: same file first, then unique in the
    /// caller's crate, then unique in the workspace.
    fn resolve_free(
        &self,
        name: &str,
        caller: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
    ) -> Option<usize> {
        let cands = by_name.get(name)?;
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.funcs[c].impl_type.is_none())
            .collect();
        let caller_file = self.funcs[caller].file;
        let same_file: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.funcs[c].file == caller_file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        let caller_crate = self.funcs[caller].qual.split("::").next().unwrap_or("");
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.funcs[c].qual.starts_with(&format!("{caller_crate}::")))
            .collect();
        if same_crate.len() == 1 {
            return Some(same_crate[0]);
        }
        (free.len() == 1).then(|| free[0])
    }

    /// Unique-name fallback for method calls with an unknown receiver,
    /// restricted to the caller's own crate: cross-crate calls are
    /// written with paths or typed receivers, so a lone same-name
    /// function in some *other* crate (e.g. the loom-lite model's
    /// std-mirroring methods) proves nothing.
    fn unique_fallback(
        &self,
        name: &str,
        caller: usize,
        by_name: &BTreeMap<String, Vec<usize>>,
    ) -> Option<usize> {
        if COMMON_METHODS.contains(&name) {
            return None;
        }
        let caller_crate = self.funcs[caller].qual.split("::").next().unwrap_or("");
        let cands: Vec<usize> = by_name
            .get(name)?
            .iter()
            .copied()
            .filter(|&c| self.funcs[c].qual.starts_with(&format!("{caller_crate}::")))
            .collect();
        (cands.len() == 1).then(|| cands[0])
    }

    fn site(
        &self,
        fi: usize,
        name_tok: usize,
        line: u32,
        caller: usize,
        name: &str,
        callee: Option<usize>,
    ) -> CallSite {
        CallSite {
            caller,
            callee,
            callee_name: name.to_owned(),
            file: fi,
            line,
            tok: name_tok,
            guarded: self.guard_masks[fi].get(name_tok).copied().unwrap_or(false),
            loop_depth: self.loop_depths[fi].get(name_tok).copied().unwrap_or(0),
        }
    }
}

/// `let [mut] name: Type` and `let [mut] name = Type::…` bindings in a
/// function body.
fn local_let_types(toks: &[Token], f: &FuncDef) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let range = f.body_range();
    let mut i = range.start;
    while i < range.end.min(toks.len()) {
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = toks.get(k).and_then(Token::ident) {
                // `let name: Type` — annotated.
                if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(ty) = toks.get(k + 2).and_then(Token::ident) {
                        if ty.chars().next().is_some_and(char::is_uppercase) {
                            out.insert(name.to_owned(), ty.to_owned());
                        }
                    }
                }
                // `let name = Type::…` — constructor-style.
                if toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
                    if let Some(ty) = toks.get(k + 2).and_then(Token::ident) {
                        if ty.chars().next().is_some_and(char::is_uppercase)
                            && toks.get(k + 3).is_some_and(|t| t.is_punct(':'))
                            && toks.get(k + 4).is_some_and(|t| t.is_punct(':'))
                        {
                            out.insert(name.to_owned(), ty.to_owned());
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Workspace;

    fn build(files: Vec<(&str, &str)>) -> Analysis {
        Analysis::build(&Workspace::from_sources(files, ""))
    }

    fn edge(a: &Analysis, caller: &str, callee: &str) -> bool {
        a.calls.iter().any(|c| {
            a.funcs[c.caller].qual == caller
                && c.callee.is_some_and(|idx| a.funcs[idx].qual == callee)
        })
    }

    #[test]
    fn resolves_free_and_path_calls() {
        let a = build(vec![
            (
                "crates/core/src/alpha.rs",
                "pub fn entry() { helper(); crate::beta::shared(); }\nfn helper() {}",
            ),
            ("crates/core/src/beta.rs", "pub fn shared() {}"),
        ]);
        assert!(edge(&a, "core::alpha::entry", "core::alpha::helper"));
        assert!(edge(&a, "core::alpha::entry", "core::beta::shared"));
    }

    #[test]
    fn resolves_cross_crate_paths() {
        let a = build(vec![
            (
                "crates/query/src/plan.rs",
                "pub fn plan() { deepeye_core::rank::score(); }",
            ),
            ("crates/core/src/rank.rs", "pub fn score() {}"),
        ]);
        assert!(edge(&a, "query::plan::plan", "core::rank::score"));
    }

    #[test]
    fn resolves_self_and_type_method_calls() {
        let src = r#"
struct Widget;
impl Widget {
    pub fn make() -> Widget { Self::setup(); Widget }
    fn setup() {}
    pub fn run(&self) { self.step(); Widget::setup(); }
    fn step(&self) {}
}
"#;
        let a = build(vec![("crates/core/src/w.rs", src)]);
        assert!(edge(&a, "core::w::Widget::make", "core::w::Widget::setup"));
        assert!(edge(&a, "core::w::Widget::run", "core::w::Widget::step"));
        assert!(edge(&a, "core::w::Widget::run", "core::w::Widget::setup"));
    }

    #[test]
    fn resolves_trait_method_through_typed_receiver() {
        let src = r#"
struct Sink;
trait Emit {
    fn emit(&self);
}
impl Emit for Sink {
    fn emit(&self) {}
}
pub fn drive(sink: &Sink) { sink.emit(); }
"#;
        let a = build(vec![("crates/core/src/s.rs", src)]);
        assert!(
            edge(&a, "core::s::drive", "core::s::Sink::emit"),
            "calls: {:?}",
            a.calls
                .iter()
                .map(|c| (&a.funcs[c.caller].qual, &c.callee_name, c.callee))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn resolves_local_let_receiver() {
        let src = r#"
struct Engine;
impl Engine {
    pub fn fresh() -> Engine { Engine }
    pub fn go(&self) {}
}
pub fn main_loop() {
    let eng = Engine::fresh();
    eng.go();
}
"#;
        let a = build(vec![("crates/core/src/e.rs", src)]);
        assert!(edge(&a, "core::e::main_loop", "core::e::Engine::fresh"));
        assert!(edge(&a, "core::e::main_loop", "core::e::Engine::go"));
    }

    #[test]
    fn common_method_names_do_not_false_resolve() {
        let src = r#"
struct Store;
impl Store {
    pub fn len(&self) -> usize { 0 }
}
pub fn count(items: &[u32]) -> usize { items.len() }
"#;
        let a = build(vec![("crates/core/src/c.rs", src)]);
        assert!(
            !edge(&a, "core::c::count", "core::c::Store::len"),
            "a slice .len() must not resolve to Store::len"
        );
    }

    #[test]
    fn guard_and_loop_context_attach_to_sites() {
        let src = r#"
pub fn caller(prov: &Provenance) {
    if prov.is_enabled() {
        guarded_callee();
    }
    for i in 0..3 {
        looped_callee();
    }
}
fn guarded_callee() {}
fn looped_callee() {}
"#;
        let a = build(vec![("crates/core/src/g.rs", src)]);
        let g = a
            .calls
            .iter()
            .find(|c| c.callee_name == "guarded_callee")
            .expect("site found");
        assert!(g.guarded && g.loop_depth == 0);
        let l = a
            .calls
            .iter()
            .find(|c| c.callee_name == "looped_callee")
            .expect("site found");
        assert!(!l.guarded && l.loop_depth == 1);
    }
}
