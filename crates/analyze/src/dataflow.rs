//! Interprocedural rules over the workspace call graph (A0008–A0012).
//!
//! Where A0001–A0007 are single-window token matchers, these rules walk
//! the [`Analysis`] built once per run:
//!
//! * **A0008** — builds the static lock-order graph (which locks are
//!   held when other locks are acquired, transitively through calls) and
//!   reports any cycle: the classic ABBA deadlock, with the full
//!   acquisition chain as `file:line` steps.
//! * **A0009** — panic reachability: a public API in `core`/`query`/
//!   `obs` must not reach `panic!` / `.unwrap()` / `.expect()` /
//!   unguarded indexing, transitively through workspace calls.
//! * **A0010** — dropped results: `let _ = f(…)` and an unconsumed
//!   `.ok()` on a workspace call that returns `Result` swallow errors
//!   the pipeline is supposed to surface.
//! * **A0011** — allocation in a hot loop: `Vec::new` / `.push` /
//!   `.clone` / `.to_vec` / `format!` inside a loop of a function
//!   reachable from an `execute`/`top_k` entry point, unless the
//!   function participates in alloc attribution (calls the observer's
//!   `alloc` family, so the cost is measured rather than invisible).
//! * **A0012** — the interprocedural face of A0002: a helper whose
//!   record calls are lexically unguarded is clean if *every* product
//!   call site is behind an `is_enabled()` guard (directly or through a
//!   context-guarded caller); otherwise the unguarded chain is named.
//!
//! Every heuristic degrades toward silence: an unresolved call
//! contributes no edge, so these rules under-report rather than flood.

use crate::callgraph::Analysis;
use crate::lint::{Diagnostic, PathStep, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn step(file: &str, line: u32, note: String) -> PathStep {
    PathStep {
        file: file.to_owned(),
        line,
        note,
    }
}

/// Map `(file index, token index)` to the call site at that token.
fn call_index(a: &Analysis) -> BTreeMap<(usize, usize), usize> {
    a.calls
        .iter()
        .enumerate()
        .map(|(ci, c)| ((c.file, c.tok), ci))
        .collect()
}

/// Whether the call site is product code in its file.
fn product_call(ws: &Workspace, a: &Analysis, ci: usize) -> bool {
    let c = &a.calls[ci];
    ws.files[c.file].is_product(c.tok) && !a.funcs[c.caller].is_test
}

// ---------------------------------------------------------------------------
// A0008 — static lock-order graph with cycle detection.

/// One acquisition of a lock while others are held (the edge payload is
/// the witness chain establishing the order).
struct LockEdge {
    steps: Vec<PathStep>,
}

pub fn lock_order(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    // Direct acquisitions per function: (canonical lock id, line, token).
    let mut direct: Vec<Vec<(String, u32, usize)>> = vec![Vec::new(); a.funcs.len()];
    for (fi, f) in a.funcs.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let toks = &ws.files[f.file].tokens;
        for i in f.body_range() {
            if let Some(id) = lock_acquisition(ws, a, fi, i) {
                direct[fi].push((id, toks[i].line, i));
            }
        }
    }
    // Transitive lock sets: locks a call to `f` may end up acquiring.
    let mut trans: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|d| d.iter().map(|(id, _, _)| id.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..a.funcs.len() {
            for &ci in &a.calls_from[fi] {
                let Some(callee) = a.calls[ci].callee else {
                    continue;
                };
                let add: Vec<String> = trans[callee]
                    .iter()
                    .filter(|id| !trans[fi].contains(*id))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[fi].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: while A is held, B gets acquired (directly or through
    // a call). First witness per (A, B) pair wins.
    let calls_at = call_index(a);
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for (fi, f) in a.funcs.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        let toks = &file.tokens;
        // Held-lock tracking: `let`-bound guards live to the end of their
        // block, temporaries to the end of the statement (same discipline
        // as A0003).
        struct Held {
            id: String,
            line: u32,
            depth: usize,
            temp: bool,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = f.body_range().start;
        for i in f.body_range() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
                stmt_start = i + 1;
                continue;
            }
            if t.is_punct(';') {
                held.retain(|h| !h.temp);
                stmt_start = i + 1;
                continue;
            }
            if !file.is_product(i) {
                continue;
            }
            if let Some(id) = lock_acquisition(ws, a, fi, i) {
                for h in &held {
                    if h.id != id {
                        edges.entry((h.id.clone(), id.clone())).or_insert(LockEdge {
                            steps: vec![
                                step(
                                    &f.rel,
                                    h.line,
                                    format!("`{}` acquires lock `{}`", f.qual, h.id),
                                ),
                                step(&f.rel, t.line, format!("then acquires lock `{id}`")),
                            ],
                        });
                    }
                }
                let is_let = toks.get(stmt_start).is_some_and(|t| t.is_ident("let"));
                held.push(Held {
                    id,
                    line: t.line,
                    depth,
                    temp: !is_let,
                });
                continue;
            }
            if held.is_empty() {
                continue;
            }
            if let Some(&ci) = calls_at.get(&(f.file, i)) {
                let Some(callee) = a.calls[ci].callee else {
                    continue;
                };
                for b in trans[callee].iter() {
                    for h in &held {
                        if &h.id == b || edges.contains_key(&(h.id.clone(), b.clone())) {
                            continue;
                        }
                        let Some(mut chain) = acquisition_chain(ws, a, &direct, callee, b) else {
                            continue;
                        };
                        let mut steps = vec![
                            step(
                                &f.rel,
                                h.line,
                                format!("`{}` acquires lock `{}`", f.qual, h.id),
                            ),
                            step(
                                &f.rel,
                                a.calls[ci].line,
                                format!("calls `{}` with `{}` held", a.funcs[callee].qual, h.id),
                            ),
                        ];
                        steps.append(&mut chain);
                        edges.insert((h.id.clone(), b.clone()), LockEdge { steps });
                    }
                }
            }
        }
    }

    // Cycle detection over lock ids: an edge A→B with a path B→…→A is a
    // deadlock-capable order inversion. Report each cycle once (by its
    // sorted lock set).
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let adj: BTreeMap<&String, Vec<&String>> =
        edges.keys().fold(BTreeMap::new(), |mut m, (x, y)| {
            m.entry(x).or_default().push(y);
            m
        });
    for ((x, y), edge) in &edges {
        let Some(path_back) = edge_path(&adj, y, x) else {
            continue;
        };
        let mut cycle: Vec<String> = vec![x.clone()];
        cycle.extend(path_back.iter().map(|s| (*s).clone()));
        let mut key = cycle.clone();
        key.sort();
        key.dedup();
        if !reported.insert(key) {
            continue;
        }
        let mut steps = edge.steps.clone();
        let mut prev = y.clone();
        for next in &path_back[1..] {
            if let Some(e) = edges.get(&(prev.clone(), (*next).clone())) {
                steps.extend(e.steps.iter().cloned());
            }
            prev = (*next).clone();
        }
        let order: Vec<&str> = cycle.iter().map(String::as_str).collect();
        out.push(Diagnostic {
            file: steps[0].file.clone(),
            line: steps[0].line,
            code: "A0008",
            message: format!(
                "lock-order cycle {} — two threads interleaving these chains deadlock; \
                 pick one global order",
                order.join(" -> "),
            ),
            path: steps,
        });
    }
    out
}

/// Canonical lock id for a `.lock()` at the `.` token, e.g.
/// `self.inner.lock()` in an `impl Sink` → `Sink.inner`. Unknown
/// receivers (chained expressions) yield `None`.
fn lock_acquisition(ws: &Workspace, a: &Analysis, func: usize, i: usize) -> Option<String> {
    let f = &a.funcs[func];
    let toks = &ws.files[f.file].tokens;
    if !(toks[i].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
    {
        return None;
    }
    let mut segs: Vec<&str> = Vec::new();
    let mut k = i;
    while k >= 1 {
        let Some(name) = toks[k - 1].ident() else {
            break;
        };
        segs.push(name);
        if k >= 3 && toks[k - 2].is_punct('.') {
            k -= 2;
        } else {
            break;
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    let mut parts: Vec<String> = segs.iter().map(|s| (*s).to_owned()).collect();
    if parts[0] == "self" {
        parts[0] = f.impl_type.clone().unwrap_or_else(|| "Self".to_owned());
    }
    Some(parts.join("."))
}

/// Shortest call chain from `from` to a function that directly acquires
/// `lock`, rendered as path steps ending at the acquisition line.
fn acquisition_chain(
    ws: &Workspace,
    a: &Analysis,
    direct: &[Vec<(String, u32, usize)>],
    from: usize,
    lock: &str,
) -> Option<Vec<PathStep>> {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new(); // func -> call idx used
    let mut queue = VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(f) = queue.pop_front() {
        if let Some((_, line, _)) = direct[f].iter().find(|(id, _, _)| id == lock) {
            // Walk back to `from`, emitting call steps forward.
            let mut calls_rev: Vec<usize> = Vec::new();
            let mut cur = f;
            while cur != from {
                let ci = prev[&cur];
                calls_rev.push(ci);
                cur = a.calls[ci].caller;
            }
            let mut steps = Vec::new();
            for &ci in calls_rev.iter().rev() {
                let c = &a.calls[ci];
                let callee = c.callee.unwrap_or(c.caller);
                steps.push(step(
                    &a.funcs[c.caller].rel,
                    c.line,
                    format!("calls `{}`", a.funcs[callee].qual),
                ));
            }
            steps.push(step(
                &a.funcs[f].rel,
                *line,
                format!("`{}` acquires lock `{lock}`", a.funcs[f].qual),
            ));
            return Some(steps);
        }
        for &ci in &a.calls_from[f] {
            let Some(callee) = a.calls[ci].callee else {
                continue;
            };
            if ws.files[a.calls[ci].file].is_product(a.calls[ci].tok) && seen.insert(callee) {
                prev.insert(callee, ci);
                queue.push_back(callee);
            }
        }
    }
    None
}

/// BFS path (as lock ids, starting at `from`'s successor… ending at
/// `to`) through the lock-order edge graph.
fn edge_path<'a>(
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    from: &'a String,
    to: &'a String,
) -> Option<Vec<&'a String>> {
    let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<&String> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// A0009 — panic reachability from public APIs.

/// Idents whose presence in a function body suggests indexing is
/// length-guarded; unguarded-indexing detection stays forgiving because
/// the clippy wall already denies the loud panic channels.
const INDEX_GUARD_HINTS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "chunks",
    "clamp",
    "debug_assert",
    "enumerate",
    "find",
    "get",
    "is_empty",
    "iter",
    "len",
    "min",
    "position",
    "rfind",
    "windows",
    "zip",
];

/// A panic site inside a function.
struct PanicSite {
    line: u32,
    what: &'static str,
}

pub fn panic_reachability(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let calls_at = call_index(a);
    // An `.unwrap(`/`.expect(` whose callee resolves to a *workspace*
    // function is that function (e.g. a parser's own fallible `expect`
    // method), not std's panicking adapter.
    let resolved_method = |file: usize, name_tok: usize| {
        calls_at
            .get(&(file, name_tok))
            .is_some_and(|&ci| a.calls[ci].callee.is_some())
    };
    // Panic sites per function.
    let mut sites: Vec<Vec<PanicSite>> = (0..a.funcs.len()).map(|_| Vec::new()).collect();
    for (fi, f) in a.funcs.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        let toks = &file.tokens;
        let index_guarded = f.body_range().any(|i| {
            toks[i]
                .ident()
                .is_some_and(|w| INDEX_GUARD_HINTS.contains(&w))
        });
        for i in f.body_range() {
            if !file.is_product(i) {
                continue;
            }
            let t = &toks[i];
            if t.is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                sites[fi].push(PanicSite {
                    line: t.line,
                    what: "panic!",
                });
            } else if t.is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
                && !resolved_method(f.file, i + 1)
            {
                sites[fi].push(PanicSite {
                    line: t.line,
                    what: ".unwrap()",
                });
            } else if t.is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
                && !resolved_method(f.file, i + 1)
            {
                sites[fi].push(PanicSite {
                    line: t.line,
                    what: ".expect()",
                });
            } else if !index_guarded
                // `name[expr]` — but not `for x in [array literal]`.
                && t.ident().is_some_and(|w| !crate::cfg::is_keyword(w))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            {
                sites[fi].push(PanicSite {
                    line: t.line,
                    what: "indexing without a length guard",
                });
            }
        }
    }

    let mut out = Vec::new();
    // Functions that contain at least one panic site, in index order —
    // the lowest-indexed reachable carrier is the reported one.
    let carriers: Vec<usize> = (0..a.funcs.len())
        .filter(|&g| !sites[g].is_empty())
        .collect();
    for (fi, f) in a.funcs.iter().enumerate() {
        let is_entry = f.is_pub
            && !f.is_test
            && ["crates/core/src/", "crates/query/src/", "crates/obs/src/"]
                .iter()
                .any(|p| f.rel.starts_with(p));
        if !is_entry {
            continue;
        }
        // The shared SCC-condensed relation replaces the per-entry BFS:
        // one bit test per candidate carrier, then one chain walk for
        // the witness (capped at the first cycle by `product_chain`).
        let Some(target) = carriers.iter().copied().find(|&t| a.reach.reaches(fi, t)) else {
            continue;
        };
        let site = &sites[target][0];
        let mut steps = vec![step(&f.rel, f.line, format!("public API `{}`", f.qual))];
        for ci in crate::callgraph::product_chain(ws, a, fi, target) {
            let c = &a.calls[ci];
            let callee = c.callee.unwrap_or(c.caller);
            steps.push(step(
                &a.funcs[c.caller].rel,
                c.line,
                format!("calls `{}`", a.funcs[callee].qual),
            ));
        }
        steps.push(step(
            &a.funcs[target].rel,
            site.line,
            format!("panic site: {}", site.what),
        ));
        out.push(Diagnostic {
            file: f.rel.clone(),
            line: f.line,
            code: "A0009",
            message: format!(
                "public `{}` can reach {} in `{}` — return an error instead of panicking \
                 on library paths",
                f.qual, site.what, a.funcs[target].qual,
            ),
            path: steps,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// A0010 — dropped Results / swallowed errors.

pub fn dropped_results(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let calls_at = call_index(a);
    let mut out = Vec::new();
    for f in &a.funcs {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        let toks = &file.tokens;
        for i in f.body_range() {
            if !file.is_product(i) {
                continue;
            }
            // `let _ = fallible(…);`
            if toks[i].is_ident("let")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
            {
                let mut j = i + 3;
                while j < f.body_end && !toks[j].is_punct(';') {
                    if let Some(&ci) = calls_at.get(&(f.file, j)) {
                        if let Some(callee) = a.calls[ci].callee {
                            if a.funcs[callee].returns_result {
                                let cq = &a.funcs[callee].qual;
                                out.push(Diagnostic {
                                    file: f.rel.clone(),
                                    line: toks[i].line,
                                    code: "A0010",
                                    message: format!(
                                        "`let _ =` discards the Result of `{cq}` — handle or \
                                         propagate the error"
                                    ),
                                    path: vec![step(
                                        &a.funcs[callee].rel,
                                        a.funcs[callee].line,
                                        format!("`{cq}` returns Result"),
                                    )],
                                });
                                break;
                            }
                        }
                    }
                    j += 1;
                }
            }
            // `fallible(…).ok();` with the Option going nowhere.
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("ok"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                && toks.get(i + 4).is_some_and(|t| t.is_punct(';'))
            {
                // The expression before `.ok()` must end in a call: find
                // the callee-name token just before its `(`.
                let Some(open) = matching_open_paren(toks, i) else {
                    continue;
                };
                let Some(&ci) = calls_at.get(&(f.file, open.wrapping_sub(1))) else {
                    continue;
                };
                if let Some(callee) = a.calls[ci].callee {
                    if a.funcs[callee].returns_result {
                        let cq = &a.funcs[callee].qual;
                        out.push(Diagnostic {
                            file: f.rel.clone(),
                            line: toks[i].line,
                            code: "A0010",
                            message: format!(
                                "`.ok()` swallows the error from `{cq}` and drops the value — \
                                 handle or propagate it"
                            ),
                            path: vec![step(
                                &a.funcs[callee].rel,
                                a.funcs[callee].line,
                                format!("`{cq}` returns Result"),
                            )],
                        });
                    }
                }
            }
        }
    }
    out
}

/// For a `.` token directly after a `)`, the index of the matching `(`.
fn matching_open_paren(toks: &[crate::lexer::Token], dot: usize) -> Option<usize> {
    if dot == 0 || !toks[dot - 1].is_punct(')') {
        return None;
    }
    let mut depth = 0i32;
    for k in (0..dot).rev() {
        if toks[k].is_punct(')') {
            depth += 1;
        } else if toks[k].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// A0011 — allocation inside hot loops, uncovered by alloc attribution.

const OBS_ALLOC_METHODS: &[&str] = &["alloc", "alloc_many", "alloc_release"];

pub fn hot_loop_allocations(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    // A function participates in alloc attribution when it records into
    // the observer's alloc channel itself.
    let attributed: Vec<bool> = a
        .funcs
        .iter()
        .map(|f| {
            let toks = &ws.files[f.file].tokens;
            f.body_range().any(|i| {
                toks[i].is_punct('.')
                    && toks
                        .get(i + 1)
                        .and_then(crate::lexer::Token::ident)
                        .is_some_and(|m| OBS_ALLOC_METHODS.contains(&m))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            })
        })
        .collect();

    // BFS the uncovered region from *observed* execute/top_k entry
    // points — the ones handed an `Observer`, where attribution is
    // possible. The region is barrier-aware (it stops at attributed
    // functions), which the global `a.reach` relation cannot express, so
    // the walk stays; but it stores only the BFS tree (`prev`), and the
    // witness chain is reconstructed lazily — and only — for functions
    // that actually diagnose, instead of cloning a growing step vector
    // into every reached node. Unobserved variants are thin
    // conveniences; their cost is measured when the harness drives the
    // observed wrappers.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (fi, f) in a.funcs.iter().enumerate() {
        let is_entry = !f.is_test
            && (f.name.starts_with("execute") || f.name.starts_with("top_k") || f.name == "topk")
            && f.params.iter().any(|(_, ty)| ty == "Observer");
        if is_entry && !attributed[fi] && reached.insert(fi) {
            queue.push_back(fi);
        }
    }
    while let Some(fi) = queue.pop_front() {
        for &ci in &a.calls_from[fi] {
            let Some(callee) = a.calls[ci].callee else {
                continue;
            };
            if !product_call(ws, a, ci)
                || a.funcs[callee].is_test
                || attributed[callee]
                || !reached.insert(callee)
            {
                continue;
            }
            prev.insert(callee, ci);
            queue.push_back(callee);
        }
    }
    // The shortest entry chain for `fi`, rebuilt from the BFS tree. The
    // tree is acyclic by construction, so this is also naturally capped
    // at the first cycle of the underlying graph.
    let entry_chain = |fi: usize| -> Vec<PathStep> {
        let mut calls_rev = Vec::new();
        let mut cur = fi;
        while let Some(&ci) = prev.get(&cur) {
            calls_rev.push(ci);
            cur = a.calls[ci].caller;
        }
        let entry = &a.funcs[cur];
        let mut steps = vec![step(
            &entry.rel,
            entry.line,
            format!("hot entry point `{}`", entry.qual),
        )];
        for &ci in calls_rev.iter().rev() {
            let c = &a.calls[ci];
            let callee = c.callee.unwrap_or(c.caller);
            steps.push(step(
                &a.funcs[c.caller].rel,
                c.line,
                format!("calls `{}`", a.funcs[callee].qual),
            ));
        }
        steps
    };

    let mut out = Vec::new();
    for fi in &reached {
        let f = &a.funcs[*fi];
        let file = &ws.files[f.file];
        let toks = &file.tokens;
        let depths = &a.loop_depths[f.file];
        for i in f.body_range() {
            if depths.get(i).copied().unwrap_or(0) == 0 || !file.is_product(i) {
                continue;
            }
            let t = &toks[i];
            let marker: Option<&str> = if t.is_ident("Vec")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            {
                Some("Vec::new")
            } else if t.is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("push"))
            {
                Some(".push(…)")
            } else if t.is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("clone"))
            {
                Some(".clone()")
            } else if t.is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("to_vec"))
            {
                Some(".to_vec()")
            } else if t.is_ident("format") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                Some("format!")
            } else {
                None
            };
            let Some(marker) = marker else { continue };
            let mut steps = entry_chain(*fi);
            steps.push(step(&f.rel, t.line, format!("{marker} inside a loop")));
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: t.line,
                code: "A0011",
                message: format!(
                    "{marker} in a loop of `{}`, reachable from a hot entry point, with no \
                     alloc attribution in scope — hoist it or record it via the observer's \
                     alloc channel",
                    f.qual,
                ),
                path: steps,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A0012 — interprocedural is_enabled() guard propagation.

/// Record-call sites A0002 defers to this rule: lexically unguarded, in
/// a non-pub function that has at least one resolved product call site.
pub fn guard_propagation(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    // Greatest-fixpoint "context guarded": true when every product call
    // site is guarded at the site or sits in a context-guarded caller.
    let mut cg: Vec<bool> = a
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, _)| !product_callers(ws, a, fi).is_empty())
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..a.funcs.len() {
            if !cg[fi] {
                continue;
            }
            let ok = product_callers(ws, a, fi)
                .iter()
                .all(|&ci| a.calls[ci].guarded || cg[a.calls[ci].caller]);
            if !ok {
                cg[fi] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (fi, f) in a.funcs.iter().enumerate() {
        let file = &ws.files[f.file];
        if file.in_dir("crates/obs") || f.is_test {
            continue;
        }
        if f.is_pub || product_callers(ws, a, fi).is_empty() {
            continue; // A0002 owns these
        }
        let toks = &file.tokens;
        let mask = &a.guard_masks[f.file];
        for i in f.body_range() {
            if !file.is_product(i) || mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some((recv, method, _)) = crate::rules::record_call_at(file, i) else {
                continue;
            };
            if cg[fi] {
                continue; // every caller path is guarded — the point of this rule
            }
            // Witness: one unguarded call chain from a root down to here.
            let mut steps = vec![step(
                &f.rel,
                toks[i].line,
                format!("`{recv}.{method}(…)` with no local guard in `{}`", f.qual),
            )];
            let mut cur = fi;
            let mut visited = BTreeSet::from([fi]);
            while let Some(&ci) = product_callers(ws, a, cur)
                .iter()
                .find(|&&ci| !a.calls[ci].guarded || !cg[a.calls[ci].caller])
            {
                let c = &a.calls[ci];
                steps.push(step(
                    &a.funcs[c.caller].rel,
                    c.line,
                    format!("called unguarded from `{}`", a.funcs[c.caller].qual),
                ));
                if !visited.insert(c.caller) {
                    break;
                }
                cur = c.caller;
            }
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: toks[i].line,
                code: "A0012",
                message: format!(
                    "`{recv}.{method}(…)` in helper `{}` is reached on an unguarded call \
                     path — guard the call site or the helper",
                    f.qual,
                ),
                path: steps,
            });
        }
    }
    out
}

/// Resolved product call sites targeting `fi`.
fn product_callers(ws: &Workspace, a: &Analysis, fi: usize) -> Vec<usize> {
    a.callers_of[fi]
        .iter()
        .copied()
        .filter(|&ci| product_call(ws, a, ci))
        .collect()
}

/// Whether `fi` has at least one resolved product call site — the
/// criterion A0002 uses to defer a helper's record calls to A0012.
pub(crate) fn has_product_caller(ws: &Workspace, a: &Analysis, fi: usize) -> bool {
    !product_callers(ws, a, fi).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        files: Vec<(&str, &str)>,
        rule: fn(&Workspace, &Analysis) -> Vec<Diagnostic>,
    ) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(files, "");
        let a = Analysis::build(&ws);
        rule(&ws, &a)
    }

    #[test]
    fn a0008_flags_abba_cycle_through_a_call() {
        let src = r#"
pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    pub fn ab(&self) {
        let ga = self.a.lock();
        self.take_b();
    }
    fn take_b(&self) {
        let gb = self.b.lock();
    }
    pub fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
    }
}
"#;
        let hits = run(vec![("crates/core/src/locks.rs", src)], lock_order);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].code, "A0008");
        assert!(
            hits[0].message.contains("lock-order cycle"),
            "{}",
            hits[0].message
        );
        assert!(
            hits[0].message.contains("Pair.a") && hits[0].message.contains("Pair.b"),
            "{}",
            hits[0].message
        );
        // The witness names the interprocedural step and renders as
        // file:line steps.
        assert!(hits[0].path.len() >= 4, "{:?}", hits[0].path);
        assert!(
            hits[0]
                .path
                .iter()
                .any(|s| s.note.contains("take_b") && s.note.contains("held")),
            "{:?}",
            hits[0].path
        );
        let text = format!("{}", hits[0]);
        assert!(text.contains("at crates/core/src/locks.rs:"), "{text}");
    }

    #[test]
    fn a0008_consistent_order_is_clean() {
        let src = r#"
pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    pub fn first(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
    pub fn second(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
}
"#;
        let hits = run(vec![("crates/core/src/locks.rs", src)], lock_order);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0009_names_the_full_chain_to_the_panic() {
        let src = r#"
pub fn api() -> u32 {
    helper()
}
fn helper() -> u32 {
    inner()
}
fn inner() -> u32 {
    Some(1).unwrap()
}
"#;
        let hits = run(vec![("crates/core/src/api.rs", src)], panic_reachability);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].code, "A0009");
        assert!(
            hits[0].message.contains(".unwrap()") && hits[0].message.contains("core::api::inner"),
            "{}",
            hits[0].message
        );
        // entry → helper → inner → panic site: four steps, each file:line.
        assert_eq!(hits[0].path.len(), 4, "{:?}", hits[0].path);
        assert!(hits[0].path[0].note.contains("public API `core::api::api`"));
        assert!(hits[0].path[3].note.contains("panic site"));
        let text = format!("{}", hits[0]);
        assert!(text.contains("at crates/core/src/api.rs:"), "{text}");
    }

    #[test]
    fn a0009_ignores_non_entry_crates_and_clean_chains() {
        let hits = run(
            vec![
                (
                    "crates/core/src/api.rs",
                    "pub fn api() -> u32 { helper() }\nfn helper() -> u32 { 7 }",
                ),
                (
                    "crates/viz/src/render.rs",
                    "pub fn render() -> u32 { Some(1).unwrap() }",
                ),
            ],
            panic_reachability,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0010_flags_discarded_and_swallowed_results() {
        let src = r#"
pub fn fallible(x: u32) -> Result<u32, String> {
    Ok(x)
}
pub fn infallible(x: u32) -> u32 {
    x
}
pub fn caller() {
    let _ = fallible(1);
    fallible(2).ok();
    let kept = fallible(3);
    let _ = infallible(4);
    drop(kept);
}
"#;
        let hits = run(vec![("crates/core/src/r.rs", src)], dropped_results);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|d| d.code == "A0010"));
        assert!(hits
            .iter()
            .any(|d| d.message.contains("`let _ =`") && d.message.contains("core::r::fallible")));
        assert!(hits
            .iter()
            .any(|d| d.message.contains("`.ok()`") && d.message.contains("core::r::fallible")));
    }

    #[test]
    fn a0011_flags_loop_allocs_reachable_from_hot_entries() {
        let src = r#"
pub fn execute_plan(obs: &Observer, n: u32) -> u32 {
    let mut total = 0;
    for i in 0..n {
        total += helper_sum(i);
    }
    total
}
fn helper_sum(i: u32) -> u32 {
    let mut buf = Vec::new();
    for j in 0..i {
        buf.push(j);
    }
    buf.len() as u32
}
pub fn execute_attr(obs: &Observer, n: u32) -> u32 {
    let mut buf = Vec::new();
    for i in 0..n {
        obs.alloc(8);
        buf.push(i);
    }
    buf.len() as u32
}
pub fn execute_unobserved(n: u32) -> u32 {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i);
    }
    v.len() as u32
}
pub fn unrelated(obs: &Observer, n: u32) {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i);
    }
    drop(v);
}
"#;
        let hits = run(vec![("crates/core/src/exec.rs", src)], hot_loop_allocations);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].code, "A0011");
        assert!(
            hits[0].message.contains(".push(…)")
                && hits[0].message.contains("core::exec::helper_sum"),
            "{}",
            hits[0].message
        );
        // entry → calls helper_sum → marker: the witness walks the chain.
        assert_eq!(hits[0].path.len(), 3, "{:?}", hits[0].path);
        assert!(hits[0].path[0].note.contains("hot entry point"));
        assert!(hits[0].path[2].note.contains("inside a loop"));
    }

    fn a0002(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
        let rule = crate::rules::RULES
            .iter()
            .find(|r| r.code == "A0002")
            .expect("A0002 registered");
        (rule.check)(ws, a)
    }

    #[test]
    fn a0012_flags_unguarded_call_path_into_helper() {
        let src = r#"
pub fn entry(prov: &Provenance) {
    note(prov);
}
fn note(prov: &Provenance) {
    prov.record("id", |e| e.x = 1);
}
"#;
        let ws = Workspace::from_sources(vec![("crates/core/src/g.rs", src)], "");
        let a = Analysis::build(&ws);
        // A0002 defers the helper to this rule…
        assert!(a0002(&ws, &a).is_empty(), "{:?}", a0002(&ws, &a));
        // …which names the unguarded chain.
        let hits = guard_propagation(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].code, "A0012");
        assert!(
            hits[0].message.contains("core::g::note"),
            "{}",
            hits[0].message
        );
        assert!(
            hits[0]
                .path
                .iter()
                .any(|s| s.note.contains("called unguarded from `core::g::entry`")),
            "{:?}",
            hits[0].path
        );
    }

    #[test]
    fn a0012_guarded_call_sites_cover_the_helper() {
        let src = r#"
pub fn entry(prov: &Provenance) {
    if prov.is_enabled() {
        note(prov);
    }
}
fn note(prov: &Provenance) {
    prov.record("id", |e| e.x = 1);
}
"#;
        let ws = Workspace::from_sources(vec![("crates/core/src/g.rs", src)], "");
        let a = Analysis::build(&ws);
        assert!(a0002(&ws, &a).is_empty(), "{:?}", a0002(&ws, &a));
        let hits = guard_propagation(&ws, &a);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0012_guard_propagates_through_a_middle_helper() {
        // entry guards; middle forwards; leaf records — all clean.
        let src = r#"
pub fn entry(prov: &Provenance) {
    if prov.is_enabled() {
        middle(prov);
    }
}
fn middle(prov: &Provenance) {
    leaf(prov);
}
fn leaf(prov: &Provenance) {
    prov.record("id", |e| e.x = 1);
}
"#;
        let ws = Workspace::from_sources(vec![("crates/core/src/g.rs", src)], "");
        let a = Analysis::build(&ws);
        assert!(a0002(&ws, &a).is_empty());
        let hits = guard_propagation(&ws, &a);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
