//! A lightweight Rust lexer for the invariant linter.
//!
//! The linter's rules are *lexical*: they look for token shapes (`.
//! incr ( "name"`, `thread :: spawn`, a `{` opened after `is_enabled`)
//! rather than building an AST. A real lexer — as opposed to substring
//! search — is what makes that sound: comments and doc comments are
//! stripped (a rule must not fire on prose), string literals are kept as
//! single tokens (metric names live in them; a `{` inside a string must
//! not look like a block), and lifetimes are told apart from char
//! literals. The token stream carries line numbers so diagnostics point
//! at sources, and char-offset spans so the corpus round-trip test can
//! prove no input region was silently dropped or double-lexed.
//!
//! Byte literals are first-class: `b"…"` lexes like a normal string
//! (escapes honored), `br#"…"#` / `rb"…"` like raw strings, and `b'x'` /
//! `b'\n'` like char literals — a byte string mis-lexed as a raw string
//! would desynchronize on its first escaped quote and corrupt every
//! token after it, which the CFG extraction layer cannot tolerate.
//!
//! Unsupported exotica degrades gracefully: the lexer never panics, it
//! just tokenizes conservatively.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `Instant`, `is_enabled`, …).
    Ident(String),
    /// String literal (normal, raw, or byte), *contents only* — quotes,
    /// `r#` guards and escapes are resolved away.
    Str(String),
    /// A lifetime such as `'a` (stored without the quote).
    Lifetime(String),
    /// Numeric literal (value not needed by any rule).
    Num,
    /// Single punctuation character: `{ } ( ) [ ] . , ; : ! = > < & | # …`
    Punct(char),
}

/// A token plus the 1-based source line it starts on and its half-open
/// `[start, end)` span in char offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    /// Char-offset span `[start, end)` of the token in the source.
    pub span: (u32, u32),
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The string-literal contents, if this is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

/// Tokenize Rust source. Comments (line, block — nested — and doc) are
/// dropped; everything else becomes a [`Token`].
pub fn lex(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments): skip to end of line.
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, nested: `/* a /* b */ c */` closes only
                // at the outermost `*/`, tracking depth so the interior
                // `*/` does not resume lexing mid-comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (lit, next, nl) = lex_string(&bytes, i + 1);
                out.push(Token {
                    tok: Tok::Str(lit),
                    line: start_line,
                    span: (start as u32, next as u32),
                });
                line += nl;
                i = next;
            }
            '\'' => {
                let (tok, next, nl) = lex_quote(&bytes, i);
                out.push(Token {
                    tok,
                    line,
                    span: (start as u32, next as u32),
                });
                line += nl;
                i = next;
            }
            c if c.is_ascii_digit() => {
                while i < n && (is_ident_cont(bytes[i]) || bytes[i] == '.') {
                    // `1..n` range: stop before the second dot.
                    if bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num,
                    line,
                    span: (start as u32, i as u32),
                });
            }
            c if is_ident_start(c) => {
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let next = bytes.get(i).copied();
                // Byte char literal: b'x', b'\n'.
                if word == "b" && next == Some('\'') {
                    let (tok, next, nl) = lex_quote(&bytes, i);
                    out.push(Token {
                        tok,
                        line,
                        span: (start as u32, next as u32),
                    });
                    line += nl;
                    i = next;
                    continue;
                }
                // Byte string: b"…" — escapes behave like a normal string.
                if word == "b" && next == Some('"') {
                    let start_line = line;
                    let (lit, next, nl) = lex_string(&bytes, i + 1);
                    out.push(Token {
                        tok: Tok::Str(lit),
                        line: start_line,
                        span: (start as u32, next as u32),
                    });
                    line += nl;
                    i = next;
                    continue;
                }
                // Raw / raw-byte string prefixes: r"…", r#"…"#, br#"…"#, rb"…".
                if (word == "r" || word == "br" || word == "rb")
                    && (next == Some('"') || next == Some('#'))
                {
                    let start_line = line;
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < n && bytes[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && bytes[j] == '"' {
                        let (lit, next, nl) = lex_raw_string(&bytes, j + 1, hashes);
                        out.push(Token {
                            tok: Tok::Str(lit),
                            line: start_line,
                            span: (start as u32, next as u32),
                        });
                        line += nl;
                        i = next;
                        continue;
                    }
                    // `r#ident` raw identifier: one token spanning the
                    // whole escape, so `r#fn` never leaks a bare `fn`
                    // keyword into downstream token matchers.
                    if word == "r" && hashes == 1 && j < n && is_ident_start(bytes[j]) {
                        let mut k = j;
                        while k < n && is_ident_cont(bytes[k]) {
                            k += 1;
                        }
                        let raw: String = bytes[start..k].iter().collect();
                        out.push(Token {
                            tok: Tok::Ident(raw),
                            line,
                            span: (start as u32, k as u32),
                        });
                        i = k;
                        continue;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(word),
                    line,
                    span: (start as u32, i as u32),
                });
            }
            _ => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                    span: (start as u32, (start + 1) as u32),
                });
                i += 1;
            }
        }
    }
    out
}

/// Lex the region starting at a `'` at `bytes[i]`: a lifetime (`'a`) or a
/// char literal (`'x'`, `'\n'`). Returns (token, next-index, newlines).
fn lex_quote(bytes: &[char], i: usize) -> (Tok, usize, u32) {
    let n = bytes.len();
    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';
    if i + 1 < n && is_ident_start(bytes[i + 1]) {
        // Look past the identifier: a closing quote makes it a char
        // literal like 'a'; otherwise it is a lifetime.
        let mut j = i + 1;
        while j < n && is_ident_cont(bytes[j]) {
            j += 1;
        }
        if j < n && bytes[j] == '\'' && j == i + 2 {
            return (Tok::Num, j + 1, 0);
        }
        let name: String = bytes[i + 1..j].iter().collect();
        return (Tok::Lifetime(name), j, 0);
    }
    // Escaped or punctuation char literal: scan to the closing quote,
    // honoring a single backslash escape (incl. \u{...}).
    let mut j = i + 1;
    let mut nl = 0u32;
    if j < n && bytes[j] == '\\' {
        j += 2;
        while j < n && bytes[j] != '\'' {
            if bytes[j] == '\n' {
                nl += 1;
            }
            j += 1;
        }
    } else if j < n {
        if bytes[j] == '\n' {
            nl += 1;
        }
        j += 1;
    }
    (Tok::Num, (j + 1).min(n), nl)
}

/// Lex a normal string body starting *after* the opening quote.
/// Returns (contents, index-after-closing-quote, newlines-consumed).
fn lex_string(bytes: &[char], mut i: usize) -> (String, usize, u32) {
    let mut s = String::new();
    let mut nl = 0u32;
    let n = bytes.len();
    while i < n {
        match bytes[i] {
            '\\' if i + 1 < n => {
                // Keep escapes unresolved except the quote — rules only
                // match plain metric-name strings where escapes never occur.
                if bytes[i + 1] == '"' {
                    s.push('"');
                } else {
                    s.push('\\');
                    s.push(bytes[i + 1]);
                    if bytes[i + 1] == '\n' {
                        nl += 1;
                    }
                }
                i += 2;
            }
            '"' => return (s, i + 1, nl),
            c => {
                if c == '\n' {
                    nl += 1;
                }
                s.push(c);
                i += 1;
            }
        }
    }
    (s, n, nl)
}

/// Lex a raw string body starting after the opening quote, closed by
/// `"` followed by `hashes` `#` characters.
fn lex_raw_string(bytes: &[char], mut i: usize, hashes: usize) -> (String, usize, u32) {
    let mut s = String::new();
    let mut nl = 0u32;
    let n = bytes.len();
    while i < n {
        if bytes[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && seen < hashes && bytes[j] == '#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (s, j, nl);
            }
        }
        if bytes[i] == '\n' {
            nl += 1;
        }
        s.push(bytes[i]);
        i += 1;
    }
    (s, n, nl)
}

/// Per-token mask of test regions: `true` where the token sits inside a
/// `#[cfg(test)] mod … { … }` block or a `#[test]` / `#[cfg(test)]`
/// attributed item. Rules skip masked tokens — panicking shortcuts and
/// unguarded calls are legitimate in tests.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Find the opening brace of the attributed item and mask to
            // its matching close.
            let mut j = attr_end;
            let mut depth_guard = 0usize;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                // A `;`-terminated item (e.g. `#[cfg(test)] use …;`) has
                // no body; mask just the attribute span.
                if tokens[j].is_punct(';') {
                    break;
                }
                j += 1;
                depth_guard += 1;
                if depth_guard > 64 {
                    break;
                }
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_brace(tokens, j);
                let end = close.min(mask.len());
                for slot in mask.iter_mut().take(end).skip(i) {
                    *slot = true;
                }
                i = close;
                continue;
            }
            let end = j.min(mask.len());
            for slot in mask.iter_mut().take(end).skip(i) {
                *slot = true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// If `tokens[i..]` starts a `#[cfg(test)]` or `#[test]` attribute,
/// return the index one past its closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    // Collect tokens to the closing `]` (attributes are short).
    let mut j = i + 2;
    let mut inner: Vec<&Token> = Vec::new();
    while j < tokens.len() && !tokens[j].is_punct(']') {
        inner.push(&tokens[j]);
        j += 1;
        if j - i > 24 {
            return None;
        }
    }
    if j >= tokens.len() {
        return None;
    }
    let is_test = match inner.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(j + 1)
}

/// Index one past the `}` matching the `{` at `open` (or `tokens.len()`
/// if unbalanced).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "// Instant in a comment\n/* Instant /* nested */ still */ fn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "/* a /* b /* c */ b */ a */ fn f() {}\nlet x = 1; /* tail /*/ still open */ closes */ fn g() {}";
        assert_eq!(idents(src), ["fn", "f", "let", "x", "fn", "g"]);
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = lex(r#"obs.incr("exec.ok", 1);"#);
        let strs: Vec<_> = toks.iter().filter_map(Token::str_lit).collect();
        assert_eq!(strs, ["exec.ok"]);
        // The braces-in-string case that breaks substring scanners:
        let toks = lex(r#"let x = "{ not a block }";"#);
        assert_eq!(toks.iter().filter(|t| t.is_punct('{')).count(), 0);
    }

    #[test]
    fn raw_and_escaped_strings() {
        let toks = lex("let a = r#\"he \"quoted\"\"#; let b = \"es\\\"c\";");
        let strs: Vec<_> = toks.iter().filter_map(Token::str_lit).collect();
        assert_eq!(strs, ["he \"quoted\"", "es\"c"]);
    }

    #[test]
    fn byte_strings_honor_escapes() {
        // The pre-fix lexer routed b"…" through the raw-string path, so
        // the escaped quote ended the literal and everything after
        // desynchronized.
        let toks = lex(r#"let a = b"es\"c"; fn f() {}"#);
        let strs: Vec<_> = toks.iter().filter_map(Token::str_lit).collect();
        assert_eq!(strs, ["es\"c"]);
        assert_eq!(
            idents(r#"let a = b"es\"c"; fn f() {}"#),
            ["let", "a", "fn", "f"]
        );
    }

    #[test]
    fn raw_byte_strings() {
        let toks = lex("let a = br#\"raw \"bytes\"\"#; let b = rb\"plain\"; fn f() {}");
        let strs: Vec<_> = toks.iter().filter_map(Token::str_lit).collect();
        assert_eq!(strs, ["raw \"bytes\"", "plain"]);
    }

    #[test]
    fn byte_char_literals() {
        // b'x' and b'\'' are numeric-literal-like, not a stray `b` ident
        // followed by a lifetime.
        let toks = lex(r"let a = b'x'; let b = b'\''; let c = b'\n'; fn f() {}");
        assert_eq!(
            idents(r"let a = b'x'; let b = b'\''; let c = b'\n'; fn f() {}"),
            ["let", "a", "let", "b", "let", "c", "fn", "f"]
        );
        assert!(toks.iter().all(|t| !matches!(t.tok, Tok::Lifetime(_))));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn spans_are_monotone_and_cover_idents() {
        let src = "fn f(x: u32) -> u32 { x + 1 }\nlet s = \"lit\";";
        let chars: Vec<char> = src.chars().collect();
        let toks = lex(src);
        let mut prev_end = 0u32;
        for t in &toks {
            let (s, e) = t.span;
            assert!(s >= prev_end, "span starts before previous token ended");
            assert!(s < e, "empty span");
            prev_end = e;
            if let Some(name) = t.ident() {
                let slice: String = chars[s as usize..e as usize].iter().collect();
                assert_eq!(slice, name);
            }
        }
        assert!(prev_end as usize <= chars.len());
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { spawn(); } }\nfn tail() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        for (t, m) in toks.iter().zip(&mask) {
            if t.is_ident("spawn") {
                assert!(m, "spawn inside cfg(test) must be masked");
            }
            if t.is_ident("lib") || t.is_ident("tail") {
                assert!(!m, "library items must not be masked");
            }
        }
    }

    #[test]
    fn test_mask_covers_test_fn() {
        let src = "#[test]\nfn one() { body(); }\nfn lib() { other(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        for (t, m) in toks.iter().zip(&mask) {
            if t.is_ident("body") {
                assert!(m);
            }
            if t.is_ident("other") {
                assert!(!m);
            }
        }
    }
}
