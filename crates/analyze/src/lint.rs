//! Workspace scanning, baseline handling, and the lint driver.
//!
//! [`Workspace::load`] walks the repository's product source (workspace
//! crates' `src/`, the root `src/`, `examples/`, plus test trees for
//! completeness), lexes every file once, and hands the token streams to
//! the rules in [`crate::rules`]. Vendored stand-ins (`vendor/*`) and
//! build output are never scanned — they are external code.
//!
//! The **baseline** (`analyze.allow` at the workspace root) is the
//! escape hatch for accepted debt: one `CODE path[:line]` entry per
//! suppressed finding. The checked-in baseline starts — and is expected
//! to stay — empty; a rule violation is fixed, not baselined, unless a
//! reviewer explicitly signs the entry in. Stale entries (nothing at
//! that location fires anymore) are reported so the file cannot rot.

use crate::lexer::{lex, test_mask, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// One step of an interprocedural witness chain attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathStep {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What happens at this step (`calls \`core::rank::score\``, …).
    pub note: String,
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule code, e.g. `A0001`.
    pub code: &'static str,
    pub message: String,
    /// Interprocedural witness: the `file:line` chain establishing the
    /// finding (empty for single-site rules).
    pub path: Vec<PathStep>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.code, self.message
        )?;
        for s in &self.path {
            write!(f, "\n    at {}:{}: {}", s.file, s.line, s.note)?;
        }
        Ok(())
    }
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Raw text (rules that read doc comments need it; the lexer strips
    /// them from the token stream).
    pub raw: String,
    pub tokens: Vec<Token>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` region.
    pub test_tokens: Vec<bool>,
    /// Whole-file test/bench code (under a `tests/` or `benches/` dir).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Build from a path + source text.
    pub fn new(rel: impl Into<String>, raw: impl Into<String>) -> Self {
        let rel = rel.into();
        let raw = raw.into();
        let tokens = lex(&raw);
        let test_tokens = test_mask(&tokens);
        let is_test_file = rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.starts_with("tests/")
            || rel.starts_with("benches/");
        SourceFile {
            rel,
            raw,
            tokens,
            test_tokens,
            is_test_file,
        }
    }

    /// Whether the token at `idx` belongs to product (non-test) code.
    pub fn is_product(&self, idx: usize) -> bool {
        !self.is_test_file && !self.test_tokens.get(idx).copied().unwrap_or(false)
    }

    /// Whether this file belongs to the crate rooted at `prefix`
    /// (e.g. `crates/obs`).
    pub fn in_dir(&self, prefix: &str) -> bool {
        self.rel.starts_with(&format!("{prefix}/")) || self.rel == prefix
    }
}

/// Everything the rules need: lexed sources plus the docs they must
/// stay in sync with.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// DESIGN.md text (empty when absent — sync rules then skip).
    pub design: String,
}

impl Workspace {
    /// Scan a real workspace root on disk.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut dirs: Vec<PathBuf> =
            vec![root.join("src"), root.join("tests"), root.join("examples")];
        for sub in ["crates"] {
            let base = root.join(sub);
            let Ok(entries) = std::fs::read_dir(&base) else {
                continue;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    dirs.push(p.join("src"));
                    dirs.push(p.join("tests"));
                    dirs.push(p.join("benches"));
                    dirs.push(p.join("examples"));
                }
            }
        }
        for dir in dirs {
            walk_rs(&dir, &mut |path| {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let raw = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                files.push(SourceFile::new(rel, raw));
                Ok(())
            })?;
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        Ok(Workspace { files, design })
    }

    /// Build an in-memory workspace (rule unit tests).
    pub fn from_sources(sources: Vec<(&str, &str)>, design: &str) -> Workspace {
        Workspace {
            files: sources
                .into_iter()
                .map(|(rel, src)| SourceFile::new(rel, src))
                .collect(),
            design: design.to_owned(),
        }
    }

    /// The file at a workspace-relative path, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk_rs(dir: &Path, f: &mut impl FnMut(&Path) -> Result<(), String>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // missing subtree (no examples/ etc.) is fine
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, f)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            f(&p)?;
        }
    }
    Ok(())
}

/// A parsed `analyze.allow` baseline: suppressions keyed by
/// `CODE path[:line]`. Lines starting with `#` and blank lines are
/// comments.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct BaselineEntry {
    code: String,
    file: String,
    line: Option<u32>,
}

impl Baseline {
    /// Parse baseline text. Malformed lines are errors — a baseline that
    /// silently ignores entries would un-suppress on a typo.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(code), Some(loc)) = (parts.next(), parts.next()) else {
                return Err(format!(
                    "baseline line {}: expected `CODE path[:line]`",
                    i + 1
                ));
            };
            if parts.next().is_some() {
                return Err(format!("baseline line {}: trailing tokens", i + 1));
            }
            if code.len() != 5 || !code.starts_with('A') {
                return Err(format!("baseline line {}: bad rule code {code:?}", i + 1));
            }
            let (file, lineno) = match loc.rsplit_once(':') {
                Some((f, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                    (f.to_owned(), l.parse::<u32>().ok())
                }
                _ => (loc.to_owned(), None),
            };
            entries.push(BaselineEntry {
                code: code.to_owned(),
                file,
                line: lineno,
            });
        }
        Ok(Baseline { entries })
    }

    fn matches(&self, d: &Diagnostic) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.code == d.code && e.file == d.file && e.line.is_none_or(|l| l == d.line)
        })
    }
}

/// Call-graph / CFG totals from the analysis pass, surfaced in the JSON
/// report so report diffs show coverage drift.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallGraphSummary {
    /// Function definitions extracted.
    pub functions: usize,
    /// Call sites found.
    pub calls: usize,
    /// Call sites resolved to a workspace function.
    pub resolved: usize,
    /// CFG-lite basic blocks across all functions.
    pub blocks: usize,
    /// CFG-lite successor edges across all functions.
    pub edges: usize,
}

/// Result of a lint run against a baseline.
pub struct LintOutcome {
    /// New violations (not suppressed) — nonzero means fail.
    pub violations: Vec<Diagnostic>,
    /// Findings matched (and silenced) by the baseline.
    pub suppressed: Vec<Diagnostic>,
    /// Baseline entries that matched nothing (debt already paid off).
    pub stale: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Totals from the interprocedural analysis pass.
    pub callgraph: CallGraphSummary,
    /// Per-function effect summaries for the zero-cost theorem's scope
    /// (exported as the v3 report's `effects` array).
    pub effects: Vec<crate::effects::EffectRow>,
}

/// Run every rule over the workspace and split the findings against the
/// baseline. Diagnostics come back sorted by (file, line, code) — the
/// stable order the JSON export and its validator rely on.
pub fn run(ws: &Workspace, baseline: &Baseline) -> LintOutcome {
    run_filtered(ws, baseline, None)
}

/// Like [`run`], restricted to the rule codes in `only` (all rules when
/// `None`) — the `--rules A0015,A0016` CLI scope. The analysis pass and
/// effect summaries are computed either way; only rule checks are
/// skipped.
pub fn run_filtered(
    ws: &Workspace,
    baseline: &Baseline,
    only: Option<&std::collections::BTreeSet<String>>,
) -> LintOutcome {
    let analysis = crate::callgraph::Analysis::build(ws);
    let mut all: Vec<Diagnostic> = crate::rules::RULES
        .iter()
        .filter(|r| only.is_none_or(|set| set.contains(r.code)))
        .flat_map(|r| (r.check)(ws, &analysis))
        .collect();
    all.sort();
    all.dedup();
    let mut used = vec![false; baseline.entries.len()];
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for d in all {
        match baseline.matches(&d) {
            Some(i) => {
                used[i] = true;
                suppressed.push(d);
            }
            None => violations.push(d),
        }
    }
    let stale = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| match e.line {
            Some(l) => format!("{} {}:{l}", e.code, e.file),
            None => format!("{} {}", e.code, e.file),
        })
        .collect();
    LintOutcome {
        violations,
        suppressed,
        stale,
        files_scanned: ws.files.len(),
        callgraph: CallGraphSummary {
            functions: analysis.funcs.len(),
            calls: analysis.calls.len(),
            resolved: analysis.resolved_calls(),
            blocks: analysis.block_count(),
            edges: analysis.edge_count(),
        },
        effects: crate::effects::effect_rows(ws, &analysis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parses_and_matches() {
        let b = Baseline::parse("# comment\n\nA0001 crates/x/src/lib.rs\nA0002 a.rs:7\n")
            .expect("parses");
        let hit = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            code: "A0001",
            message: String::new(),
            path: Vec::new(),
        };
        assert!(
            b.matches(&hit).is_some(),
            "file-level entry matches any line"
        );
        let wrong_line = Diagnostic {
            file: "a.rs".into(),
            line: 8,
            code: "A0002",
            message: String::new(),
            path: Vec::new(),
        };
        assert!(b.matches(&wrong_line).is_none());
    }

    #[test]
    fn baseline_rejects_malformed() {
        assert!(Baseline::parse("A0001").is_err());
        assert!(Baseline::parse("B9999 x.rs").is_err());
        assert!(Baseline::parse("A0001 x.rs extra").is_err());
    }

    #[test]
    fn test_file_detection() {
        assert!(SourceFile::new("crates/x/tests/t.rs", "").is_test_file);
        assert!(SourceFile::new("tests/top.rs", "").is_test_file);
        assert!(!SourceFile::new("crates/x/src/lib.rs", "").is_test_file);
        assert!(!SourceFile::new("examples/quickstart.rs", "").is_test_file);
    }
}
