//! Interprocedural effect summaries and the rules they power.
//!
//! This is the client layer of [`crate::absint`]: per-function effect
//! sets (allocates / locks / does-io / may-panic) are computed with the
//! fixpoint solver over each function's CFG-lite, then propagated
//! bottom-up over the Tarjan condensation of the call graph so that a
//! caller's summary includes everything its callees may do. Each
//! function gets **two** summaries:
//!
//! * `full` — effects on any path, with every branch assumed takeable;
//! * `off` — effects in the *disabled world*, where every
//!   `is_enabled()` check returns false and every `self.inner`-style
//!   `Option` gate is `None`. Tokens that only execute when enabled are
//!   masked out, and calls propagate the callee's `off` summary.
//!
//! The disabled world is what the zero-cost claim quantifies over:
//! rule A0015 demands `off` be pure for every gate-bearing function of
//! the observability layer (and `full` be pure for `NoCost`
//! monomorphizations), with a witness chain naming the first effect
//! when the proof fails. The interval domain powers A0016 (truncating
//! counter arithmetic) and A0018 (possibly-zero divisors); A0017 uses
//! the same reachability relation for flight-recorder boundedness, and
//! A0019 keeps DESIGN.md's zero-cost claims honest against the engine.

use crate::absint::{
    fixpoint, EffectSet, Interval, JoinSemiLattice, EFFECT_ALLOC, EFFECT_BITS, EFFECT_IO,
    EFFECT_LOCK, EFFECT_PANIC,
};
use crate::callgraph::{product_chain, Analysis};
use crate::cfg::{find_body_open, Cfg, FuncDef};
use crate::lexer::{matching_brace, Token};
use crate::lint::{Diagnostic, PathStep, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Where an effect bit first enters a function's summary.
#[derive(Debug, Clone)]
pub enum Witness {
    /// A marker in the function's own body.
    Direct { line: u32, what: String },
    /// Imported through a call site (index into `Analysis::calls`).
    Call { site: usize },
}

/// Per-function effect summary, indexed like `Analysis::funcs`.
#[derive(Debug, Clone, Default)]
pub struct EffectSummary {
    /// Effects on any path.
    pub full: EffectSet,
    /// Effects in the disabled world (all gates closed).
    pub off: EffectSet,
    /// The body contains a disabled-path short-circuit: an
    /// `is_enabled()` guard, an `Option`-field gate, or a closure passed
    /// to a gated callee.
    pub has_gate: bool,
    /// Per effect bit (in [`EFFECT_BITS`] order): first witness on the
    /// any-path summary.
    pub full_witness: [Option<Witness>; 4],
    /// Per effect bit: first witness in the disabled world.
    pub off_witness: [Option<Witness>; 4],
}

/// One per-function row of the v3 report's `effects` array: the
/// machine-readable form of the zero-cost proof for the functions the
/// theorem covers (obs/provenance sources plus `NoCost` impls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectRow {
    /// Module-qualified function name.
    pub qual: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Any-path effect names, [`EFFECT_BITS`] order.
    pub effects: Vec<&'static str>,
    /// Disabled-world effect names (subset of `effects`).
    pub disabled: Vec<&'static str>,
    /// Whether the body carries a recognized gate shape.
    pub gated: bool,
}

impl EffectRow {
    /// The row's headline claim: nothing happens when the layer is off.
    pub fn pure_when_disabled(&self) -> bool {
        self.disabled.is_empty()
    }
}

/// Collect the report rows for every theorem-covered function, sorted
/// by (qual, file, line) so the export is deterministic.
pub fn effect_rows(ws: &Workspace, a: &Analysis) -> Vec<EffectRow> {
    let mut rows: Vec<EffectRow> = a
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && ws.files[f.file].is_product(f.body_start)
                && (zero_cost_scope(&f.rel) || f.impl_type.as_deref() == Some("NoCost"))
        })
        .map(|(fi, f)| {
            let s = &a.effects[fi];
            EffectRow {
                qual: f.qual.clone(),
                file: f.rel.clone(),
                line: f.line,
                effects: s.full.names(),
                disabled: s.off.names(),
                gated: s.has_gate,
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        (x.qual.as_str(), x.file.as_str(), x.line).cmp(&(y.qual.as_str(), y.file.as_str(), y.line))
    });
    rows
}

/// Position of an effect bit in [`EFFECT_BITS`] order.
fn bit_index(bit: u8) -> usize {
    EFFECT_BITS.iter().position(|&(b, _)| b == bit).unwrap_or(0)
}

/// Index one past the `)` matching the `(` at `open` (or `len`).
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Methods that allocate on (or into) their receiver.
const ALLOC_METHODS: &[&str] = &[
    "append",
    "clone",
    "collect",
    "extend",
    "insert",
    "or_default",
    "or_insert",
    "or_insert_with",
    "push",
    "push_back",
    "push_str",
    "reserve",
    "resize",
    "to_owned",
    "to_string",
    "to_vec",
];

/// If a direct effect marker starts at token `i`, the effect bit and a
/// human-readable description of it.
fn direct_marker(toks: &[Token], i: usize) -> Option<(u8, String)> {
    let t = &toks[i];
    // `.method(` markers trigger on the dot.
    if t.is_punct('.') {
        let name = toks.get(i + 1).and_then(Token::ident)?;
        let called = toks
            .get(i + 2)
            .is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
        if !called {
            return None;
        }
        if ALLOC_METHODS.contains(&name) {
            return Some((EFFECT_ALLOC, format!("`.{name}(…)` allocates")));
        }
        if name == "lock" {
            return Some((EFFECT_LOCK, "`.lock()` takes a lock".to_owned()));
        }
        if name == "unwrap" || name == "expect" {
            return Some((EFFECT_PANIC, format!("`.{name}(…)` may panic")));
        }
        return None;
    }
    let word = t.ident()?;
    let next_bang = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
    if next_bang {
        match word {
            "format" | "vec" => return Some((EFFECT_ALLOC, format!("`{word}!` allocates"))),
            "println" | "eprintln" | "print" | "eprint" => {
                return Some((EFFECT_IO, format!("`{word}!` performs I/O")))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne" => return Some((EFFECT_PANIC, format!("`{word}!` may panic"))),
            _ => return None,
        }
    }
    let next_path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
    if next_path {
        if matches!(word, "Box" | "Arc" | "Rc")
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
        {
            return Some((EFFECT_ALLOC, format!("`{word}::new` allocates")));
        }
        if word == "fs" || word == "File" {
            return Some((EFFECT_IO, format!("`{word}::…` performs I/O")));
        }
    }
    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        if word == "with_capacity" {
            return Some((EFFECT_ALLOC, "`with_capacity(…)` allocates".to_owned()));
        }
        if matches!(word, "stdout" | "stderr" | "stdin") {
            return Some((EFFECT_IO, format!("`{word}()` touches a standard stream")));
        }
    }
    if matches!(word, "TcpStream" | "UdpSocket") {
        return Some((EFFECT_IO, format!("`{word}` performs I/O")));
    }
    None
}

/// Whether tokens `[k..]` start a `self.FIELD` access where FIELD is a
/// plain field (not a method call).
fn self_field_at(toks: &[Token], k: usize) -> bool {
    toks.get(k).is_some_and(|t| t.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(k + 2).and_then(Token::ident).is_some()
        && !toks.get(k + 3).is_some_and(|t| t.is_punct('('))
}

/// Whether tokens at `k` are a `self.inner` access — the
/// `inner: Option<Arc<Inner>>` disabled-state convention Observer and
/// Provenance share. Only this field gates the disabled world; an
/// arbitrary `self.field` Option carries data, not enablement.
fn state_field_at(toks: &[Token], k: usize) -> bool {
    self_field_at(toks, k) && toks.get(k + 2).is_some_and(|t| t.is_ident("inner"))
}

/// Whether any token in `[start, end)` is a `self.inner` access.
fn window_has_state_field(toks: &[Token], start: usize, end: usize) -> bool {
    (start..end.min(toks.len())).any(|k| state_field_at(toks, k))
}

/// Intrinsic disabled-world mask for one function: `true` where a token
/// does **not** execute when the gates are closed. Covers:
///
/// * tokens behind an `is_enabled()` guard (via the guard mask);
/// * `if let Some(p) = <…self.field…> { body }` — the body;
/// * `let Some(p) = <…self.field…> else { diverge };` — everything
///   after the `else` block (the block itself *is* the disabled path);
/// * `self.field.as_ref()?` / `as_mut()?` — everything after the `?`;
/// * `self.field.as_ref().map(|…| …)` / `.and_then(…)` — the call args.
///
/// Returns the mask (indexed `tok - body_start`) and whether any gate
/// shape was found.
fn off_mask(f: &FuncDef, toks: &[Token], guard: &[bool]) -> (Vec<bool>, bool) {
    let base = f.body_start;
    let range = f.body_range();
    let mut mask = vec![false; f.body_end.saturating_sub(base)];
    let mut gated = false;
    let set = |mask: &mut Vec<bool>, from: usize, to: usize| {
        for k in from.max(base)..to.min(base + mask.len()) {
            mask[k - base] = true;
        }
    };
    for i in range.clone() {
        if guard.get(i).copied().unwrap_or(false) {
            mask[i - base] = true;
            gated = true;
        }
    }
    let mut i = range.start;
    while i < range.end.min(toks.len()) {
        // `if let Some(p) = <cond> { body }`
        if toks[i].is_ident("if")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("let"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("Some"))
        {
            if let Some(eq) = assign_eq(toks, i + 3, range.end) {
                if let Some(open) = find_body_open(toks, eq + 1) {
                    if window_has_state_field(toks, eq + 1, open) {
                        let close = matching_brace(toks, open);
                        set(&mut mask, open + 1, close.saturating_sub(1));
                        gated = true;
                        i = open + 1;
                        continue;
                    }
                }
            }
        }
        // `let Some(p) = <cond> else { diverge };` — mask the rest.
        if toks[i].is_ident("let") && toks.get(i + 1).is_some_and(|t| t.is_ident("Some")) {
            if let Some(eq) = assign_eq(toks, i + 2, range.end) {
                let mut j = eq + 1;
                let mut depth = 0i32;
                let mut else_at = None;
                while j < range.end.min(toks.len()) {
                    match () {
                        _ if toks[j].is_punct('(') || toks[j].is_punct('[') => depth += 1,
                        _ if toks[j].is_punct(')') || toks[j].is_punct(']') => depth -= 1,
                        _ if depth == 0 && toks[j].is_ident("else") => {
                            else_at = Some(j);
                            break;
                        }
                        _ if depth == 0 && (toks[j].is_punct(';') || toks[j].is_punct('{')) => {
                            break
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(e) = else_at {
                    if window_has_state_field(toks, eq + 1, e) {
                        if let Some(open) = find_body_open(toks, e + 1) {
                            let close = matching_brace(toks, open);
                            set(&mut mask, close, range.end);
                            gated = true;
                            i = close;
                            continue;
                        }
                    }
                }
            }
        }
        // `self.inner.as_ref()?` / `as_mut()?` — early return when None.
        if state_field_at(toks, i)
            && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("as_ref") || t.is_ident("as_mut"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
        {
            if toks.get(i + 7).is_some_and(|t| t.is_punct('?')) {
                set(&mut mask, i + 8, range.end);
                gated = true;
                i += 8;
                continue;
            }
            // `.map(` / `.and_then(` — the closure only runs enabled.
            if toks.get(i + 7).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(i + 8)
                    .is_some_and(|t| t.is_ident("map") || t.is_ident("and_then"))
                && toks.get(i + 9).is_some_and(|t| t.is_punct('('))
            {
                let close = matching_paren(toks, i + 9);
                set(&mut mask, i + 10, close.saturating_sub(1));
                gated = true;
                i = close;
                continue;
            }
        }
        i += 1;
    }
    (mask, gated)
}

/// The `=` of a `let`/`if let` binding: first `=` at bracket depth 0
/// that is not part of `==`, `=>`, `>=`, `<=` or `!=`.
fn assign_eq(toks: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = from;
    while j < end.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return None;
        } else if depth == 0 && t.is_punct('=') {
            let prev_rel = j > from
                && toks
                    .get(j - 1)
                    .is_some_and(|p| matches!(p.tok, crate::lexer::Tok::Punct('<' | '>' | '!')));
            let next_eq = toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if !prev_rel && !next_eq {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Compute the two effect summaries for every function, bottom-up over
/// the SCC condensation so callee summaries are final (or iterated to a
/// local fixpoint inside recursive components) before callers read them.
pub fn summarize(ws: &Workspace, a: &Analysis) -> Vec<EffectSummary> {
    let n = a.funcs.len();
    let mut summaries: Vec<EffectSummary> = vec![EffectSummary::default(); n];
    if n == 0 {
        return summaries;
    }

    // Pass 1: intrinsic masks + gates.
    let mut masks: Vec<Vec<bool>> = Vec::with_capacity(n);
    for (fi, f) in a.funcs.iter().enumerate() {
        let toks = &ws.files[f.file].tokens;
        let guard = &a.guard_masks[f.file];
        let (mask, gated) = off_mask(f, toks, guard);
        masks.push(mask);
        summaries[fi].has_gate = gated;
    }

    // Pass 2: closure arguments at call sites whose callee has a gate
    // are part of the caller's disabled-world mask too.
    let gates: Vec<bool> = summaries.iter().map(|s| s.has_gate).collect();
    for (fi, f) in a.funcs.iter().enumerate() {
        let toks = &ws.files[f.file].tokens;
        for &ci in &a.calls_from[fi] {
            let c = &a.calls[ci];
            let Some(callee) = c.callee else { continue };
            if !gates.get(callee).copied().unwrap_or(false) {
                continue;
            }
            if !toks.get(c.tok + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let open = c.tok + 1;
            let close = matching_paren(toks, open);
            // First `|` directly inside the call parens starts a closure.
            let mut depth = 0i32;
            let mut bar = None;
            for (k, t) in toks.iter().enumerate().take(close).skip(open) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                } else if depth == 1 && t.is_punct('|') {
                    bar = Some(k);
                    break;
                }
            }
            if let Some(b) = bar {
                let base = f.body_start;
                for k in b.max(base)..close.saturating_sub(1).min(base + masks[fi].len()) {
                    masks[fi][k - base] = true;
                }
                summaries[fi].has_gate = true;
            }
        }
    }

    // Per-function call-site lookup by name-token index.
    let mut site_at: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n];
    for (ci, c) in a.calls.iter().enumerate() {
        site_at[c.caller].insert(c.tok, ci);
    }

    // Pass 3: bottom-up evaluation over the condensation. Components
    // arrive callees-first; inside a recursive component we iterate to a
    // local fixpoint (the effect lattice is finite, so this is fast).
    let comps: Vec<Vec<usize>> = a.reach.scc.comps.clone();
    for comp in &comps {
        loop {
            let mut changed = false;
            for &fi in comp {
                let (full, fw) = eval_effects(ws, a, fi, Mode::Full, &masks, &site_at, &summaries);
                let (off, ow) = eval_effects(ws, a, fi, Mode::Off, &masks, &site_at, &summaries);
                if full != summaries[fi].full || off != summaries[fi].off {
                    changed = true;
                }
                summaries[fi].full = full;
                summaries[fi].off = off;
                summaries[fi].full_witness = fw;
                summaries[fi].off_witness = ow;
            }
            if !changed {
                break;
            }
        }
    }
    summaries
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Full,
    Off,
}

/// Blocks reachable from the CFG entry.
fn reachable_blocks(cfg: &Cfg) -> Vec<bool> {
    let n = cfg.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if b >= n || seen[b] {
            continue;
        }
        seen[b] = true;
        for &s in &cfg.blocks[b].succs {
            stack.push(s);
        }
    }
    seen
}

/// One function's effect set + first-witness table in the given mode,
/// reading callee summaries from `summaries`.
fn eval_effects(
    ws: &Workspace,
    a: &Analysis,
    fi: usize,
    mode: Mode,
    masks: &[Vec<bool>],
    site_at: &[BTreeMap<usize, usize>],
    summaries: &[EffectSummary],
) -> (EffectSet, [Option<Witness>; 4]) {
    let f = &a.funcs[fi];
    let toks = &ws.files[f.file].tokens;
    let base = f.body_start;
    let masked = |k: usize| -> bool {
        mode == Mode::Off
            && masks[fi]
                .get(k.wrapping_sub(base))
                .copied()
                .unwrap_or(false)
    };
    let cfg = &f.cfg;
    if cfg.blocks.is_empty() {
        return (EffectSet::pure(), [None, None, None, None]);
    }
    // Per-block local effects (direct markers + call imports).
    let mut block_fx: Vec<EffectSet> = Vec::with_capacity(cfg.blocks.len());
    for b in &cfg.blocks {
        let mut fx = EffectSet::pure();
        for k in b.start..b.end.min(toks.len()) {
            if masked(k) {
                continue;
            }
            if let Some((bit, _)) = direct_marker(toks, k) {
                fx.insert(bit);
            }
            if let Some(&ci) = site_at[fi].get(&k) {
                if let Some(callee) = a.calls[ci].callee {
                    let s = &summaries[callee];
                    let imported = match mode {
                        Mode::Full => s.full,
                        Mode::Off => s.off,
                    };
                    fx = fx.join(&imported);
                }
            }
        }
        block_fx.push(fx);
    }
    let result = fixpoint(cfg, EffectSet::pure(), |b, s: &EffectSet| {
        s.join(&block_fx[b])
    });
    let reach = reachable_blocks(cfg);
    let mut total = EffectSet::pure();
    for (b, ok) in reach.iter().enumerate() {
        if *ok {
            total = total.join(&result.outputs[b]);
        }
    }
    // First witness per bit, scanning reachable blocks in order.
    let mut witness: [Option<Witness>; 4] = [None, None, None, None];
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reach[b] {
            continue;
        }
        for k in block.start..block.end.min(toks.len()) {
            if masked(k) {
                continue;
            }
            if let Some((bit, what)) = direct_marker(toks, k) {
                let slot = &mut witness[bit_index(bit)];
                if total.has(bit) && slot.is_none() {
                    *slot = Some(Witness::Direct {
                        line: toks[k].line,
                        what,
                    });
                }
            }
            if let Some(&ci) = site_at[fi].get(&k) {
                if let Some(callee) = a.calls[ci].callee {
                    let imported = match mode {
                        Mode::Full => summaries[callee].full,
                        Mode::Off => summaries[callee].off,
                    };
                    for &(bit, _) in &EFFECT_BITS {
                        let slot = &mut witness[bit_index(bit)];
                        if imported.has(bit) && total.has(bit) && slot.is_none() {
                            *slot = Some(Witness::Call { site: ci });
                        }
                    }
                }
            }
        }
    }
    (total, witness)
}

/// Human verb for an effect bit (diagnostic text).
fn effect_verb(bit: u8) -> &'static str {
    match bit {
        EFFECT_ALLOC => "allocate",
        EFFECT_LOCK => "take a lock",
        EFFECT_IO => "perform I/O",
        _ => "panic",
    }
}

/// The first present effect bit, in [`EFFECT_BITS`] order.
fn first_bit(set: EffectSet) -> Option<u8> {
    EFFECT_BITS
        .iter()
        .map(|&(bit, _)| bit)
        .find(|&bit| set.has(bit))
}

/// Witness chain for `bit` starting at function `start`, following
/// call-site witnesses into callees and capped at the first revisited
/// function (so recursive components contribute one pass, not a spiral).
fn effect_chain(ws: &Workspace, a: &Analysis, start: usize, bit: u8, off: bool) -> Vec<PathStep> {
    let mut steps = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut cur = start;
    while seen.insert(cur) {
        let s = &a.effects[cur];
        let w = if off {
            &s.off_witness[bit_index(bit)]
        } else {
            &s.full_witness[bit_index(bit)]
        };
        match w {
            Some(Witness::Direct { line, what }) => {
                steps.push(PathStep {
                    file: a.funcs[cur].rel.clone(),
                    line: *line,
                    note: what.clone(),
                });
                break;
            }
            Some(Witness::Call { site }) => {
                let c = &a.calls[*site];
                let Some(callee) = c.callee else { break };
                steps.push(PathStep {
                    file: ws.files[c.file].rel.clone(),
                    line: c.line,
                    note: format!("calls `{}`", a.funcs[callee].qual),
                });
                cur = callee;
            }
            None => break,
        }
    }
    steps
}

/// Files whose disabled-path functions the zero-cost theorem covers.
fn zero_cost_scope(rel: &str) -> bool {
    rel.starts_with("crates/obs/src/") || rel == "crates/core/src/provenance.rs"
}

/// Whether a function's declared return type allocates by contract
/// (`String`, `Vec`, `Box`, `PathBuf`) — export APIs whose entire
/// purpose is to hand back owned data. The disabled-path obligation
/// cannot apply: even the "return empty" arm must build the value.
fn returns_owned(ws: &Workspace, f: &FuncDef) -> bool {
    let toks = &ws.files[f.file].tokens;
    // Walk back from the body `{` to the `->` arrow (adjacent `-` `>`),
    // bounded: stop at `;`, another `{`, or 40 tokens.
    let mut j = f.body_start;
    let floor = f.body_start.saturating_sub(40);
    let mut arrow = None;
    while j > floor {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') {
            break;
        }
        if t.is_punct('-')
            && toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct('>') && n.span.0 == t.span.1)
        {
            arrow = Some(j);
            break;
        }
    }
    let Some(arrow) = arrow else { return false };
    toks[arrow..f.body_start].iter().any(|t| {
        t.is_ident("String") || t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("PathBuf")
    })
}

/// A0015: the zero-cost proof. `NoCost`-monomorphized functions must be
/// effect-free on every path; gate-bearing functions of the
/// observability layer must be effect-free in the disabled world.
pub(crate) fn zero_cost(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, f) in a.funcs.iter().enumerate() {
        if f.is_test || !ws.files[f.file].is_product(f.body_start) {
            continue;
        }
        let s = &a.effects[fi];
        if f.impl_type.as_deref() == Some("NoCost") {
            if let Some(bit) = first_bit(s.full) {
                out.push(Diagnostic {
                    file: f.rel.clone(),
                    line: f.line,
                    code: "A0015",
                    message: format!(
                        "`{}` is a NoCost monomorphization but may {}; \
                         the zero-cost path must be effect-free",
                        f.qual,
                        effect_verb(bit)
                    ),
                    path: effect_chain(ws, a, fi, bit, false),
                });
            }
            continue;
        }
        if zero_cost_scope(&f.rel) && s.has_gate && !returns_owned(ws, f) {
            if let Some(bit) = first_bit(s.off) {
                out.push(Diagnostic {
                    file: f.rel.clone(),
                    line: f.line,
                    code: "A0015",
                    message: format!(
                        "`{}` may {} on its disabled path; \
                         the zero-cost-when-disabled invariant requires the off path to be pure",
                        f.qual,
                        effect_verb(bit)
                    ),
                    path: effect_chain(ws, a, fi, bit, true),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Interval environment (the second absint domain in action)
// ---------------------------------------------------------------------

/// Abstract store for the interval analysis: named locals (and
/// `self.field` slots) mapped to intervals. A missing name means top —
/// the environment only records what it knows. `live = false` is the
/// bottom element (unreachable).
#[derive(Debug, Clone, PartialEq)]
pub struct Env {
    live: bool,
    vars: BTreeMap<String, Interval>,
}

impl Env {
    fn start() -> Env {
        Env {
            live: true,
            vars: BTreeMap::new(),
        }
    }

    fn get(&self, name: &str) -> Interval {
        self.vars
            .get(name)
            .copied()
            .unwrap_or_else(Interval::unsigned_top)
    }

    fn set(&mut self, name: String, v: Interval) {
        self.vars.insert(name, v);
    }
}

impl JoinSemiLattice for Env {
    fn bottom() -> Self {
        Env {
            live: false,
            vars: BTreeMap::new(),
        }
    }
    fn join(&self, other: &Self) -> Self {
        if !self.live {
            return other.clone();
        }
        if !other.live {
            return self.clone();
        }
        // Keys present in both join pointwise; keys in only one side
        // drop to top (absent).
        let mut vars = BTreeMap::new();
        for (k, v) in &self.vars {
            if let Some(w) = other.vars.get(k) {
                vars.insert(k.clone(), v.join(w));
            }
        }
        Env { live: true, vars }
    }
    fn leq(&self, other: &Self) -> bool {
        if !self.live {
            return true;
        }
        if !other.live {
            return false;
        }
        // Every constraint `other` records must be implied by `self`.
        other.vars.iter().all(|(k, w)| self.get(k).leq(w))
    }
    fn widen(&self, next: &Self) -> Self {
        if !self.live {
            return next.clone();
        }
        if !next.live {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (k, v) in &self.vars {
            if let Some(w) = next.vars.get(k) {
                vars.insert(k.clone(), v.widen(w));
            }
        }
        Env { live: true, vars }
    }
}

/// Parse a numeric literal's value from its raw source slice
/// (underscores stripped, integer type suffixes dropped, `0x`/`0o`/`0b`
/// honored). Floats and char literals yield `None`.
fn num_value(text: &str) -> Option<i128> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    if t.contains('.') || t.contains('\'') {
        return None;
    }
    let t = [
        "usize", "u128", "u64", "u32", "u16", "u8", "isize", "i128", "i64", "i32", "i16", "i8",
    ]
    .iter()
    .find_map(|s| t.strip_suffix(s))
    .unwrap_or(&t);
    if t.contains('f') && !t.starts_with("0x") {
        return None; // f32/f64 suffix
    }
    if let Some(hex) = t.strip_prefix("0x") {
        return i128::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o") {
        return i128::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b") {
        return i128::from_str_radix(bin, 2).ok();
    }
    t.parse::<i128>().ok()
}

/// The raw source slice of token `k` (char-offset spans; ASCII fast
/// path, char-walk fallback).
fn raw_slice<'a>(file: &'a SourceFile, toks: &[Token], k: usize) -> std::borrow::Cow<'a, str> {
    let Some(t) = toks.get(k) else {
        return std::borrow::Cow::Borrowed("");
    };
    let (s, e) = (t.span.0 as usize, t.span.1 as usize);
    if file.raw.is_ascii() {
        std::borrow::Cow::Borrowed(file.raw.get(s..e).unwrap_or(""))
    } else {
        std::borrow::Cow::Owned(file.raw.chars().skip(s).take(e.saturating_sub(s)).collect())
    }
}

/// Evaluate the expression tokens `[s, e)` to an interval, reading
/// named values from `env`. Handles literals, names, `self.field`,
/// parentheses, one level of `+`/`-`/`*`, and postfix chains
/// (`.len()`, `.max(k)`, `.min(k)`, `.saturating_*`). Anything else
/// degrades to the unknown unsigned value `[0, +∞]`.
fn eval_expr(
    file: &SourceFile,
    toks: &[Token],
    s: usize,
    e: usize,
    env: &Env,
    depth: u32,
) -> Interval {
    let e = e.min(toks.len());
    if s >= e || depth > 8 {
        return Interval::unsigned_top();
    }
    // Strip one full set of wrapping parens.
    if toks[s].is_punct('(') && matching_paren(toks, s) == e {
        return eval_expr(file, toks, s + 1, e - 1, env, depth + 1);
    }
    // Top-level binary `+` / `-` / `*` (rightmost, lowest precedence
    // first) — skip unary minus and compound-assign shapes.
    let mut pd = 0i32;
    for op in ['+', '-', '*'] {
        for k in (s + 1..e).rev() {
            let t = &toks[k];
            if t.is_punct(')') || t.is_punct(']') {
                pd += 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                pd -= 1;
            } else if pd == 0 && t.is_punct(op) {
                // `*` directly after `(`/`=`/operator is a deref/unary.
                let prev_operand = toks.get(k - 1).is_some_and(|p| {
                    matches!(p.tok, crate::lexer::Tok::Ident(_) | crate::lexer::Tok::Num)
                        || p.is_punct(')')
                });
                if !prev_operand {
                    continue;
                }
                let lhs = eval_expr(file, toks, s, k, env, depth + 1);
                let rhs = eval_expr(file, toks, k + 1, e, env, depth + 1);
                return match op {
                    '+' => lhs.add(&rhs),
                    '-' => lhs.sub(&rhs),
                    _ => lhs.mul(&rhs),
                };
            }
        }
        pd = 0;
    }
    // Primary + postfix chain.
    let (mut v, mut k) = match &toks[s].tok {
        crate::lexer::Tok::Num => match num_value(&raw_slice(file, toks, s)) {
            Some(n) => (Interval::exact(n), s + 1),
            None => return Interval::unsigned_top(),
        },
        crate::lexer::Tok::Ident(w)
            if w == "self" && toks.get(s + 1).is_some_and(|t| t.is_punct('.')) =>
        {
            match toks.get(s + 2).and_then(Token::ident) {
                Some(fieldname) => (env.get(&format!("self.{fieldname}")), s + 3),
                None => return Interval::unsigned_top(),
            }
        }
        crate::lexer::Tok::Ident(w) => {
            if toks.get(s + 1).is_some_and(|t| t.is_punct('(')) {
                // Free/constructor call: unknown result.
                (Interval::unsigned_top(), matching_paren(toks, s + 1))
            } else {
                (env.get(w), s + 1)
            }
        }
        _ => return Interval::unsigned_top(),
    };
    while k < e {
        if toks[k].is_punct('.') {
            let Some(name) = toks.get(k + 1).and_then(Token::ident) else {
                return Interval::unsigned_top();
            };
            if !toks.get(k + 2).is_some_and(|t| t.is_punct('(')) {
                // Plain field hop: value unknown.
                v = Interval::unsigned_top();
                k += 2;
                continue;
            }
            let close = matching_paren(toks, k + 2);
            let arg = || eval_expr(file, toks, k + 3, close.saturating_sub(1), env, depth + 1);
            v = match name {
                "max" => v.max_of(&arg()),
                "min" => v.min_of(&arg()),
                "len" => Interval::range(0, crate::absint::POS_INF),
                "saturating_add" => v.add(&arg()).max_of(&Interval::exact(0)),
                "saturating_mul" => v.mul(&arg()).max_of(&Interval::exact(0)),
                "saturating_sub" => v.sub(&arg()).max_of(&Interval::exact(0)),
                _ => Interval::unsigned_top(),
            };
            k = close;
            continue;
        }
        if toks[k].is_ident("as") {
            break; // cast: keep the pre-cast value (A0016 judges it).
        }
        break;
    }
    v
}

/// Replay the statements of token range `[start, end)` into `env`:
/// `let` bindings, plain and compound assignments to locals and
/// `self.field` slots.
fn replay(file: &SourceFile, toks: &[Token], start: usize, end: usize, env: &mut Env) {
    let end = end.min(toks.len());
    let stmt_end = |from: usize| -> usize {
        let mut d = 0i32;
        for (k, t) in toks.iter().enumerate().take(end).skip(from) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if d == 0 && t.is_punct(';') {
                return k;
            }
        }
        end
    };
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = toks.get(k).and_then(Token::ident) {
                let send = stmt_end(k);
                if let Some(eq) = assign_eq(toks, k + 1, send) {
                    let v = eval_expr(file, toks, eq + 1, send, env, 0);
                    env.set(name.to_owned(), v);
                }
                i = send + 1;
                continue;
            }
        }
        // `name = expr;` / `name op= expr;` / `self.f = expr;` at a
        // statement boundary.
        let at_boundary = i == start
            || toks
                .get(i - 1)
                .is_some_and(|p| p.is_punct(';') || p.is_punct('{') || p.is_punct('}'));
        if at_boundary {
            let (key, after) = if self_field_at(toks, i) {
                (
                    toks.get(i + 2)
                        .and_then(Token::ident)
                        .map(|f| format!("self.{f}")),
                    i + 3,
                )
            } else if let Some(name) = t.ident() {
                (Some(name.to_owned()), i + 1)
            } else {
                (None, i + 1)
            };
            if let Some(key) = key {
                let send = stmt_end(i);
                // Compound: `+= -= *=` as adjacent punct pairs.
                let compound = toks.get(after).and_then(|p| match p.tok {
                    crate::lexer::Tok::Punct(c @ ('+' | '-' | '*')) => Some(c),
                    _ => None,
                });
                if let Some(op) = compound {
                    let adjacent = toks
                        .get(after + 1)
                        .is_some_and(|n| n.is_punct('=') && n.span.0 == toks[after].span.1);
                    if adjacent {
                        let rhs = eval_expr(file, toks, after + 2, send, env, 0);
                        let cur = env.get(&key);
                        let v = match op {
                            '+' => cur.add(&rhs),
                            '-' => cur.sub(&rhs),
                            _ => cur.mul(&rhs),
                        };
                        env.set(key, v);
                        i = send + 1;
                        continue;
                    }
                } else if toks.get(after).is_some_and(|p| p.is_punct('='))
                    && !toks.get(after + 1).is_some_and(|n| n.is_punct('='))
                {
                    let v = eval_expr(file, toks, after + 1, send, env, 0);
                    env.set(key, v);
                    i = send + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// The interval environment holding at token `site` of function `fi`:
/// the owning block's fixpoint input, plus a replay of the block's
/// statements up to the site.
fn env_at(ws: &Workspace, a: &Analysis, fi: usize, site: usize) -> Env {
    let f = &a.funcs[fi];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    let cfg = &f.cfg;
    if cfg.blocks.is_empty() {
        return Env::start();
    }
    let result = fixpoint(cfg, Env::start(), |b, s: &Env| {
        let mut out = s.clone();
        if out.live {
            let blk = &cfg.blocks[b];
            replay(file, toks, blk.start, blk.end, &mut out);
        }
        out
    });
    let Some(b) = cfg
        .blocks
        .iter()
        .position(|blk| blk.start <= site && site < blk.end)
    else {
        return Env::start();
    };
    let mut env = result.inputs[b].clone();
    if !env.live {
        env = Env::start();
    }
    replay(file, toks, cfg.blocks[b].start, site, &mut env);
    env
}

// ---------------------------------------------------------------------
// A0016: counter arithmetic must saturate, casts must not truncate
// ---------------------------------------------------------------------

/// Statement window around token `i`: from just after the previous
/// `;`/`{`/`}` to the next `;` (exclusive).
fn stmt_window(toks: &[Token], i: usize) -> (usize, usize) {
    let mut s = i;
    while s > 0 {
        let p = &toks[s - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let mut e = i;
    while e < toks.len() && !toks[e].is_punct(';') {
        e += 1;
    }
    (s, e)
}

/// Whether a statement window touches a counter flow: a metric-name
/// string literal (`cost.*` / `obs.*` / `telemetry.*` / `health.*`) or
/// the `counters` map itself.
fn counter_window(toks: &[Token], s: usize, e: usize) -> bool {
    toks[s..e.min(toks.len())].iter().any(|t| {
        t.str_lit().is_some_and(|lit| {
            lit.starts_with("cost.")
                || lit.starts_with("obs.")
                || lit.starts_with("telemetry.")
                || lit.starts_with("health.")
        }) || t.is_ident("counters")
    })
}

/// Integer types an `as` cast can truncate a counter into.
const NARROW_TYPES: &[(&str, i128, i128)] = &[
    ("u8", 0, u8::MAX as i128),
    ("u16", 0, u16::MAX as i128),
    ("u32", 0, u32::MAX as i128),
    ("i8", i8::MIN as i128, i8::MAX as i128),
    ("i16", i16::MIN as i128, i16::MAX as i128),
    ("i32", i32::MIN as i128, i32::MAX as i128),
];

/// A0016: non-saturating compound assignment, or a truncating `as`
/// cast, on a `cost.*`/`obs.*` counter flow. The interval domain grants
/// exemptions for casts it can prove in range.
pub(crate) fn counter_arith(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !file.is_product(i) {
                continue;
            }
            // Compound `+= -= *=` (adjacent punct pair).
            if let crate::lexer::Tok::Punct(op @ ('+' | '-' | '*')) = toks[i].tok {
                let adjacent = toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('=') && n.span.0 == toks[i].span.1);
                if adjacent {
                    let (s, e) = stmt_window(toks, i);
                    let dotted_lhs = toks[s..i].iter().any(|t| t.is_punct('.'));
                    if dotted_lhs && counter_window(toks, s, e) {
                        out.push(Diagnostic {
                            file: file.rel.clone(),
                            line: toks[i].line,
                            code: "A0016",
                            message: format!(
                                "non-saturating `{op}=` on a counter flow; \
                                 counters must use `saturating_{}`",
                                match op {
                                    '+' => "add",
                                    '-' => "sub",
                                    _ => "mul",
                                }
                            ),
                            path: Vec::new(),
                        });
                    }
                }
            }
            // Truncating `as` casts in counter windows.
            if toks[i].is_ident("as") {
                let Some(ty) = toks.get(i + 1).and_then(Token::ident) else {
                    continue;
                };
                let Some(&(_, lo, hi)) = NARROW_TYPES.iter().find(|(n, _, _)| *n == ty) else {
                    continue;
                };
                let (s, e) = stmt_window(toks, i);
                if !counter_window(toks, s, e) {
                    continue;
                }
                // Interval exemption: evaluate the single operand token
                // before the cast (a name, literal, or `self.field`).
                let proven = a.func_at(fi, i).is_some_and(|owner| {
                    let env = env_at(ws, a, owner, i);
                    let v = if i >= 3 && self_field_at(toks, i - 3) {
                        eval_expr(file, toks, i - 3, i, &env, 0)
                    } else if i >= 1 {
                        eval_expr(file, toks, i - 1, i, &env, 0)
                    } else {
                        Interval::unsigned_top()
                    };
                    !v.is_empty() && v.within(lo, hi)
                });
                if !proven {
                    out.push(Diagnostic {
                        file: file.rel.clone(),
                        line: toks[i].line,
                        code: "A0016",
                        message: format!(
                            "truncating `as {ty}` on a counter flow \
                             (value not proven within [{lo}, {hi}])"
                        ),
                        path: Vec::new(),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// A0017: flight-recorder boundedness
// ---------------------------------------------------------------------

/// Collection-growing methods A0017 watches inside unbounded loops.
const GROWTH_METHODS: &[&str] = &[
    "append",
    "extend",
    "insert",
    "push",
    "push_back",
    "push_str",
];

/// Shrink methods that count as boundedness evidence.
const SHRINK_METHODS: &[&str] = &["clear", "drain", "pop", "remove", "truncate"];

/// Long-lived entry points: processes that run until killed.
fn is_long_lived_entry(name: &str) -> bool {
    ["soak", "watchdog", "daemon", "run_forever", "serve"]
        .iter()
        .any(|m| name.contains(m))
}

/// The `ident(.ident)*` receiver path ending just before the `.` at
/// `dot` (walking left), outermost first.
fn receiver_path(toks: &[Token], dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot;
    while let Some(name) = j
        .checked_sub(1)
        .and_then(|k| toks.get(k))
        .and_then(Token::ident)
    {
        segs.push(name.to_owned());
        if j >= 3 && toks[j - 2].is_punct('.') && toks.get(j - 3).and_then(Token::ident).is_some() {
            j -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Unbounded loop regions inside a body: `loop { … }` and
/// `while let … { … }` (a `while <comparison>` is presumed bounded).
fn unbounded_loop_regions(toks: &[Token], range: std::ops::Range<usize>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end.min(toks.len()) {
        let is_loop = toks[i].is_ident("loop");
        let is_while_let =
            toks[i].is_ident("while") && toks.get(i + 1).is_some_and(|t| t.is_ident("let"));
        if is_loop || is_while_let {
            if let Some(open) = find_body_open(toks, i + 1) {
                let close = matching_brace(toks, open);
                out.push((open + 1, close.saturating_sub(1)));
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Boundedness evidence for growth into `tail` anywhere in the body:
/// a shrink call on the same collection, a `len()` comparison, a
/// `with_capacity` allocation, or a ring-buffer impl.
fn growth_evidence(f: &FuncDef, toks: &[Token], tail: &str) -> bool {
    if f.impl_type.as_deref().is_some_and(|t| t.contains("Ring")) {
        return true;
    }
    let range = f.body_range();
    for k in range.clone() {
        if toks[k].is_ident("with_capacity") {
            return true;
        }
        if toks[k].is_punct('.') {
            let prev_is_tail = k >= 1 && toks[k - 1].is_ident(tail);
            let name = toks.get(k + 1).and_then(Token::ident).unwrap_or("");
            if prev_is_tail
                && SHRINK_METHODS.contains(&name)
                && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
            {
                return true;
            }
            if prev_is_tail
                && name == "len"
                && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(k + 3).is_some_and(|t| t.is_punct(')'))
                && toks
                    .get(k + 4)
                    .is_some_and(|t| t.is_punct('<') || t.is_punct('>') || t.is_punct('='))
            {
                return true;
            }
        }
    }
    false
}

/// A0017: collection growth in an unbounded loop of a function
/// reachable from a long-lived entry, with no capacity bound in sight.
pub(crate) fn unbounded_growth(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let entries: Vec<usize> = a
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test && ws.files[f.file].is_product(f.body_start) && is_long_lived_entry(&f.name)
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (gi, g) in a.funcs.iter().enumerate() {
        if g.is_test || !ws.files[g.file].is_product(g.body_start) {
            continue;
        }
        let Some(&entry) = entries.iter().find(|&&e| a.reach.reaches(e, gi)) else {
            continue;
        };
        let toks = &ws.files[g.file].tokens;
        for (rs, re) in unbounded_loop_regions(toks, g.body_range()) {
            for k in rs..re.min(toks.len()) {
                if !toks[k].is_punct('.') {
                    continue;
                }
                let name = toks.get(k + 1).and_then(Token::ident).unwrap_or("");
                if !GROWTH_METHODS.contains(&name)
                    || !toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                {
                    continue;
                }
                let recv = receiver_path(toks, k);
                if recv.len() < 2 {
                    continue; // locals are freed when the fn returns
                }
                let tail = recv.last().cloned().unwrap_or_default();
                if growth_evidence(g, toks, &tail) {
                    continue;
                }
                let mut path: Vec<PathStep> = product_chain(ws, a, entry, gi)
                    .into_iter()
                    .filter_map(|ci| {
                        let c = &a.calls[ci];
                        let callee = c.callee?;
                        Some(PathStep {
                            file: ws.files[c.file].rel.clone(),
                            line: c.line,
                            note: format!("calls `{}`", a.funcs[callee].qual),
                        })
                    })
                    .collect();
                path.push(PathStep {
                    file: g.rel.clone(),
                    line: toks[k].line,
                    note: format!("`{}.{name}(…)` grows without a bound", recv.join(".")),
                });
                out.push(Diagnostic {
                    file: g.rel.clone(),
                    line: toks[k].line,
                    code: "A0017",
                    message: format!(
                        "`{}.{name}(…)` grows inside an unbounded loop reachable from \
                         long-lived entry `{}` with no capacity bound, shrink, or ring",
                        recv.join("."),
                        a.funcs[entry].qual
                    ),
                    path,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// A0018: division by a possibly-zero abstract value
// ---------------------------------------------------------------------

/// The primary tokens of the divisor starting at `s` (`total`,
/// `self.capacity`, `x` of `x.len()`): returns (token indices, one past
/// the full postfix operand).
fn divisor_operand(toks: &[Token], s: usize) -> (Vec<usize>, usize) {
    let mut prim: Vec<usize> = Vec::new();
    let mut k = s;
    if toks.get(k).is_some_and(|t| t.is_punct('(')) {
        return (prim, matching_paren(toks, k));
    }
    match toks.get(k).map(|t| &t.tok) {
        Some(crate::lexer::Tok::Ident(w)) if w == "self" => {
            prim.push(k);
            if toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(k + 2).and_then(Token::ident).is_some()
            {
                prim.push(k + 1);
                prim.push(k + 2);
                k += 3;
            } else {
                k += 1;
            }
        }
        Some(crate::lexer::Tok::Ident(_)) | Some(crate::lexer::Tok::Num) => {
            prim.push(k);
            k += 1;
        }
        _ => return (prim, k),
    }
    // Postfix chain: `.name(args)` hops extend the operand but not the
    // primary.
    while toks.get(k).is_some_and(|t| t.is_punct('.'))
        && toks.get(k + 1).and_then(Token::ident).is_some()
    {
        if toks.get(k + 2).is_some_and(|t| t.is_punct('(')) {
            k = matching_paren(toks, k + 2);
        } else {
            prim.push(k + 1);
            k += 2;
        }
    }
    (prim, k)
}

/// Do the tokens at `[at..]` match the divisor's primary tokens?
fn seq_matches(toks: &[Token], at: usize, prim: &[usize]) -> bool {
    prim.iter()
        .enumerate()
        .all(|(o, &p)| toks.get(at + o).is_some_and(|t| t.tok == toks[p].tok))
}

/// Lexical refinements the interval domain cannot see: an early
/// `== 0` bail-out, a positive-guard block around the site, a prior
/// positive increment, or an `is_empty` check for `.len()` divisors.
fn divisor_refined(toks: &[Token], f: &FuncDef, prim: &[usize], site: usize) -> bool {
    if prim.is_empty() {
        return false;
    }
    let plen = prim.len();
    let range = f.body_range();
    for k in range.clone() {
        if k + plen >= toks.len() {
            break;
        }
        // `if <divisor> == 0 { …diverge… }` before the site.
        if toks[k].is_ident("if") && seq_matches(toks, k + 1, prim) {
            let after = k + 1 + plen;
            let eq0 = toks.get(after).is_some_and(|t| t.is_punct('='))
                && toks.get(after + 1).is_some_and(|t| t.is_punct('='))
                && toks
                    .get(after + 2)
                    .is_some_and(|t| matches!(t.tok, crate::lexer::Tok::Num));
            if eq0 && k < site {
                if let Some(open) = find_body_open(toks, after + 2) {
                    let close = matching_brace(toks, open);
                    let diverges = toks[open..close.min(toks.len())].iter().any(|t| {
                        t.is_ident("return") || t.is_ident("continue") || t.is_ident("break")
                    });
                    if diverges && close <= site {
                        return true;
                    }
                }
            }
            // `if <divisor> > 0 { … site … }` / `!= 0` / `>= n`.
            let positive = toks.get(after).is_some_and(|t| t.is_punct('>'))
                || (toks.get(after).is_some_and(|t| t.is_punct('!'))
                    && toks.get(after + 1).is_some_and(|t| t.is_punct('=')));
            if positive {
                if let Some(open) = find_body_open(toks, after) {
                    let close = matching_brace(toks, open);
                    if open < site && site < close {
                        return true;
                    }
                }
            }
        }
        // `<divisor> += <positive literal>` before the site.
        if k < site && seq_matches(toks, k, prim) {
            let after = k + plen;
            let plus = toks.get(after).is_some_and(|t| t.is_punct('+'))
                && toks
                    .get(after + 1)
                    .is_some_and(|t| t.is_punct('=') && t.span.0 == toks[after].span.1);
            if plus
                && toks
                    .get(after + 2)
                    .is_some_and(|t| matches!(t.tok, crate::lexer::Tok::Num))
            {
                return true;
            }
        }
    }
    // `.len()` divisor guarded by an `is_empty` check on the same base.
    let base: Vec<usize> = prim.to_vec();
    let len_div = {
        let last = *base.last().unwrap_or(&0);
        toks.get(last + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(last + 2).is_some_and(|t| t.is_ident("len"))
    };
    if len_div {
        for k in range {
            if seq_matches(toks, k, &base)
                && toks.get(k + base.len()).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(k + base.len() + 1)
                    .is_some_and(|t| t.is_ident("is_empty"))
            {
                return true;
            }
        }
    }
    false
}

/// A0018: `/` or `%` in histogram-bucket / rollup math where the
/// divisor's abstract value may contain zero.
pub(crate) fn div_by_zero(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.rel.starts_with("crates/obs/src/") {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !(toks[i].is_punct('/') || toks[i].is_punct('%')) || !file.is_product(i) {
                continue;
            }
            // `/=` compound divides don't occur in rollup math; skip.
            if toks.get(i + 1).is_some_and(|n| n.is_punct('=')) {
                continue;
            }
            let (ws_start, ws_end) = stmt_window(toks, i);
            // Float math is out of scope (f64 division never traps).
            let is_float = toks[ws_start..ws_end.min(toks.len())]
                .iter()
                .enumerate()
                .any(|(o, t)| {
                    t.is_ident("f64")
                        || t.is_ident("f32")
                        || (matches!(t.tok, crate::lexer::Tok::Num)
                            && raw_slice(file, toks, ws_start + o).contains('.'))
                });
            if is_float {
                continue;
            }
            let Some(owner) = a.func_at(fi, i) else {
                continue;
            };
            if a.funcs[owner].is_test {
                continue;
            }
            let (prim, operand_end) = divisor_operand(toks, i + 1);
            let env = env_at(ws, a, owner, i);
            let v = eval_expr(file, toks, i + 1, operand_end, &env, 0);
            if !v.is_empty() && !v.contains_zero() {
                continue;
            }
            if divisor_refined(toks, &a.funcs[owner], &prim, i) {
                continue;
            }
            let shown: String = prim
                .iter()
                .filter_map(|&p| match &toks[p].tok {
                    crate::lexer::Tok::Ident(w) => Some(w.as_str()),
                    crate::lexer::Tok::Punct('.') => Some("."),
                    _ => None,
                })
                .collect();
            out.push(Diagnostic {
                file: file.rel.clone(),
                line: toks[i].line,
                code: "A0018",
                message: format!(
                    "divisor `{}` may be zero here; guard it or clamp with `.max(1)`",
                    if shown.is_empty() { "<expr>" } else { &shown }
                ),
                path: Vec::new(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// A0019: DESIGN.md zero-cost claims must match the engine
// ---------------------------------------------------------------------

/// Marker heading of the DESIGN.md section A0019 audits.
pub const ZERO_COST_HEADING: &str = "### The zero-cost theorem";

/// A0019: every function DESIGN.md's zero-cost theorem names must
/// resolve to a workspace function the engine proves pure (on its
/// disabled path if gated, on every path otherwise).
pub(crate) fn design_sync(ws: &Workspace, a: &Analysis) -> Vec<Diagnostic> {
    let design = &ws.design;
    let Some(pos) = design.find(ZERO_COST_HEADING) else {
        return Vec::new();
    };
    let body_start = pos + ZERO_COST_HEADING.len();
    let section_end = design[body_start..]
        .find("\n#")
        .map(|o| body_start + o)
        .unwrap_or(design.len());
    let section = &design[body_start..section_end];
    let base_line = design[..body_start].matches('\n').count() as u32 + 1;
    let mut out = Vec::new();
    let mut rest = section;
    let mut offset = 0usize;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let claim = &after[..close];
        let claim_line = base_line + section[..offset + open].matches('\n').count() as u32;
        offset += open + close + 2;
        rest = &after[close + 1..];
        if !claim.contains("::") || claim.contains(' ') {
            continue;
        }
        let matches: Vec<usize> = a
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test && (f.qual == claim || f.qual.ends_with(&format!("::{claim}")))
            })
            .map(|(i, _)| i)
            .collect();
        if matches.is_empty() {
            out.push(Diagnostic {
                file: "DESIGN.md".to_owned(),
                line: claim_line,
                code: "A0019",
                message: format!(
                    "zero-cost theorem names `{claim}`, which resolves to no workspace function"
                ),
                path: Vec::new(),
            });
            continue;
        }
        for fi in matches {
            let s = &a.effects[fi];
            let (checked, which) = if s.has_gate {
                (s.off, "disabled path")
            } else {
                (s.full, "body")
            };
            if !checked.is_pure() {
                out.push(Diagnostic {
                    file: "DESIGN.md".to_owned(),
                    line: claim_line,
                    code: "A0019",
                    message: format!(
                        "zero-cost theorem claims `{}` but the engine cannot prove its {} \
                         effect-free (effects: {})",
                        a.funcs[fi].qual,
                        which,
                        checked.names().join(", ")
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn build(files: Vec<(&str, &str)>, design: &str) -> (Workspace, Analysis) {
        let ws = Workspace::from_sources(files, design);
        let a = Analysis::build(&ws);
        (ws, a)
    }

    fn summary_of<'a>(a: &'a Analysis, name: &str) -> &'a EffectSummary {
        let fi = a
            .funcs
            .iter()
            .position(|f| f.qual == name || f.qual.ends_with(&format!("::{name}")))
            .unwrap_or_else(|| panic!("no fn {name}"));
        &a.effects[fi]
    }

    // -- effect summaries -------------------------------------------------

    #[test]
    fn direct_effects_and_call_propagation() {
        let src = r#"
fn leaf() { let v = vec![1, 2]; }
fn mid() { leaf(); }
fn top() { mid(); }
fn quiet(x: u64) -> u64 { x + 1 }
"#;
        let (_ws, a) = build(vec![("crates/core/src/x.rs", src)], "");
        assert!(summary_of(&a, "leaf").full.has(EFFECT_ALLOC));
        assert!(summary_of(&a, "mid").full.has(EFFECT_ALLOC));
        assert!(summary_of(&a, "top").full.has(EFFECT_ALLOC));
        assert!(summary_of(&a, "quiet").full.is_pure());
    }

    #[test]
    fn recursive_component_reaches_fixpoint() {
        let src = r#"
fn ping(n: u64) { if n > 0 { pong(n - 1); } }
fn pong(n: u64) { println!("{n}"); ping(n); }
"#;
        let (_ws, a) = build(vec![("crates/core/src/x.rs", src)], "");
        assert!(summary_of(&a, "ping").full.has(EFFECT_IO));
        assert!(summary_of(&a, "pong").full.has(EFFECT_IO));
    }

    #[test]
    fn gated_effects_vanish_on_the_off_path() {
        let src = r#"
impl Observer {
    pub fn incr(&self, by: u64) {
        if self.is_enabled() {
            self.log.push(by);
        }
    }
}
"#;
        let (_ws, a) = build(vec![("crates/obs/src/observer.rs", src)], "");
        let s = summary_of(&a, "Observer::incr");
        assert!(s.has_gate);
        assert!(s.full.has(EFFECT_ALLOC));
        assert!(
            s.off.is_pure(),
            "off path must be pure: {:?}",
            s.off.names()
        );
    }

    #[test]
    fn if_let_some_inner_gate_masks_body() {
        let src = r#"
impl Prov {
    pub fn record(&mut self, id: u64) {
        if let Some(state) = &mut self.inner {
            state.rows.push(id);
        }
    }
}
"#;
        let (_ws, a) = build(vec![("crates/core/src/provenance.rs", src)], "");
        let s = summary_of(&a, "Prov::record");
        assert!(s.has_gate);
        assert!(s.off.is_pure());
        assert!(s.full.has(EFFECT_ALLOC));
    }

    // -- A0015 ------------------------------------------------------------

    #[test]
    fn a0015_fires_on_allocating_nocost_impl() {
        let src = r#"
impl CostAcc for NoCost {
    fn add(&mut self, n: u64) {
        let mut v = Vec::new();
        v.push(n);
    }
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/cost.rs", src)], "");
        let hits = zero_cost(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("NoCost"), "{hits:?}");
        assert!(hits[0].message.contains("allocate"), "{hits:?}");
    }

    #[test]
    fn a0015_fires_on_impure_disabled_path() {
        let src = r#"
impl Observer {
    pub fn incr(&mut self, n: u64) {
        self.log.push(n);
        if let Some(inner) = &self.inner {
            inner.count(n);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", src)], "");
        let hits = zero_cost(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("disabled path"), "{hits:?}");
    }

    #[test]
    fn a0015_clean_when_work_is_gated() {
        let src = r#"
impl Observer {
    pub fn incr(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.log.push(n);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", src)], "");
        assert!(zero_cost(&ws, &a).is_empty());
    }

    #[test]
    fn a0015_witness_chain_names_the_callee() {
        let src = r#"
impl CostAcc for NoCost {
    fn add(&mut self, n: u64) {
        helper(n);
    }
}
fn helper(n: u64) {
    let s = n.to_string();
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/cost.rs", src)], "");
        let hits = zero_cost(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(
            hits[0].path.iter().any(|s| s.note.contains("helper")),
            "witness chain should walk into helper: {:?}",
            hits[0].path
        );
    }

    #[test]
    fn a0015_closure_passed_to_gated_helper_is_off_path_pure() {
        let src = r#"
impl Prov {
    fn with_state(&mut self, f: impl FnOnce(&mut State)) {
        let inner = self.inner.as_mut()?;
        f(inner);
    }
    pub fn record(&mut self, id: u64) {
        self.with_state(|state| {
            state.rows.push(id);
        });
    }
}
"#;
        let (ws, a) = build(vec![("crates/core/src/provenance.rs", src)], "");
        let s = summary_of(&a, "Prov::record");
        assert!(s.has_gate, "call through a gated helper counts as gated");
        assert!(s.off.is_pure(), "off: {:?}", s.off.names());
        assert!(s.full.has(EFFECT_ALLOC));
        assert!(zero_cost(&ws, &a).is_empty());
    }

    // -- A0016 ------------------------------------------------------------

    #[test]
    fn a0016_fires_on_compound_add_to_counter() {
        let src = r#"
fn account(state: &mut State, drops: u64) {
    *state.counters.entry("obs.dropped").or_insert(0) += drops;
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/telemetry.rs", src)], "");
        let hits = counter_arith(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("saturating_add"), "{hits:?}");
    }

    #[test]
    fn a0016_clean_on_saturating_update() {
        let src = r#"
fn account(state: &mut State, drops: u64) {
    let slot = state.counters.entry("obs.dropped").or_insert(0);
    *slot = slot.saturating_add(drops);
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/telemetry.rs", src)], "");
        assert!(counter_arith(&ws, &a).is_empty());
    }

    #[test]
    fn a0016_narrowing_cast_needs_interval_proof() {
        let bad = r#"
fn pack(n: u64) -> (&'static str, u32) {
    let pair = ("cost.rows", n as u32);
    pair
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/cost.rs", bad)], "");
        let hits = counter_arith(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("truncating"), "{hits:?}");

        let good = r#"
fn pack() -> (&'static str, u32) {
    let small = 7;
    let pair = ("cost.rows", small as u32);
    pair
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/cost.rs", good)], "");
        assert!(counter_arith(&ws, &a).is_empty());
    }

    #[test]
    fn a0016_ignores_plain_arithmetic_outside_counter_windows() {
        let src = r#"
fn grow(agg: &mut Agg) {
    agg.count += 1;
}
"#;
        let (ws, a) = build(vec![("crates/query/src/exec.rs", src)], "");
        assert!(counter_arith(&ws, &a).is_empty());
    }

    // -- A0017 ------------------------------------------------------------

    #[test]
    fn a0017_fires_on_unbounded_growth_in_soak_loop() {
        let src = r#"
impl Soak {
    pub fn soak_run(&mut self) {
        loop {
            self.events.push(1);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/bench/src/soak.rs", src)], "");
        let hits = unbounded_growth(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("push"), "{hits:?}");
    }

    #[test]
    fn a0017_clean_with_shrink_evidence() {
        let src = r#"
impl Soak {
    pub fn soak_run(&mut self) {
        loop {
            self.events.push(1);
            if self.events.len() > 1024 {
                self.events.clear();
            }
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/bench/src/soak.rs", src)], "");
        assert!(unbounded_growth(&ws, &a).is_empty());
    }

    #[test]
    fn a0017_clean_on_ring_impls_and_short_entries() {
        let ring = r#"
impl Ring {
    pub fn watchdog_tick(&mut self) {
        loop {
            self.slots.push(1);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/ring.rs", ring)], "");
        assert!(
            unbounded_growth(&ws, &a).is_empty(),
            "Ring impls are bounded by design"
        );

        let short = r#"
impl Exec {
    pub fn run_query(&mut self) {
        loop {
            self.rows.push(1);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/query/src/exec.rs", short)], "");
        assert!(
            unbounded_growth(&ws, &a).is_empty(),
            "not a long-lived entry"
        );
    }

    #[test]
    fn a0017_witness_chain_crosses_calls() {
        let src = r#"
impl Daemon {
    pub fn run_forever(&mut self) {
        loop {
            self.step();
        }
    }
    fn step(&mut self) {
        loop {
            self.backlog.push(1);
        }
    }
}
"#;
        let (ws, a) = build(vec![("crates/bench/src/daemon.rs", src)], "");
        let hits = unbounded_growth(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(
            hits[0].path.len() >= 2,
            "chain should include the entry hop: {:?}",
            hits[0].path
        );
    }

    // -- A0018 ------------------------------------------------------------

    #[test]
    fn a0018_fires_on_unproven_divisor() {
        let src = r#"
fn bucket(n: u64, d: u64) -> u64 {
    n / d
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", src)], "");
        let hits = div_by_zero(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("may be zero"), "{hits:?}");
    }

    #[test]
    fn a0018_clean_on_clamped_or_guarded_divisors() {
        let src = r#"
fn clamped(n: u64, d: u64) -> u64 {
    n / d.max(1)
}
fn early(n: u64, d: u64) -> u64 {
    if d == 0 {
        return 0;
    }
    n / d
}
fn guarded(n: u64, d: u64) -> u64 {
    if d > 0 {
        return n / d;
    }
    0
}
fn constant(n: u64) -> u64 {
    let width = 64;
    n / width
}
"#;
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", src)], "");
        let hits = div_by_zero(&ws, &a);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn a0018_only_audits_obs_sources() {
        let src = "fn f(n: u64, d: u64) -> u64 { n / d }";
        let (ws, a) = build(vec![("crates/query/src/exec.rs", src)], "");
        assert!(div_by_zero(&ws, &a).is_empty());
    }

    // -- A0019 ------------------------------------------------------------

    const GATED_OBS: &str = r#"
impl Observer {
    pub fn incr(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.log.push(n);
        }
    }
    pub fn flush(&mut self) {
        let sink = self.sink.lock();
    }
}
"#;

    #[test]
    fn a0019_accepts_proven_claims_and_rejects_drift() {
        let clean = format!(
            "# doc\n\n{ZERO_COST_HEADING}\n\nWhen disabled, `Observer::incr` is pure.\n\n## next\n"
        );
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", GATED_OBS)], &clean);
        assert!(design_sync(&ws, &a).is_empty());

        let phantom =
            format!("# doc\n\n{ZERO_COST_HEADING}\n\n`Observer::vanish` is pure.\n\n## next\n");
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", GATED_OBS)], &phantom);
        let hits = design_sync(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0]
            .message
            .contains("resolves to no workspace function"));
    }

    #[test]
    fn a0019_rejects_unprovable_claims() {
        let design = format!(
            "# doc\n\n{ZERO_COST_HEADING}\n\n`Observer::flush` is claimed pure.\n\n## next\n"
        );
        let (ws, a) = build(vec![("crates/obs/src/observer.rs", GATED_OBS)], &design);
        let hits = design_sync(&ws, &a);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("cannot prove"), "{hits:?}");
    }

    #[test]
    fn a0019_no_heading_no_findings() {
        let (ws, a) = build(
            vec![("crates/obs/src/observer.rs", GATED_OBS)],
            "prose with `Observer::vanish` but no theorem heading",
        );
        assert!(design_sync(&ws, &a).is_empty());
    }
}
