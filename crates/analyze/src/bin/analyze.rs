//! The `analyze` CLI: lint the workspace, explore the checked-in
//! concurrency models.
//!
//! ```text
//! analyze --workspace [--root DIR] [--baseline FILE] [--json FILE] [--github]
//!                     [--rules A0001,A0002] [--effects]
//! analyze --list-rules
//! analyze --models
//! ```
//!
//! `--github` additionally emits one GitHub Actions workflow command
//! (`::warning file=…,line=…,title=CODE::message`) per violation, so CI
//! annotates the offending lines in the diff view; witness chains ride
//! along `%0A`-encoded in the message.
//!
//! `--rules` is an include filter: only the named rules run (unknown
//! codes are a usage error). `--effects` prints the per-function
//! zero-cost effect summary the v3 report exports — one line per
//! theorem-scoped function with its any-path and disabled-world effect
//! sets. `--list-rules` prints the rule catalog and exits.
//!
//! Exit status: 0 when clean, 1 on violations / stale baseline entries /
//! model-checker findings, 2 on usage or I/O errors.

use deepeye_analyze::model::demo;
use deepeye_analyze::{lint_report_json, Baseline, Workspace};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut github = false;
    let mut effects = false;
    let mut only: Option<BTreeSet<String>> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => mode = Some("workspace"),
            "--models" => mode = Some("models"),
            "--list-rules" => mode = Some("list-rules"),
            "--github" => github = true,
            "--effects" => effects = true,
            "--rules" => match it.next() {
                Some(v) => {
                    let set: BTreeSet<String> = v.split(',').map(|c| c.trim().to_owned()).collect();
                    for code in &set {
                        if !deepeye_analyze::rules::RULES.iter().any(|r| r.code == code) {
                            return usage(&format!("unknown rule code {code:?}"));
                        }
                    }
                    only = Some(set);
                }
                None => return usage("--rules needs a comma-separated list of codes"),
            },
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            "--json" => match it.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    match mode {
        Some("workspace") => run_lint(root, baseline_path, json_out, github, effects, only),
        Some("models") => run_models(),
        Some("list-rules") => run_list_rules(),
        _ => usage("pass --workspace, --models, or --list-rules"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("analyze: {err}");
    eprintln!("usage: analyze --workspace [--root DIR] [--baseline FILE] [--json FILE] [--github]");
    eprintln!("                           [--rules A0001,A0002] [--effects]");
    eprintln!("       analyze --list-rules");
    eprintln!("       analyze --models");
    ExitCode::from(2)
}

/// `--list-rules`: the catalog, one row per rule.
fn run_list_rules() -> ExitCode {
    for r in deepeye_analyze::rules::RULES {
        let kind = if r.interprocedural { "y" } else { "n" };
        println!("{}  interprocedural={}  {}", r.code, kind, r.summary);
    }
    ExitCode::SUCCESS
}

/// One GitHub Actions `::warning` workflow command for a finding. The
/// message is data inside a single-line command, so newlines (the
/// witness chain) are `%0A`-escaped per the workflow-command quoting
/// rules, and `%` itself first.
fn github_annotation(d: &deepeye_analyze::Diagnostic) -> String {
    let mut message = d.message.clone();
    for s in &d.path {
        message.push_str(&format!("\nat {}:{}: {}", s.file, s.line, s.note));
    }
    let message = message
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    format!(
        "::warning file={},line={},title={}::{}",
        d.file, d.line, d.code, message
    )
}

/// The workspace root: `--root`, or the manifest's grandparent (this
/// binary lives in `crates/analyze`).
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run_lint(
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    json_out: Option<PathBuf>,
    github: bool,
    effects: bool,
    only: Option<BTreeSet<String>>,
) -> ExitCode {
    let root = root.unwrap_or_else(default_root);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_file = baseline_path.unwrap_or_else(|| root.join("analyze.allow"));
    let baseline = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("analyze: {}: {e}", baseline_file.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // missing baseline = empty
    };
    let outcome = deepeye_analyze::lint::run_filtered(&ws, &baseline, only.as_ref());
    if effects {
        for row in &outcome.effects {
            let fmt = |list: &[&str]| {
                if list.is_empty() {
                    "pure".to_owned()
                } else {
                    list.join("+")
                }
            };
            println!(
                "effect: {} ({}:{}) gated={} full={} disabled={}",
                row.qual,
                row.file,
                row.line,
                row.gated,
                fmt(&row.effects),
                fmt(&row.disabled)
            );
        }
        let pure = outcome
            .effects
            .iter()
            .filter(|r| r.pure_when_disabled())
            .count();
        println!(
            "effects: {} function(s) in theorem scope, {} pure when disabled",
            outcome.effects.len(),
            pure
        );
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, lint_report_json(&outcome)) {
            eprintln!("analyze: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for d in &outcome.violations {
        println!("{d}");
        if github {
            println!("{}", github_annotation(d));
        }
    }
    for s in &outcome.stale {
        println!("stale baseline entry: {s}");
        if github {
            println!("::warning title=stale baseline entry::{s}");
        }
    }
    let rules_run = only
        .as_ref()
        .map_or(deepeye_analyze::rules::RULES.len(), BTreeSet::len);
    println!(
        "analyze: {} file(s), {} rule(s): {} violation(s), {} suppressed, {} stale baseline entr{}",
        outcome.files_scanned,
        rules_run,
        outcome.violations.len(),
        outcome.suppressed.len(),
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    );
    if outcome.violations.is_empty() && outcome.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_models() -> ExitCode {
    let mut ok = true;
    for report in demo::demo_reports() {
        println!("{report}");
        for race in &report.races {
            println!("  race: {race}");
        }
        for f in &report.failures {
            println!("  failure: {} (schedule {:?})", f.message, f.schedule);
        }
        ok &= report.ok() && report.executions >= demo::INTERLEAVING_TARGET;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::github_annotation;
    use deepeye_analyze::{Diagnostic, PathStep};

    #[test]
    fn annotation_escapes_the_witness_chain() {
        let d = Diagnostic {
            file: "crates/core/src/a.rs".into(),
            line: 3,
            code: "A0009",
            message: "API reaches 100% panic".into(),
            path: vec![PathStep {
                file: "crates/core/src/b.rs".into(),
                line: 9,
                note: "panic site".into(),
            }],
        };
        let ann = github_annotation(&d);
        assert!(ann.starts_with("::warning file=crates/core/src/a.rs,line=3,title=A0009::"));
        assert!(ann.contains("100%25 panic"), "{ann}");
        assert!(
            ann.contains("%0Aat crates/core/src/b.rs:9: panic site"),
            "{ann}"
        );
        assert!(!ann.contains('\n'), "one line per workflow command");
    }
}
