//! Checked-in models of this repo's concurrency patterns.
//!
//! Each function is a model the checker explores. The positive models
//! mirror real synchronization in `deepeye-obs` / `deepeye-core` and
//! must stay race-, deadlock-, and failure-free under every explored
//! interleaving; the negative models seed the exact bug class the
//! positives rule out and exist so the tests can prove the checker
//! *would* catch a regression (a detector nobody has seen fire is
//! untested).

use super::{explore_at_least, MemOrd, Report, Sim};

/// Floor on interleavings per checked-in model (acceptance criterion).
pub const INTERLEAVING_TARGET: usize = 1000;

/// Mirrors `Observer::incr` + span-sink push from three threads: an
/// atomic total bumped with `SeqCst` and a log vector guarded by a
/// mutex. Merge must lose nothing under any schedule.
pub fn counter_merge(sim: &mut Sim) {
    let total = sim.atomic_u64("counters.total", 0);
    let log = sim.cell("counters.log", Vec::<u64>::new());
    let m = sim.mutex("counters.lock");
    for t in 0..3u64 {
        let (total, log, m) = (total.clone(), log.clone(), m.clone());
        sim.spawn(move |ctx| {
            total.fetch_add(ctx, 1, MemOrd::SeqCst);
            m.lock(ctx);
            let mut v = log.load(ctx);
            v.push(t);
            log.store(ctx, v);
            m.unlock(ctx);
        });
    }
    if sim.run() {
        assert_eq!(total.final_value(), 3, "lost counter increment");
        let mut v = log.final_value();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2], "lost or duplicated log entry");
    }
}

/// Mirrors cross-thread `span_under` parenting: a stage span id is
/// published before a `Release`-ordered ready flag; workers that see
/// the flag must see the id, and every record they emit must parent to
/// it (or to the root when the flag was not yet visible).
pub fn span_parenting(sim: &mut Sim) {
    const STAGE_ID: u64 = 7;
    let stage = sim.atomic_u64("span.stage_id", 0);
    let ready = sim.atomic_u64("span.ready", 0);
    let recs = sim.cell("span.records", Vec::<(u64, Option<u64>)>::new());
    let m = sim.mutex("span.sink");
    {
        let (stage, ready) = (stage.clone(), ready.clone());
        sim.spawn(move |ctx| {
            stage.store(ctx, STAGE_ID, MemOrd::Relaxed);
            ready.store(ctx, 1, MemOrd::Release);
        });
    }
    for t in 1..3u64 {
        let (stage, ready, recs, m) = (stage.clone(), ready.clone(), recs.clone(), m.clone());
        sim.spawn(move |ctx| {
            let parent = if ready.load(ctx, MemOrd::Acquire) == 1 {
                Some(stage.load(ctx, MemOrd::Relaxed))
            } else {
                None
            };
            m.lock(ctx);
            let mut v = recs.load(ctx);
            v.push((t, parent));
            recs.store(ctx, v);
            m.unlock(ctx);
        });
    }
    if sim.run() {
        let recs = recs.final_value();
        assert_eq!(recs.len(), 2, "lost span record");
        for (_, parent) in recs {
            if let Some(p) = parent {
                assert_eq!(p, STAGE_ID, "record parented to a stale stage id");
            }
        }
    }
}

/// Mirrors the work partition in `exhaustive_top_k_parallel`: workers
/// fold disjoint chunks and merge partials through a `SeqCst` atomic.
/// The merged total must equal the sequential fold.
pub fn partition_merge(sim: &mut Sim) {
    let data: Vec<u64> = (1..=9).collect();
    let expected: u64 = data.iter().sum();
    let sum = sim.atomic_u64("partition.sum", 0);
    let done = sim.atomic_u64("partition.done", 0);
    for w in 0..3usize {
        let (sum, done) = (sum.clone(), done.clone());
        let chunk: Vec<u64> = data[w * 3..(w + 1) * 3].to_vec();
        sim.spawn(move |ctx| {
            let partial: u64 = chunk.iter().sum();
            sum.fetch_add(ctx, partial, MemOrd::SeqCst);
            done.fetch_add(ctx, 1, MemOrd::SeqCst);
        });
    }
    if sim.run() {
        assert_eq!(done.final_value(), 3);
        assert_eq!(
            sum.final_value(),
            expected,
            "partition merge lost a partial"
        );
    }
}

/// **Negative.** The acceptance-criteria seeded bug: the `SeqCst`
/// counter merge demoted to a plain load/add/store. Every interleaving
/// is a data race, and some lose an update.
pub fn seeded_rmw_bug(sim: &mut Sim) {
    let count = sim.cell("merge.count", 0u64);
    for _ in 0..2 {
        let count = count.clone();
        sim.spawn(move |ctx| {
            let v = count.load(ctx);
            count.store(ctx, v + 1);
        });
    }
    sim.run();
}

fn publish(sim: &mut Sim, flag_order: MemOrd) {
    let data = sim.cell("publish.data", 0u64);
    let flag = sim.atomic_u64("publish.flag", 0);
    {
        let (data, flag) = (data.clone(), flag.clone());
        sim.spawn(move |ctx| {
            data.store(ctx, 42);
            flag.store(ctx, 1, flag_order);
        });
    }
    {
        let (data, flag) = (data.clone(), flag.clone());
        sim.spawn(move |ctx| {
            if flag.load(ctx, MemOrd::Acquire) == 1 {
                let v = data.load(ctx);
                assert_eq!(v, 42);
            }
        });
    }
    sim.run();
}

/// **Negative.** Publication through a `Relaxed` flag: the reader can
/// observe the flag without inheriting the writer's clock, so the data
/// read is a race.
pub fn relaxed_publish_bug(sim: &mut Sim) {
    publish(sim, MemOrd::Relaxed);
}

/// Positive twin of [`relaxed_publish_bug`]: a `Release` store on the
/// flag makes the same pattern race-free.
pub fn release_publish_ok(sim: &mut Sim) {
    publish(sim, MemOrd::Release);
}

/// **Negative.** Classic ABBA lock-order inversion; some schedules
/// deadlock and the checker must say so.
pub fn abba_deadlock(sim: &mut Sim) {
    let a = sim.mutex("lock.a");
    let b = sim.mutex("lock.b");
    {
        let (a, b) = (a.clone(), b.clone());
        sim.spawn(move |ctx| {
            a.lock(ctx);
            b.lock(ctx);
            b.unlock(ctx);
            a.unlock(ctx);
        });
    }
    {
        let (a, b) = (a.clone(), b.clone());
        sim.spawn(move |ctx| {
            b.lock(ctx);
            a.lock(ctx);
            a.unlock(ctx);
            b.unlock(ctx);
        });
    }
    sim.run();
}

/// The positive models `analyze --models` runs and prints.
pub fn demo_reports() -> Vec<Report> {
    vec![
        explore_at_least("observer_counter_merge", INTERLEAVING_TARGET, counter_merge),
        explore_at_least("span_under_parenting", INTERLEAVING_TARGET, span_parenting),
        explore_at_least(
            "top_k_partition_merge",
            INTERLEAVING_TARGET,
            partition_merge,
        ),
    ]
}
