//! Shared-memory primitives with shadow state.
//!
//! Models manipulate [`MCell`] (plain memory), [`MAtomicU64`] (atomic
//! with an explicit [`MemOrd`]), and [`MMutex`] handles instead of the
//! real thing. Every access is (a) serialized through the scheduler —
//! one operation per turn — and (b) mirrored into *shadow state*: a
//! FastTrack-style vector-clock machine that flags data races the
//! moment two unordered accesses touch the same plain cell.
//!
//! The memory-order model is deliberately conservative and simple:
//! atomics are always single-copy atomic; `Release`-class stores
//! publish the writer's clock into the location, `Acquire`-class loads
//! join it — `Relaxed` transfers nothing. That is exactly enough to
//! catch the bugs this repo cares about (a `SeqCst` merge demoted to a
//! plain read-modify-write, publication through a relaxed flag) without
//! simulating store buffers.

use super::sched::Sched;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

/// Memory ordering for [`MAtomicU64`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrd {
    fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }
    fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
}

type Vc = Vec<u64>;

fn vc_join(into: &mut Vc, other: &Vc) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, v) in other.iter().enumerate() {
        if *v > into[i] {
            into[i] = *v;
        }
    }
}

/// Whether the event stamped `vc` (performed by thread `tid`) happens
/// before an observer whose clock is `now`.
fn ordered_before(vc: &Vc, tid: usize, now: &Vc) -> bool {
    vc.get(tid).copied().unwrap_or(0) <= now.get(tid).copied().unwrap_or(0)
}

#[derive(Default)]
struct CellMeta {
    label: &'static str,
    /// Last write: (thread, its clock at the write).
    last_write: Option<(usize, Vc)>,
    /// Latest read per thread since the last write.
    reads: Vec<(usize, Vc)>,
}

#[derive(Default)]
struct AtomicSlot {
    val: u64,
    /// Clock published by Release-class stores, joined by Acquire loads.
    sync_vc: Vc,
}

#[derive(Default)]
struct LockSlot {
    held: bool,
    /// Clock left behind by the last unlock.
    vc: Vc,
}

#[derive(Default)]
struct Shared {
    /// Per-thread vector clocks (sized when the run starts).
    vcs: Vec<Vc>,
    cells: Vec<CellMeta>,
    atomics: Vec<AtomicSlot>,
    locks: Vec<LockSlot>,
    races: Vec<String>,
    panics: Vec<String>,
}

impl Shared {
    fn note_race(&mut self, msg: String) {
        if !self.races.contains(&msg) {
            self.races.push(msg);
        }
    }
}

pub(super) struct SimInner {
    pub(super) sched: Sched,
    shared: Mutex<Shared>,
}

impl SimInner {
    fn shared(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Handed to every model thread; carries its scheduler identity.
pub struct ThreadCtx {
    pub(super) tid: usize,
}

impl ThreadCtx {
    /// This thread's 0-based id (handy for labelling pushed values).
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// A registered model-thread body, boxed for storage until [`Sim::run`].
type ThreadBody = Box<dyn FnOnce(&ThreadCtx) + Send + 'static>;

/// One model execution under construction: register shared state,
/// spawn threads, then [`Sim::run`].
pub struct Sim {
    inner: Arc<SimInner>,
    threads: Vec<ThreadBody>,
    ran_clean: bool,
}

impl Sim {
    pub(super) fn new(prefix: Vec<usize>, rng_seed: Option<u64>) -> Sim {
        Sim {
            inner: Arc::new(SimInner {
                sched: Sched::new(0, prefix, rng_seed),
                shared: Mutex::new(Shared::default()),
            }),
            threads: Vec::new(),
            ran_clean: true,
        }
    }

    /// A plain (non-atomic) shared cell. Unordered concurrent access is
    /// a data race and will be reported.
    pub fn cell<T: Clone + Send + 'static>(&mut self, label: &'static str, init: T) -> MCell<T> {
        let id = {
            let mut sh = self.inner.shared();
            sh.cells.push(CellMeta {
                label,
                ..CellMeta::default()
            });
            sh.cells.len() - 1
        };
        MCell {
            id,
            val: Arc::new(Mutex::new(init)),
            sim: Arc::clone(&self.inner),
        }
    }

    /// An atomic u64 with explicit memory orders.
    pub fn atomic_u64(&mut self, label: &'static str, init: u64) -> MAtomicU64 {
        let id = {
            let mut sh = self.inner.shared();
            sh.atomics.push(AtomicSlot {
                val: init,
                sync_vc: Vc::new(),
            });
            sh.atomics.len() - 1
        };
        let _ = label;
        MAtomicU64 {
            id,
            sim: Arc::clone(&self.inner),
        }
    }

    /// A model mutex: blocking, deadlock-detected, and a
    /// happens-before edge from each unlock to the next lock.
    pub fn mutex(&mut self, label: &'static str) -> MMutex {
        let id = {
            let mut sh = self.inner.shared();
            sh.locks.push(LockSlot::default());
            sh.locks.len() - 1
        };
        let _ = label;
        MMutex {
            id,
            sim: Arc::clone(&self.inner),
        }
    }

    /// Register a model thread. Nothing runs until [`Sim::run`].
    pub fn spawn(&mut self, body: impl FnOnce(&ThreadCtx) + Send + 'static) {
        self.threads.push(Box::new(body));
    }

    /// Execute the registered threads under the schedule. Returns `true`
    /// when the execution ran to completion (no deadlock, panic, or
    /// step overflow) — post-run assertions are only meaningful then.
    pub fn run(&mut self) -> bool {
        let n = self.threads.len();
        if n == 0 {
            return self.ran_clean;
        }
        {
            let mut sh = self.inner.shared();
            sh.vcs = vec![vec![0; n]; n];
        }
        self.inner.sched.reset_threads(n);
        self.inner.sched.start();
        let bodies: Vec<_> = self.threads.drain(..).collect();
        std::thread::scope(|scope| {
            for (tid, body) in bodies.into_iter().enumerate() {
                let inner = Arc::clone(&self.inner);
                scope.spawn(move || {
                    let guard = FinishGuard {
                        inner: Arc::clone(&inner),
                        tid,
                    };
                    let ctx = ThreadCtx { tid };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&ctx))) {
                        let msg = payload_msg(&payload);
                        inner
                            .shared()
                            .panics
                            .push(format!("t{tid} panicked: {msg}"));
                        inner.sched.abort();
                    }
                    drop(guard);
                });
            }
        });
        let out = self.inner.sched.outcome();
        self.ran_clean = !out.aborted;
        self.ran_clean
    }

    pub(super) fn harvest(&self) -> (Vec<String>, Vec<String>, super::sched::SchedOutcome) {
        let sh = self.inner.shared();
        (
            sh.races.clone(),
            sh.panics.clone(),
            self.inner.sched.outcome(),
        )
    }
}

struct FinishGuard {
    inner: Arc<SimInner>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.inner.sched.finish(self.tid);
    }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Plain shared memory; see [`Sim::cell`].
#[derive(Clone)]
pub struct MCell<T> {
    id: usize,
    val: Arc<Mutex<T>>,
    sim: Arc<SimInner>,
}

impl<T: Clone + Send + 'static> MCell<T> {
    pub fn load(&self, ctx: &ThreadCtx) -> T {
        if self.sim.sched.wait_for_turn(ctx.tid) {
            {
                let mut sh = self.sim.shared();
                sh.vcs[ctx.tid][ctx.tid] += 1;
                let now = sh.vcs[ctx.tid].clone();
                let meta = &mut sh.cells[self.id];
                let mut race = None;
                if let Some((wt, wvc)) = &meta.last_write {
                    if *wt != ctx.tid && !ordered_before(wvc, *wt, &now) {
                        race = Some(format!(
                            "data race on `{}`: read by t{} concurrent with write by t{wt}",
                            meta.label, ctx.tid
                        ));
                    }
                }
                match meta.reads.iter_mut().find(|(t, _)| *t == ctx.tid) {
                    Some((_, vc)) => *vc = now,
                    None => meta.reads.push((ctx.tid, now)),
                }
                if let Some(msg) = race {
                    sh.note_race(msg);
                }
            }
            let v = self.val.lock().unwrap_or_else(|p| p.into_inner()).clone();
            self.sim.sched.yield_turn(ctx.tid);
            v
        } else {
            // Aborted execution: raw passthrough so the thread can wind
            // down without scheduling.
            self.val.lock().unwrap_or_else(|p| p.into_inner()).clone()
        }
    }

    pub fn store(&self, ctx: &ThreadCtx, v: T) {
        if self.sim.sched.wait_for_turn(ctx.tid) {
            {
                let mut sh = self.sim.shared();
                sh.vcs[ctx.tid][ctx.tid] += 1;
                let now = sh.vcs[ctx.tid].clone();
                let meta = &mut sh.cells[self.id];
                let mut races = Vec::new();
                if let Some((wt, wvc)) = &meta.last_write {
                    if *wt != ctx.tid && !ordered_before(wvc, *wt, &now) {
                        races.push(format!(
                            "data race on `{}`: write by t{} concurrent with write by t{wt}",
                            meta.label, ctx.tid
                        ));
                    }
                }
                for (rt, rvc) in &meta.reads {
                    if *rt != ctx.tid && !ordered_before(rvc, *rt, &now) {
                        races.push(format!(
                            "data race on `{}`: write by t{} concurrent with read by t{rt}",
                            meta.label, ctx.tid
                        ));
                    }
                }
                meta.last_write = Some((ctx.tid, now));
                meta.reads.clear();
                for msg in races {
                    sh.note_race(msg);
                }
            }
            *self.val.lock().unwrap_or_else(|p| p.into_inner()) = v;
            self.sim.sched.yield_turn(ctx.tid);
        } else {
            *self.val.lock().unwrap_or_else(|p| p.into_inner()) = v;
        }
    }

    /// Read the settled value after [`Sim::run`] (no scheduling).
    pub fn final_value(&self) -> T {
        self.val.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// Atomic u64; see [`Sim::atomic_u64`].
#[derive(Clone)]
pub struct MAtomicU64 {
    id: usize,
    sim: Arc<SimInner>,
}

impl MAtomicU64 {
    pub fn load(&self, ctx: &ThreadCtx, ord: MemOrd) -> u64 {
        if !self.sim.sched.wait_for_turn(ctx.tid) {
            return self.sim.shared().atomics[self.id].val;
        }
        let v = {
            let mut sh = self.sim.shared();
            sh.vcs[ctx.tid][ctx.tid] += 1;
            if ord.acquires() {
                let sync = sh.atomics[self.id].sync_vc.clone();
                vc_join(&mut sh.vcs[ctx.tid], &sync);
            }
            sh.atomics[self.id].val
        };
        self.sim.sched.yield_turn(ctx.tid);
        v
    }

    pub fn store(&self, ctx: &ThreadCtx, v: u64, ord: MemOrd) {
        if !self.sim.sched.wait_for_turn(ctx.tid) {
            self.sim.shared().atomics[self.id].val = v;
            return;
        }
        {
            let mut sh = self.sim.shared();
            sh.vcs[ctx.tid][ctx.tid] += 1;
            if ord.releases() {
                let now = sh.vcs[ctx.tid].clone();
                vc_join(&mut sh.atomics[self.id].sync_vc, &now);
            }
            sh.atomics[self.id].val = v;
        }
        self.sim.sched.yield_turn(ctx.tid);
    }

    /// Atomic read-modify-write; returns the previous value.
    pub fn fetch_add(&self, ctx: &ThreadCtx, delta: u64, ord: MemOrd) -> u64 {
        if !self.sim.sched.wait_for_turn(ctx.tid) {
            let mut sh = self.sim.shared();
            let old = sh.atomics[self.id].val;
            sh.atomics[self.id].val = old.wrapping_add(delta);
            return old;
        }
        let old = {
            let mut sh = self.sim.shared();
            sh.vcs[ctx.tid][ctx.tid] += 1;
            if ord.acquires() {
                let sync = sh.atomics[self.id].sync_vc.clone();
                vc_join(&mut sh.vcs[ctx.tid], &sync);
            }
            if ord.releases() {
                let now = sh.vcs[ctx.tid].clone();
                vc_join(&mut sh.atomics[self.id].sync_vc, &now);
            }
            let old = sh.atomics[self.id].val;
            sh.atomics[self.id].val = old.wrapping_add(delta);
            old
        };
        self.sim.sched.yield_turn(ctx.tid);
        old
    }

    /// Read the settled value after [`Sim::run`].
    pub fn final_value(&self) -> u64 {
        self.sim.shared().atomics[self.id].val
    }
}

/// Model mutex; see [`Sim::mutex`]. Lock/unlock are explicit — a guard
/// type would hide exactly the bug class (guard lifetime) the models
/// are probing.
#[derive(Clone)]
pub struct MMutex {
    id: usize,
    sim: Arc<SimInner>,
}

impl MMutex {
    pub fn lock(&self, ctx: &ThreadCtx) {
        loop {
            if !self.sim.sched.wait_for_turn(ctx.tid) {
                return;
            }
            let acquired = {
                let mut sh = self.sim.shared();
                if sh.locks[self.id].held {
                    false
                } else {
                    sh.locks[self.id].held = true;
                    sh.vcs[ctx.tid][ctx.tid] += 1;
                    let vc = sh.locks[self.id].vc.clone();
                    vc_join(&mut sh.vcs[ctx.tid], &vc);
                    true
                }
            };
            if acquired {
                self.sim.sched.yield_turn(ctx.tid);
                return;
            }
            self.sim.sched.block_on(ctx.tid, self.id);
        }
    }

    pub fn unlock(&self, ctx: &ThreadCtx) {
        if !self.sim.sched.wait_for_turn(ctx.tid) {
            return;
        }
        {
            let mut sh = self.sim.shared();
            sh.vcs[ctx.tid][ctx.tid] += 1;
            let now = sh.vcs[ctx.tid].clone();
            let slot = &mut sh.locks[self.id];
            slot.held = false;
            slot.vc = now;
        }
        self.sim.sched.unblock(self.id);
        self.sim.sched.yield_turn(ctx.tid);
    }
}
