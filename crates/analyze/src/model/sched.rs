//! The deterministic cooperative scheduler.
//!
//! Model threads are real OS threads, but only **one runs at a time**:
//! every shared-memory operation first parks on [`Sched::wait_for_turn`]
//! and ends with [`Sched::yield_turn`], so the whole execution is
//! serialized by an explicit schedule. Each hand-off is a *choice point*
//! recorded as `(choice index, enabled count)`; the explorer replays a
//! chosen prefix and the DFS in [`crate::model::explore`] backtracks
//! over those records to enumerate every interleaving (or samples them
//! with a seeded xorshift in random mode).
//!
//! Termination discipline: a thread may only retire via [`Sched::finish`]
//! *while holding the turn*. Without that rule the enabled set at a
//! choice point would depend on OS timing (did the neighbour's guard
//! drop yet?), and replaying a recorded schedule would diverge.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Hard per-execution bound on choice points — a backstop against a
/// model that livelocks (correct models are far below it).
pub const STEP_CAP: usize = 10_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting on the lock with this id.
    Blocked(usize),
    Finished,
}

#[derive(Debug)]
struct St {
    status: Vec<Status>,
    /// The thread currently holding the turn.
    current: Option<usize>,
    /// Replay prefix: forced choice indices for the first decisions.
    prefix: Vec<usize>,
    /// Every decision made: (choice index, enabled count at that point).
    taken: Vec<(usize, usize)>,
    /// The thread ids actually scheduled, in order.
    trace: Vec<usize>,
    /// Random-mode xorshift state (`None` = deterministic DFS order).
    rng: Option<u64>,
    deadlock: bool,
    step_overflow: bool,
    abort: bool,
}

/// What one execution's schedule looked like, read back after the run.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    pub taken: Vec<(usize, usize)>,
    pub trace: Vec<usize>,
    pub deadlock: bool,
    pub step_overflow: bool,
    pub aborted: bool,
}

pub struct Sched {
    st: Mutex<St>,
    cv: Condvar,
}

impl Sched {
    pub fn new(n_threads: usize, prefix: Vec<usize>, rng_seed: Option<u64>) -> Sched {
        Sched {
            st: Mutex::new(St {
                status: vec![Status::Runnable; n_threads],
                current: None,
                prefix,
                taken: Vec::new(),
                trace: Vec::new(),
                rng: rng_seed.map(|s| s | 1), // xorshift state must be nonzero
                deadlock: false,
                step_overflow: false,
                abort: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, St> {
        self.st.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Size the thread table once the real count is known (at run
    /// time), keeping the replay prefix and rng state.
    pub fn reset_threads(&self, n: usize) {
        let mut st = self.lock();
        st.status = vec![Status::Runnable; n];
        st.current = None;
        st.taken.clear();
        st.trace.clear();
        st.deadlock = false;
        st.step_overflow = false;
        st.abort = false;
    }

    /// Make the first scheduling decision. Threads spawned afterwards
    /// park in [`wait_for_turn`] until their id comes up.
    pub fn start(&self) {
        let mut st = self.lock();
        pick_next(&mut st);
        self.cv.notify_all();
    }

    /// Park until this thread holds the turn. `false` means the
    /// execution aborted (deadlock, panic, or step overflow) and the
    /// caller should fall through without touching shadow state.
    pub fn wait_for_turn(&self, tid: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.abort {
                return false;
            }
            if st.current == Some(tid) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Give up the turn after one operation; the scheduler picks the
    /// next thread (possibly the same one).
    pub fn yield_turn(&self, tid: usize) {
        let mut st = self.lock();
        if st.abort || st.current != Some(tid) {
            return;
        }
        pick_next(&mut st);
        self.cv.notify_all();
    }

    /// Block on a lock: the thread leaves the enabled set until
    /// [`unblock`] runs for the same lock id.
    pub fn block_on(&self, tid: usize, lock_id: usize) {
        let mut st = self.lock();
        if st.abort {
            return;
        }
        st.status[tid] = Status::Blocked(lock_id);
        if st.current == Some(tid) {
            pick_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Wake every thread blocked on `lock_id`; they re-contend for the
    /// lock next time they are scheduled.
    pub fn unblock(&self, lock_id: usize) {
        let mut st = self.lock();
        for s in &mut st.status {
            if *s == Status::Blocked(lock_id) {
                *s = Status::Runnable;
            }
        }
    }

    /// Retire this thread. Waits for the turn first (see the module doc
    /// for why); on abort it just marks the slot finished.
    pub fn finish(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                st.status[tid] = Status::Finished;
                self.cv.notify_all();
                return;
            }
            if st.current == Some(tid) {
                st.status[tid] = Status::Finished;
                pick_next(&mut st);
                self.cv.notify_all();
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Abort the execution (thread panic); wakes every parked thread.
    pub fn abort(&self) {
        let mut st = self.lock();
        st.abort = true;
        self.cv.notify_all();
    }

    /// Read the schedule back after the run.
    pub fn outcome(&self) -> SchedOutcome {
        let st = self.lock();
        SchedOutcome {
            taken: st.taken.clone(),
            trace: st.trace.clone(),
            deadlock: st.deadlock,
            step_overflow: st.step_overflow,
            aborted: st.abort,
        }
    }
}

fn pick_next(st: &mut St) {
    let enabled: Vec<usize> = st
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if enabled.is_empty() {
        st.current = None;
        if st.status.iter().any(|s| matches!(s, Status::Blocked(_))) {
            // Someone still waits on a lock nobody can release.
            st.deadlock = true;
            st.abort = true;
        }
        return;
    }
    let k = st.taken.len();
    let choice = if k < st.prefix.len() {
        st.prefix[k].min(enabled.len() - 1)
    } else if let Some(state) = st.rng.as_mut() {
        (xorshift64(state) % enabled.len() as u64) as usize
    } else {
        0 // DFS explores the leftmost branch beyond the prefix
    };
    st.taken.push((choice, enabled.len()));
    let tid = enabled[choice];
    st.trace.push(tid);
    st.current = Some(tid);
    if st.taken.len() > STEP_CAP {
        st.step_overflow = true;
        st.abort = true;
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_schedule_is_deterministic() {
        let sched = Sched::new(1, Vec::new(), None);
        sched.start();
        assert!(sched.wait_for_turn(0));
        sched.yield_turn(0);
        assert!(sched.wait_for_turn(0));
        sched.finish(0);
        let out = sched.outcome();
        assert!(!out.aborted && !out.deadlock);
        assert_eq!(out.trace, vec![0, 0]);
        assert_eq!(out.taken, vec![(0, 1), (0, 1)]);
    }

    #[test]
    fn prefix_forces_the_other_branch() {
        // Two threads, prefix [1]: the first decision must pick t1.
        let sched = Sched::new(2, vec![1], None);
        sched.start();
        let st = sched.lock();
        assert_eq!(st.current, Some(1));
        assert_eq!(st.taken, vec![(1, 2)]);
    }

    #[test]
    fn all_blocked_is_a_deadlock() {
        let sched = Sched::new(2, Vec::new(), None);
        sched.start();
        sched.block_on(0, 7);
        sched.block_on(1, 8);
        let out = sched.outcome();
        assert!(out.deadlock);
        assert!(out.aborted);
        assert!(!sched.wait_for_turn(0), "abort unparks waiters");
    }
}
