//! A loom-lite concurrency model checker.
//!
//! [`explore`] runs a model function many times: each run registers
//! shared state and threads on a fresh [`Sim`], and the scheduler
//! serializes every shared-memory operation under one interleaving. In
//! [`Mode::Exhaustive`] a depth-first search over the recorded choice
//! points enumerates *every* (bounded) interleaving; [`Mode::Random`]
//! samples schedules from a seeded xorshift for cheap extra coverage.
//! Along the way the vector-clock shadow state reports data
//! races, the scheduler reports deadlocks, and panicking assertions
//! inside model threads (or after [`Sim::run`]) are caught and recorded
//! as failures with the schedule that produced them.
//!
//! This is not loom: no store buffers, no SeqCst global-order checking,
//! no partial-order reduction. It is the 500-line subset that catches
//! the bug classes this repo's hot paths can actually have — unordered
//! plain-memory access, publication through an insufficient memory
//! order, lock-order inversion — and every schedule it explores is
//! replayable from the `(choice, enabled)` trace.

pub mod demo;
mod sched;
mod sim;

pub use sim::{MAtomicU64, MCell, MMutex, MemOrd, Sim, ThreadCtx};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// How to drive the schedule search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// DFS over every choice point (complete up to `max_executions`).
    Exhaustive,
    /// Seeded pseudo-random schedules, `max_executions` of them.
    Random { seed: u64 },
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    pub mode: Mode,
    pub max_executions: usize,
}

impl Options {
    pub fn exhaustive(max_executions: usize) -> Options {
        Options {
            mode: Mode::Exhaustive,
            max_executions,
        }
    }
    pub fn random(seed: u64, max_executions: usize) -> Options {
        Options {
            mode: Mode::Random { seed },
            max_executions,
        }
    }
}

/// An execution that panicked (a model assertion fired), with the
/// schedule (thread ids in order) that produced it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub schedule: Vec<usize>,
    pub message: String,
}

/// The result of exploring one model.
#[derive(Debug, Clone)]
pub struct Report {
    pub name: String,
    /// Interleavings executed.
    pub executions: usize,
    /// Exhaustive mode only: the whole space fit under the cap.
    pub complete: bool,
    /// Distinct data races observed (deduplicated messages).
    pub races: Vec<String>,
    /// Assertion failures, with their schedules.
    pub failures: Vec<Failure>,
    /// Executions that ended with all live threads blocked.
    pub deadlocks: usize,
    /// Longest schedule seen (choice points).
    pub max_steps: usize,
}

impl Report {
    /// No races, no failed assertions, no deadlocks.
    pub fn ok(&self) -> bool {
        self.races.is_empty() && self.failures.is_empty() && self.deadlocks == 0
    }

    /// Fold another exploration of the same model into this report.
    pub fn merge(&mut self, other: Report) {
        self.executions += other.executions;
        for r in other.races {
            if !self.races.contains(&r) {
                self.races.push(r);
            }
        }
        self.failures.extend(other.failures);
        self.deadlocks += other.deadlocks;
        self.max_steps = self.max_steps.max(other.max_steps);
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model {}: {} interleavings{}, {} race(s), {} deadlock(s), {} assertion failure(s), max {} steps",
            self.name,
            self.executions,
            if self.complete { " (exhaustive)" } else { "" },
            self.races.len(),
            self.deadlocks,
            self.failures.len(),
            self.max_steps
        )
    }
}

/// Explore a model under many interleavings. The model function is
/// called once per execution; it must be deterministic apart from the
/// schedule (build state, spawn threads, `sim.run()`, then assert).
pub fn explore(name: &str, opts: &Options, model: impl Fn(&mut Sim)) -> Report {
    let mut report = Report {
        name: name.to_owned(),
        executions: 0,
        complete: false,
        races: Vec::new(),
        failures: Vec::new(),
        deadlocks: 0,
        max_steps: 0,
    };
    let mut prefix: Vec<usize> = Vec::new();
    for exec in 0..opts.max_executions {
        let (run_prefix, seed) = match opts.mode {
            Mode::Exhaustive => (std::mem::take(&mut prefix), None),
            Mode::Random { seed } => (
                Vec::new(),
                Some(
                    seed.wrapping_add(exec as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            ),
        };
        let mut sim = Sim::new(run_prefix, seed);
        let res = catch_unwind(AssertUnwindSafe(|| model(&mut sim)));
        let (races, panics, sched_out) = sim.harvest();
        report.executions += 1;
        report.max_steps = report.max_steps.max(sched_out.trace.len());
        for r in races {
            if !report.races.contains(&r) {
                report.races.push(r);
            }
        }
        for p in panics {
            report.failures.push(Failure {
                schedule: sched_out.trace.clone(),
                message: p,
            });
        }
        if sched_out.deadlock {
            report.deadlocks += 1;
        }
        if sched_out.step_overflow {
            report.failures.push(Failure {
                schedule: sched_out.trace.clone(),
                message: format!("schedule exceeded {} choice points", sched::STEP_CAP),
            });
        }
        if let Err(payload) = res {
            report.failures.push(Failure {
                schedule: sched_out.trace.clone(),
                message: sim_panic_msg(payload.as_ref()),
            });
        }
        match opts.mode {
            Mode::Random { .. } => {}
            Mode::Exhaustive => {
                // Backtrack: bump the deepest choice that still has an
                // unexplored sibling.
                let taken = sched_out.taken;
                let mut next = None;
                for k in (0..taken.len()).rev() {
                    if taken[k].0 + 1 < taken[k].1 {
                        next = Some(k);
                        break;
                    }
                }
                match next {
                    Some(k) => {
                        prefix = taken[..k].iter().map(|t| t.0).collect();
                        prefix.push(taken[k].0 + 1);
                    }
                    None => {
                        report.complete = true;
                        break;
                    }
                }
            }
        }
    }
    report
}

/// Exhaustive exploration topped up with seeded-random schedules until
/// at least `target` interleavings ran — the acceptance floor the
/// checked-in models use is 1000.
pub fn explore_at_least(name: &str, target: usize, model: impl Fn(&mut Sim)) -> Report {
    let mut report = explore(name, &Options::exhaustive(target), &model);
    if !report.complete || report.executions < target {
        // Small spaces: top up to the target. Spaces the DFS cap cut
        // short: add seeded-random schedules anyway — the DFS tail only
        // varies late choices, random ones restore diversity.
        let extra = target.saturating_sub(report.executions).max(target / 2);
        report.merge(explore(
            name,
            &Options::random(0x5EED_0000 + target as u64, extra),
            &model,
        ));
    }
    report
}

fn sim_panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
