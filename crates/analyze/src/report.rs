//! JSON export of lint results, and its validating reader.
//!
//! The emitting and consuming sides live together so they cannot drift:
//! [`lint_report_json`] serializes a [`LintOutcome`] and
//! [`validate_lint_report`] (also reachable through
//! `trace_check --lint-report`) re-parses the document, checks the
//! schema, and enforces the stable (file, line, code) diagnostic
//! ordering that downstream diffing relies on.

use crate::lint::{Diagnostic, LintOutcome};
use deepeye_obs::json::{escape, parse_json, Json};
use std::fmt::Write as _;

/// Schema version stamped into every report. Version 2 added the
/// `callgraph` coverage object and per-diagnostic `path` witness chains;
/// version 3 adds per-rule `interprocedural` flags and the `effects`
/// array of per-function zero-cost summaries.
pub const REPORT_VERSION: u64 = 3;

/// Effect names the v3 `effects` array may carry, in emission order.
pub const EFFECT_NAMES: [&str; 4] = ["alloc", "lock", "io", "panic"];

/// Serialize a lint outcome as a machine-readable report.
///
/// Shape:
/// ```json
/// {
///   "version": 3,
///   "rules": [{"code": "A0001", "summary": "...", "interprocedural": false}, ...],
///   "callgraph": {"functions": 0, "calls": 0, "resolved": 0, "blocks": 0, "edges": 0},
///   "effects": [{"qual": "obs::observer::Observer::incr", "file": "...", "line": 3,
///                "gated": true, "pure_when_disabled": true,
///                "effects": ["alloc", "lock"], "disabled": []}, ...],
///   "diagnostics": [{"code": "...", "file": "...", "line": 3, "message": "...",
///                    "path": [{"file": "...", "line": 7, "note": "..."}]}, ...],
///   "suppressed": [...same shape...],
///   "summary": {"files_scanned": 40, "violations": 0, "suppressed": 0, "stale_baseline": 0}
/// }
/// ```
///
/// `path` is present only on interprocedural findings; the `callgraph`
/// totals let report diffs show analysis-coverage drift (e.g. a lexer
/// regression that silently drops functions); `effects` is the exported
/// zero-cost proof — one row per function the theorem covers, with the
/// any-path and disabled-world effect sets.
pub fn lint_report_json(outcome: &LintOutcome) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"version\": {REPORT_VERSION},\n  \"rules\": [");
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"summary\": \"{}\", \"interprocedural\": {}}}",
            r.code,
            escape(r.summary),
            r.interprocedural
        );
    }
    out.push_str("\n  ],\n");
    let cg = &outcome.callgraph;
    let _ = writeln!(
        out,
        "  \"callgraph\": {{\"functions\": {}, \"calls\": {}, \"resolved\": {}, \"blocks\": {}, \"edges\": {}}},",
        cg.functions, cg.calls, cg.resolved, cg.blocks, cg.edges
    );
    let _ = write!(out, "  \"effects\": [");
    for (i, row) in outcome.effects.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let names = |list: &[&str]| {
            list.iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = write!(
            out,
            "\n    {{\"qual\": \"{}\", \"file\": \"{}\", \"line\": {}, \"gated\": {}, \
             \"pure_when_disabled\": {}, \"effects\": [{}], \"disabled\": [{}]}}",
            escape(&row.qual),
            escape(&row.file),
            row.line,
            row.gated,
            row.pure_when_disabled(),
            names(&row.effects),
            names(&row.disabled)
        );
    }
    if outcome.effects.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    emit_diag_array(&mut out, "diagnostics", &outcome.violations);
    out.push_str(",\n");
    emit_diag_array(&mut out, "suppressed", &outcome.suppressed);
    let _ = write!(
        out,
        ",\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"suppressed\": {}, \"stale_baseline\": {}}}\n}}\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    out
}

fn emit_diag_array(out: &mut String, key: &str, diags: &[Diagnostic]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            d.code,
            escape(&d.file),
            d.line,
            escape(&d.message)
        );
        if d.path.is_empty() {
            out.push('}');
        } else {
            out.push_str(", \"path\": [");
            for (j, s) in d.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"file\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                    escape(&s.file),
                    s.line,
                    escape(&s.note)
                );
            }
            out.push_str("\n    ]}");
        }
    }
    if diags.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

/// What a validated report contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    pub rules: usize,
    pub diagnostics: usize,
    pub suppressed: usize,
    pub files_scanned: u64,
    /// Function definitions the call-graph pass extracted.
    pub functions: u64,
    /// Call sites found / resolved to a workspace function.
    pub calls: u64,
    pub resolved: u64,
    /// Rows in the `effects` array (zero-cost theorem scope).
    pub effect_rows: usize,
    /// Rows whose disabled-world effect set is empty.
    pub pure_when_disabled: usize,
}

/// Validate a lint-report JSON document.
///
/// Checks: parseable; `version` is the supported schema version; every
/// rule entry has a well-formed `Axxxx` code and a summary; every
/// diagnostic has `code`/`file`/`line`/`message` with a code drawn from
/// the rule list; any `path` witness chain is a non-empty array of
/// well-formed `{file, line, note}` steps; the diagnostics array is
/// sorted by (file, line, code) with no duplicates — the stable order
/// the emitter guarantees; and the `callgraph` coverage object carries
/// consistent counts (`resolved` ≤ `calls`, `edges` only with `blocks`).
pub fn validate_lint_report(text: &str) -> Result<ReportSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("lint report: {e}"))?;
    let version = doc
        .get("version")
        .and_then(Json::as_f64)
        .ok_or("lint report: missing numeric `version`")?;
    if version != REPORT_VERSION as f64 {
        return Err(format!(
            "lint report: unsupported version {version} (expected {REPORT_VERSION})"
        ));
    }

    let rules = doc
        .get("rules")
        .and_then(Json::as_array)
        .ok_or("lint report: missing `rules` array")?;
    let mut codes: Vec<&str> = Vec::new();
    for (i, r) in rules.iter().enumerate() {
        let code = r
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lint report: rules[{i}] missing `code`"))?;
        if code.len() != 5
            || !code.starts_with('A')
            || !code[1..].chars().all(|c| c.is_ascii_digit())
        {
            return Err(format!("lint report: rules[{i}] bad code {code:?}"));
        }
        if r.get("summary").and_then(Json::as_str).is_none() {
            return Err(format!("lint report: rules[{i}] missing `summary`"));
        }
        if r.get("interprocedural").and_then(Json::as_bool).is_none() {
            return Err(format!(
                "lint report: rules[{i}] missing boolean `interprocedural`"
            ));
        }
        codes.push(code);
    }
    if codes.is_empty() {
        return Err("lint report: empty rule catalog".to_owned());
    }

    // The `effects` array: the exported zero-cost proof. Every row names
    // effects from the fixed vocabulary, `disabled` is a subset of
    // `effects`, the headline boolean agrees with the set, and rows are
    // strictly sorted by (qual, file, line).
    let effect_items = doc
        .get("effects")
        .and_then(Json::as_array)
        .ok_or("lint report: missing `effects` array")?;
    let mut effect_rows = 0usize;
    let mut pure_when_disabled = 0usize;
    let mut prev_row: Option<(String, String, u64)> = None;
    for (i, row) in effect_items.iter().enumerate() {
        let qual = row
            .get("qual")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lint report: effects[{i}] missing `qual`"))?;
        let file = row
            .get("file")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lint report: effects[{i}] missing `file`"))?;
        let line = row
            .get("line")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("lint report: effects[{i}] missing numeric `line`"))?;
        if line < 1.0 || line.fract() != 0.0 {
            return Err(format!("lint report: effects[{i}] bad line {line}"));
        }
        if row.get("gated").and_then(Json::as_bool).is_none() {
            return Err(format!("lint report: effects[{i}] missing boolean `gated`"));
        }
        let pure = row
            .get("pure_when_disabled")
            .and_then(Json::as_bool)
            .ok_or_else(|| {
                format!("lint report: effects[{i}] missing boolean `pure_when_disabled`")
            })?;
        let mut sets: [Vec<String>; 2] = [Vec::new(), Vec::new()];
        for (slot, key) in sets.iter_mut().zip(["effects", "disabled"]) {
            let list = row
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("lint report: effects[{i}] missing `{key}` array"))?;
            let mut last: Option<usize> = None;
            for v in list {
                let name = v
                    .as_str()
                    .ok_or_else(|| format!("lint report: effects[{i}].{key} non-string entry"))?;
                let Some(pos) = EFFECT_NAMES.iter().position(|n| *n == name) else {
                    return Err(format!(
                        "lint report: effects[{i}].{key} unknown effect {name:?}"
                    ));
                };
                if last.is_some_and(|l| l >= pos) {
                    return Err(format!(
                        "lint report: effects[{i}].{key} not in canonical order"
                    ));
                }
                last = Some(pos);
                slot.push(name.to_owned());
            }
        }
        let [full, disabled] = sets;
        if disabled.iter().any(|d| !full.contains(d)) {
            return Err(format!(
                "lint report: effects[{i}] `disabled` is not a subset of `effects`"
            ));
        }
        if pure != disabled.is_empty() {
            return Err(format!(
                "lint report: effects[{i}] `pure_when_disabled` disagrees with `disabled`"
            ));
        }
        let this = (qual.to_owned(), file.to_owned(), line as u64);
        if let Some(p) = &prev_row {
            if *p >= this {
                return Err(format!(
                    "lint report: `effects` not strictly sorted by (qual, file, line) at index {i}"
                ));
            }
        }
        prev_row = Some(this);
        effect_rows += 1;
        if pure {
            pure_when_disabled += 1;
        }
    }

    let mut diagnostics = 0usize;
    let mut suppressed = 0usize;
    for key in ["diagnostics", "suppressed"] {
        let items = doc
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("lint report: missing `{key}` array"))?;
        let mut prev: Option<(String, u64, String)> = None;
        for (i, d) in items.iter().enumerate() {
            let code = d
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `code`"))?;
            if !codes.contains(&code) {
                return Err(format!(
                    "lint report: {key}[{i}] code {code:?} not in the rule catalog"
                ));
            }
            let file = d
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `file`"))?;
            let line = d
                .get("line")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing numeric `line`"))?;
            if line < 1.0 || line.fract() != 0.0 {
                return Err(format!("lint report: {key}[{i}] bad line {line}"));
            }
            if d.get("message").and_then(Json::as_str).is_none() {
                return Err(format!("lint report: {key}[{i}] missing `message`"));
            }
            if let Some(path) = d.get("path") {
                let steps = path
                    .as_array()
                    .ok_or_else(|| format!("lint report: {key}[{i}] `path` is not an array"))?;
                if steps.is_empty() {
                    return Err(format!(
                        "lint report: {key}[{i}] `path` must be omitted when empty"
                    ));
                }
                for (j, s) in steps.iter().enumerate() {
                    if s.get("file").and_then(Json::as_str).is_none() {
                        return Err(format!("lint report: {key}[{i}].path[{j}] missing `file`"));
                    }
                    let sl = s.get("line").and_then(Json::as_f64).ok_or_else(|| {
                        format!("lint report: {key}[{i}].path[{j}] missing numeric `line`")
                    })?;
                    if sl < 1.0 || sl.fract() != 0.0 {
                        return Err(format!("lint report: {key}[{i}].path[{j}] bad line {sl}"));
                    }
                    if s.get("note").and_then(Json::as_str).is_none() {
                        return Err(format!("lint report: {key}[{i}].path[{j}] missing `note`"));
                    }
                }
            }
            let this = (file.to_owned(), line as u64, code.to_owned());
            if let Some(p) = &prev {
                if *p >= this {
                    return Err(format!(
                        "lint report: `{key}` not strictly sorted by (file, line, code) at index {i}"
                    ));
                }
            }
            prev = Some(this);
        }
        if key == "diagnostics" {
            diagnostics = items.len();
        } else {
            suppressed = items.len();
        }
    }

    let callgraph = doc
        .get("callgraph")
        .ok_or("lint report: missing `callgraph` object")?;
    let mut counts = [0u64; 5];
    for (slot, field) in
        counts
            .iter_mut()
            .zip(["functions", "calls", "resolved", "blocks", "edges"])
    {
        let v = callgraph
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("lint report: callgraph missing numeric `{field}`"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("lint report: callgraph `{field}` is not a count"));
        }
        *slot = v as u64;
    }
    let [functions, calls, resolved, blocks, edges] = counts;
    if resolved > calls {
        return Err(format!(
            "lint report: callgraph resolves {resolved} of {calls} calls"
        ));
    }
    if blocks == 0 && edges > 0 {
        return Err("lint report: callgraph has edges but no blocks".to_owned());
    }

    let summary = doc
        .get("summary")
        .ok_or("lint report: missing `summary` object")?;
    let files_scanned = summary
        .get("files_scanned")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `files_scanned`")?;
    let claimed = summary
        .get("violations")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `violations`")?;
    if claimed as usize != diagnostics {
        return Err(format!(
            "lint report: summary claims {claimed} violations but `diagnostics` has {diagnostics}"
        ));
    }
    Ok(ReportSummary {
        rules: codes.len(),
        diagnostics,
        suppressed,
        files_scanned: files_scanned as u64,
        functions,
        calls,
        resolved,
        effect_rows,
        pure_when_disabled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{run, Baseline, Workspace};

    fn outcome_with_violation() -> LintOutcome {
        let ws = Workspace::from_sources(
            vec![
                (
                    "crates/core/src/b.rs",
                    "fn f() { std::thread::spawn(|| {}); }",
                ),
                ("crates/core/src/a.rs", "use std::time::Instant;"),
            ],
            "",
        );
        run(&ws, &Baseline::default())
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.rules, crate::rules::RULES.len());
        assert_eq!(summary.diagnostics, 2);
        assert_eq!(summary.files_scanned, 2);
        assert_eq!(summary.functions, outcome.callgraph.functions as u64);
        assert!(summary.resolved <= summary.calls);
    }

    #[test]
    fn witness_paths_roundtrip() {
        use crate::lint::{CallGraphSummary, PathStep};
        let outcome = LintOutcome {
            violations: vec![Diagnostic {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                code: "A0009",
                message: "reaches a panic".into(),
                path: vec![
                    PathStep {
                        file: "crates/core/src/a.rs".into(),
                        line: 3,
                        note: "public API `core::a::api`".into(),
                    },
                    PathStep {
                        file: "crates/core/src/b.rs".into(),
                        line: 9,
                        note: "panic site".into(),
                    },
                ],
            }],
            suppressed: Vec::new(),
            stale: Vec::new(),
            files_scanned: 2,
            callgraph: CallGraphSummary {
                functions: 2,
                calls: 1,
                resolved: 1,
                blocks: 4,
                edges: 3,
            },
            effects: Vec::new(),
        };
        let json = lint_report_json(&outcome);
        assert!(json.contains("\"path\": ["), "{json}");
        assert!(json.contains("\"note\": \"panic site\""), "{json}");
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.diagnostics, 1);
        assert_eq!(summary.calls, 1);
    }

    #[test]
    fn report_orders_diagnostics_stably() {
        // Files were supplied b-then-a; the report must come out a-then-b.
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "diagnostics sorted by file");
    }

    #[test]
    fn empty_outcome_validates() {
        let ws = Workspace::from_sources(vec![("crates/core/src/a.rs", "fn f() {}")], "");
        let json = lint_report_json(&run(&ws, &Baseline::default()));
        let summary = validate_lint_report(&json).expect("valid");
        assert_eq!(summary.diagnostics, 0);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_lint_report("not json").is_err());
        assert!(validate_lint_report("{}").is_err());
        // Unsupported schema version.
        assert!(validate_lint_report(
            r#"{"version": 99, "rules": [], "diagnostics": [], "suppressed": [], "summary": {}}"#
        )
        .expect_err("bad version")
        .contains("version"));
        // Unknown diagnostic code.
        let bad = r#"{
            "version": 3,
            "rules": [{"code": "A0001", "summary": "s", "interprocedural": false}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "effects": [],
            "diagnostics": [{"code": "A9999", "file": "x.rs", "line": 1, "message": "m"}],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 1, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(bad)
            .expect_err("bad code")
            .contains("A9999"));
        // Unsorted diagnostics.
        let unsorted = r#"{
            "version": 3,
            "rules": [{"code": "A0001", "summary": "s", "interprocedural": false}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "effects": [],
            "diagnostics": [
                {"code": "A0001", "file": "b.rs", "line": 1, "message": "m"},
                {"code": "A0001", "file": "a.rs", "line": 1, "message": "m"}
            ],
            "suppressed": [],
            "summary": {"files_scanned": 2, "violations": 2, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(unsorted)
            .expect_err("unsorted")
            .contains("sorted"));
        // Summary count mismatch.
        let mismatch = r#"{
            "version": 3,
            "rules": [{"code": "A0001", "summary": "s", "interprocedural": false}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "effects": [],
            "diagnostics": [],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 3, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(mismatch)
            .expect_err("mismatch")
            .contains("claims"));
        // Missing or inconsistent callgraph coverage.
        let no_cg = r#"{
            "version": 3,
            "rules": [{"code": "A0001", "summary": "s", "interprocedural": false}],
            "effects": [],
            "diagnostics": [],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 0, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(no_cg)
            .expect_err("missing callgraph")
            .contains("callgraph"));
        let over_resolved = no_cg.replace(
            "\"diagnostics\"",
            "\"callgraph\": {\"functions\": 1, \"calls\": 2, \"resolved\": 3, \"blocks\": 1, \"edges\": 0}, \"diagnostics\"",
        );
        assert!(validate_lint_report(&over_resolved)
            .expect_err("resolved > calls")
            .contains("resolves"));
        // Malformed witness path.
        let bad_path = r#"{
            "version": 3,
            "rules": [{"code": "A0001", "summary": "s", "interprocedural": false}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "effects": [],
            "diagnostics": [{"code": "A0001", "file": "x.rs", "line": 1, "message": "m",
                             "path": [{"file": "x.rs", "line": 1}]}],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 1, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(bad_path)
            .expect_err("path step missing note")
            .contains("note"));
    }

    #[test]
    fn validator_checks_effect_rows() {
        let frame = |rows: &str| {
            format!(
                r#"{{
            "version": 3,
            "rules": [{{"code": "A0001", "summary": "s", "interprocedural": false}}],
            "callgraph": {{"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0}},
            "effects": [{rows}],
            "diagnostics": [],
            "suppressed": [],
            "summary": {{"files_scanned": 1, "violations": 0, "suppressed": 0, "stale_baseline": 0}}
        }}"#
            )
        };
        let good = frame(
            r#"{"qual": "obs::f", "file": "crates/obs/src/x.rs", "line": 3, "gated": true,
                "pure_when_disabled": true, "effects": ["alloc", "lock"], "disabled": []}"#,
        );
        let summary = validate_lint_report(&good).expect("valid");
        assert_eq!(summary.effect_rows, 1);
        assert_eq!(summary.pure_when_disabled, 1);
        // Unknown effect name.
        let bad_name = frame(
            r#"{"qual": "obs::f", "file": "x.rs", "line": 3, "gated": true,
                "pure_when_disabled": true, "effects": ["teleport"], "disabled": []}"#,
        );
        assert!(validate_lint_report(&bad_name)
            .expect_err("unknown effect")
            .contains("teleport"));
        // `disabled` must be a subset of `effects`.
        let not_subset = frame(
            r#"{"qual": "obs::f", "file": "x.rs", "line": 3, "gated": true,
                "pure_when_disabled": false, "effects": ["alloc"], "disabled": ["io"]}"#,
        );
        assert!(validate_lint_report(&not_subset)
            .expect_err("not a subset")
            .contains("subset"));
        // The headline boolean must agree with the set.
        let lying = frame(
            r#"{"qual": "obs::f", "file": "x.rs", "line": 3, "gated": true,
                "pure_when_disabled": true, "effects": ["alloc"], "disabled": ["alloc"]}"#,
        );
        assert!(validate_lint_report(&lying)
            .expect_err("boolean disagrees")
            .contains("disagrees"));
        // Rows must be strictly sorted by (qual, file, line).
        let unsorted = frame(
            r#"{"qual": "obs::g", "file": "x.rs", "line": 3, "gated": false,
                "pure_when_disabled": true, "effects": [], "disabled": []},
               {"qual": "obs::f", "file": "x.rs", "line": 1, "gated": false,
                "pure_when_disabled": true, "effects": [], "disabled": []}"#,
        );
        assert!(validate_lint_report(&unsorted)
            .expect_err("unsorted rows")
            .contains("sorted"));
    }

    #[test]
    fn real_effect_rows_export_and_validate() {
        let ws = Workspace::from_sources(
            vec![(
                "crates/obs/src/observer.rs",
                r#"
impl Observer {
    pub fn incr(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.log.push(n);
        }
    }
}
"#,
            )],
            "",
        );
        let outcome = run(&ws, &Baseline::default());
        assert_eq!(outcome.effects.len(), 1, "one theorem-scoped fn");
        assert!(outcome.effects[0].gated);
        assert!(outcome.effects[0].pure_when_disabled());
        let json = lint_report_json(&outcome);
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.effect_rows, 1);
        assert_eq!(summary.pure_when_disabled, 1);
    }
}
