//! JSON export of lint results, and its validating reader.
//!
//! The emitting and consuming sides live together so they cannot drift:
//! [`lint_report_json`] serializes a [`LintOutcome`] and
//! [`validate_lint_report`] (also reachable through
//! `trace_check --lint-report`) re-parses the document, checks the
//! schema, and enforces the stable (file, line, code) diagnostic
//! ordering that downstream diffing relies on.

use crate::lint::{Diagnostic, LintOutcome};
use deepeye_obs::json::{escape, parse_json, Json};
use std::fmt::Write as _;

/// Schema version stamped into every report. Version 2 added the
/// `callgraph` coverage object and per-diagnostic `path` witness chains.
pub const REPORT_VERSION: u64 = 2;

/// Serialize a lint outcome as a machine-readable report.
///
/// Shape:
/// ```json
/// {
///   "version": 2,
///   "rules": [{"code": "A0001", "summary": "..."}, ...],
///   "callgraph": {"functions": 0, "calls": 0, "resolved": 0, "blocks": 0, "edges": 0},
///   "diagnostics": [{"code": "...", "file": "...", "line": 3, "message": "...",
///                    "path": [{"file": "...", "line": 7, "note": "..."}]}, ...],
///   "suppressed": [...same shape...],
///   "summary": {"files_scanned": 40, "violations": 0, "suppressed": 0, "stale_baseline": 0}
/// }
/// ```
///
/// `path` is present only on interprocedural findings; the `callgraph`
/// totals let report diffs show analysis-coverage drift (e.g. a lexer
/// regression that silently drops functions).
pub fn lint_report_json(outcome: &LintOutcome) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"version\": {REPORT_VERSION},\n  \"rules\": [");
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"summary\": \"{}\"}}",
            r.code,
            escape(r.summary)
        );
    }
    out.push_str("\n  ],\n");
    let cg = &outcome.callgraph;
    let _ = writeln!(
        out,
        "  \"callgraph\": {{\"functions\": {}, \"calls\": {}, \"resolved\": {}, \"blocks\": {}, \"edges\": {}}},",
        cg.functions, cg.calls, cg.resolved, cg.blocks, cg.edges
    );
    emit_diag_array(&mut out, "diagnostics", &outcome.violations);
    out.push_str(",\n");
    emit_diag_array(&mut out, "suppressed", &outcome.suppressed);
    let _ = write!(
        out,
        ",\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"suppressed\": {}, \"stale_baseline\": {}}}\n}}\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    out
}

fn emit_diag_array(out: &mut String, key: &str, diags: &[Diagnostic]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            d.code,
            escape(&d.file),
            d.line,
            escape(&d.message)
        );
        if d.path.is_empty() {
            out.push('}');
        } else {
            out.push_str(", \"path\": [");
            for (j, s) in d.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"file\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                    escape(&s.file),
                    s.line,
                    escape(&s.note)
                );
            }
            out.push_str("\n    ]}");
        }
    }
    if diags.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

/// What a validated report contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    pub rules: usize,
    pub diagnostics: usize,
    pub suppressed: usize,
    pub files_scanned: u64,
    /// Function definitions the call-graph pass extracted.
    pub functions: u64,
    /// Call sites found / resolved to a workspace function.
    pub calls: u64,
    pub resolved: u64,
}

/// Validate a lint-report JSON document.
///
/// Checks: parseable; `version` is the supported schema version; every
/// rule entry has a well-formed `Axxxx` code and a summary; every
/// diagnostic has `code`/`file`/`line`/`message` with a code drawn from
/// the rule list; any `path` witness chain is a non-empty array of
/// well-formed `{file, line, note}` steps; the diagnostics array is
/// sorted by (file, line, code) with no duplicates — the stable order
/// the emitter guarantees; and the `callgraph` coverage object carries
/// consistent counts (`resolved` ≤ `calls`, `edges` only with `blocks`).
pub fn validate_lint_report(text: &str) -> Result<ReportSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("lint report: {e}"))?;
    let version = doc
        .get("version")
        .and_then(Json::as_f64)
        .ok_or("lint report: missing numeric `version`")?;
    if version != REPORT_VERSION as f64 {
        return Err(format!(
            "lint report: unsupported version {version} (expected {REPORT_VERSION})"
        ));
    }

    let rules = doc
        .get("rules")
        .and_then(Json::as_array)
        .ok_or("lint report: missing `rules` array")?;
    let mut codes: Vec<&str> = Vec::new();
    for (i, r) in rules.iter().enumerate() {
        let code = r
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lint report: rules[{i}] missing `code`"))?;
        if code.len() != 5
            || !code.starts_with('A')
            || !code[1..].chars().all(|c| c.is_ascii_digit())
        {
            return Err(format!("lint report: rules[{i}] bad code {code:?}"));
        }
        if r.get("summary").and_then(Json::as_str).is_none() {
            return Err(format!("lint report: rules[{i}] missing `summary`"));
        }
        codes.push(code);
    }
    if codes.is_empty() {
        return Err("lint report: empty rule catalog".to_owned());
    }

    let mut diagnostics = 0usize;
    let mut suppressed = 0usize;
    for key in ["diagnostics", "suppressed"] {
        let items = doc
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("lint report: missing `{key}` array"))?;
        let mut prev: Option<(String, u64, String)> = None;
        for (i, d) in items.iter().enumerate() {
            let code = d
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `code`"))?;
            if !codes.contains(&code) {
                return Err(format!(
                    "lint report: {key}[{i}] code {code:?} not in the rule catalog"
                ));
            }
            let file = d
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `file`"))?;
            let line = d
                .get("line")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing numeric `line`"))?;
            if line < 1.0 || line.fract() != 0.0 {
                return Err(format!("lint report: {key}[{i}] bad line {line}"));
            }
            if d.get("message").and_then(Json::as_str).is_none() {
                return Err(format!("lint report: {key}[{i}] missing `message`"));
            }
            if let Some(path) = d.get("path") {
                let steps = path
                    .as_array()
                    .ok_or_else(|| format!("lint report: {key}[{i}] `path` is not an array"))?;
                if steps.is_empty() {
                    return Err(format!(
                        "lint report: {key}[{i}] `path` must be omitted when empty"
                    ));
                }
                for (j, s) in steps.iter().enumerate() {
                    if s.get("file").and_then(Json::as_str).is_none() {
                        return Err(format!("lint report: {key}[{i}].path[{j}] missing `file`"));
                    }
                    let sl = s.get("line").and_then(Json::as_f64).ok_or_else(|| {
                        format!("lint report: {key}[{i}].path[{j}] missing numeric `line`")
                    })?;
                    if sl < 1.0 || sl.fract() != 0.0 {
                        return Err(format!("lint report: {key}[{i}].path[{j}] bad line {sl}"));
                    }
                    if s.get("note").and_then(Json::as_str).is_none() {
                        return Err(format!("lint report: {key}[{i}].path[{j}] missing `note`"));
                    }
                }
            }
            let this = (file.to_owned(), line as u64, code.to_owned());
            if let Some(p) = &prev {
                if *p >= this {
                    return Err(format!(
                        "lint report: `{key}` not strictly sorted by (file, line, code) at index {i}"
                    ));
                }
            }
            prev = Some(this);
        }
        if key == "diagnostics" {
            diagnostics = items.len();
        } else {
            suppressed = items.len();
        }
    }

    let callgraph = doc
        .get("callgraph")
        .ok_or("lint report: missing `callgraph` object")?;
    let mut counts = [0u64; 5];
    for (slot, field) in
        counts
            .iter_mut()
            .zip(["functions", "calls", "resolved", "blocks", "edges"])
    {
        let v = callgraph
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("lint report: callgraph missing numeric `{field}`"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("lint report: callgraph `{field}` is not a count"));
        }
        *slot = v as u64;
    }
    let [functions, calls, resolved, blocks, edges] = counts;
    if resolved > calls {
        return Err(format!(
            "lint report: callgraph resolves {resolved} of {calls} calls"
        ));
    }
    if blocks == 0 && edges > 0 {
        return Err("lint report: callgraph has edges but no blocks".to_owned());
    }

    let summary = doc
        .get("summary")
        .ok_or("lint report: missing `summary` object")?;
    let files_scanned = summary
        .get("files_scanned")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `files_scanned`")?;
    let claimed = summary
        .get("violations")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `violations`")?;
    if claimed as usize != diagnostics {
        return Err(format!(
            "lint report: summary claims {claimed} violations but `diagnostics` has {diagnostics}"
        ));
    }
    Ok(ReportSummary {
        rules: codes.len(),
        diagnostics,
        suppressed,
        files_scanned: files_scanned as u64,
        functions,
        calls,
        resolved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{run, Baseline, Workspace};

    fn outcome_with_violation() -> LintOutcome {
        let ws = Workspace::from_sources(
            vec![
                (
                    "crates/core/src/b.rs",
                    "fn f() { std::thread::spawn(|| {}); }",
                ),
                ("crates/core/src/a.rs", "use std::time::Instant;"),
            ],
            "",
        );
        run(&ws, &Baseline::default())
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.rules, crate::rules::RULES.len());
        assert_eq!(summary.diagnostics, 2);
        assert_eq!(summary.files_scanned, 2);
        assert_eq!(summary.functions, outcome.callgraph.functions as u64);
        assert!(summary.resolved <= summary.calls);
    }

    #[test]
    fn witness_paths_roundtrip() {
        use crate::lint::{CallGraphSummary, PathStep};
        let outcome = LintOutcome {
            violations: vec![Diagnostic {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                code: "A0009",
                message: "reaches a panic".into(),
                path: vec![
                    PathStep {
                        file: "crates/core/src/a.rs".into(),
                        line: 3,
                        note: "public API `core::a::api`".into(),
                    },
                    PathStep {
                        file: "crates/core/src/b.rs".into(),
                        line: 9,
                        note: "panic site".into(),
                    },
                ],
            }],
            suppressed: Vec::new(),
            stale: Vec::new(),
            files_scanned: 2,
            callgraph: CallGraphSummary {
                functions: 2,
                calls: 1,
                resolved: 1,
                blocks: 4,
                edges: 3,
            },
        };
        let json = lint_report_json(&outcome);
        assert!(json.contains("\"path\": ["), "{json}");
        assert!(json.contains("\"note\": \"panic site\""), "{json}");
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.diagnostics, 1);
        assert_eq!(summary.calls, 1);
    }

    #[test]
    fn report_orders_diagnostics_stably() {
        // Files were supplied b-then-a; the report must come out a-then-b.
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "diagnostics sorted by file");
    }

    #[test]
    fn empty_outcome_validates() {
        let ws = Workspace::from_sources(vec![("crates/core/src/a.rs", "fn f() {}")], "");
        let json = lint_report_json(&run(&ws, &Baseline::default()));
        let summary = validate_lint_report(&json).expect("valid");
        assert_eq!(summary.diagnostics, 0);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_lint_report("not json").is_err());
        assert!(validate_lint_report("{}").is_err());
        // Unsupported schema version.
        assert!(validate_lint_report(
            r#"{"version": 99, "rules": [], "diagnostics": [], "suppressed": [], "summary": {}}"#
        )
        .expect_err("bad version")
        .contains("version"));
        // Unknown diagnostic code.
        let bad = r#"{
            "version": 2,
            "rules": [{"code": "A0001", "summary": "s"}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "diagnostics": [{"code": "A9999", "file": "x.rs", "line": 1, "message": "m"}],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 1, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(bad)
            .expect_err("bad code")
            .contains("A9999"));
        // Unsorted diagnostics.
        let unsorted = r#"{
            "version": 2,
            "rules": [{"code": "A0001", "summary": "s"}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "diagnostics": [
                {"code": "A0001", "file": "b.rs", "line": 1, "message": "m"},
                {"code": "A0001", "file": "a.rs", "line": 1, "message": "m"}
            ],
            "suppressed": [],
            "summary": {"files_scanned": 2, "violations": 2, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(unsorted)
            .expect_err("unsorted")
            .contains("sorted"));
        // Summary count mismatch.
        let mismatch = r#"{
            "version": 2,
            "rules": [{"code": "A0001", "summary": "s"}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "diagnostics": [],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 3, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(mismatch)
            .expect_err("mismatch")
            .contains("claims"));
        // Missing or inconsistent callgraph coverage.
        let no_cg = r#"{
            "version": 2,
            "rules": [{"code": "A0001", "summary": "s"}],
            "diagnostics": [],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 0, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(no_cg)
            .expect_err("missing callgraph")
            .contains("callgraph"));
        let over_resolved = no_cg.replace(
            "\"diagnostics\"",
            "\"callgraph\": {\"functions\": 1, \"calls\": 2, \"resolved\": 3, \"blocks\": 1, \"edges\": 0}, \"diagnostics\"",
        );
        assert!(validate_lint_report(&over_resolved)
            .expect_err("resolved > calls")
            .contains("resolves"));
        // Malformed witness path.
        let bad_path = r#"{
            "version": 2,
            "rules": [{"code": "A0001", "summary": "s"}],
            "callgraph": {"functions": 1, "calls": 0, "resolved": 0, "blocks": 1, "edges": 0},
            "diagnostics": [{"code": "A0001", "file": "x.rs", "line": 1, "message": "m",
                             "path": [{"file": "x.rs", "line": 1}]}],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 1, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(bad_path)
            .expect_err("path step missing note")
            .contains("note"));
    }
}
