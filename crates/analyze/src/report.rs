//! JSON export of lint results, and its validating reader.
//!
//! The emitting and consuming sides live together so they cannot drift:
//! [`lint_report_json`] serializes a [`LintOutcome`] and
//! [`validate_lint_report`] (also reachable through
//! `trace_check --lint-report`) re-parses the document, checks the
//! schema, and enforces the stable (file, line, code) diagnostic
//! ordering that downstream diffing relies on.

use crate::lint::{Diagnostic, LintOutcome};
use deepeye_obs::json::{escape, parse_json, Json};
use std::fmt::Write as _;

/// Schema version stamped into every report.
pub const REPORT_VERSION: u64 = 1;

/// Serialize a lint outcome as a machine-readable report.
///
/// Shape:
/// ```json
/// {
///   "version": 1,
///   "rules": [{"code": "A0001", "summary": "..."}, ...],
///   "diagnostics": [{"code": "...", "file": "...", "line": 3, "message": "..."}, ...],
///   "suppressed": [...same shape...],
///   "summary": {"files_scanned": 40, "violations": 0, "suppressed": 0, "stale_baseline": 0}
/// }
/// ```
pub fn lint_report_json(outcome: &LintOutcome) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"version\": {REPORT_VERSION},\n  \"rules\": [");
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"summary\": \"{}\"}}",
            r.code,
            escape(r.summary)
        );
    }
    out.push_str("\n  ],\n");
    emit_diag_array(&mut out, "diagnostics", &outcome.violations);
    out.push_str(",\n");
    emit_diag_array(&mut out, "suppressed", &outcome.suppressed);
    let _ = write!(
        out,
        ",\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"suppressed\": {}, \"stale_baseline\": {}}}\n}}\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    out
}

fn emit_diag_array(out: &mut String, key: &str, diags: &[Diagnostic]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.code,
            escape(&d.file),
            d.line,
            escape(&d.message)
        );
    }
    if diags.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

/// What a validated report contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    pub rules: usize,
    pub diagnostics: usize,
    pub suppressed: usize,
    pub files_scanned: u64,
}

/// Validate a lint-report JSON document.
///
/// Checks: parseable; `version` is the supported schema version; every
/// rule entry has a well-formed `Axxxx` code and a summary; every
/// diagnostic has `code`/`file`/`line`/`message` with a code drawn from
/// the rule list; and the diagnostics array is sorted by
/// (file, line, code) with no duplicates — the stable order the emitter
/// guarantees.
pub fn validate_lint_report(text: &str) -> Result<ReportSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("lint report: {e}"))?;
    let version = doc
        .get("version")
        .and_then(Json::as_f64)
        .ok_or("lint report: missing numeric `version`")?;
    if version != REPORT_VERSION as f64 {
        return Err(format!(
            "lint report: unsupported version {version} (expected {REPORT_VERSION})"
        ));
    }

    let rules = doc
        .get("rules")
        .and_then(Json::as_array)
        .ok_or("lint report: missing `rules` array")?;
    let mut codes: Vec<&str> = Vec::new();
    for (i, r) in rules.iter().enumerate() {
        let code = r
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lint report: rules[{i}] missing `code`"))?;
        if code.len() != 5
            || !code.starts_with('A')
            || !code[1..].chars().all(|c| c.is_ascii_digit())
        {
            return Err(format!("lint report: rules[{i}] bad code {code:?}"));
        }
        if r.get("summary").and_then(Json::as_str).is_none() {
            return Err(format!("lint report: rules[{i}] missing `summary`"));
        }
        codes.push(code);
    }
    if codes.is_empty() {
        return Err("lint report: empty rule catalog".to_owned());
    }

    let mut diagnostics = 0usize;
    let mut suppressed = 0usize;
    for key in ["diagnostics", "suppressed"] {
        let items = doc
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("lint report: missing `{key}` array"))?;
        let mut prev: Option<(String, u64, String)> = None;
        for (i, d) in items.iter().enumerate() {
            let code = d
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `code`"))?;
            if !codes.contains(&code) {
                return Err(format!(
                    "lint report: {key}[{i}] code {code:?} not in the rule catalog"
                ));
            }
            let file = d
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing `file`"))?;
            let line = d
                .get("line")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("lint report: {key}[{i}] missing numeric `line`"))?;
            if line < 1.0 || line.fract() != 0.0 {
                return Err(format!("lint report: {key}[{i}] bad line {line}"));
            }
            if d.get("message").and_then(Json::as_str).is_none() {
                return Err(format!("lint report: {key}[{i}] missing `message`"));
            }
            let this = (file.to_owned(), line as u64, code.to_owned());
            if let Some(p) = &prev {
                if *p >= this {
                    return Err(format!(
                        "lint report: `{key}` not strictly sorted by (file, line, code) at index {i}"
                    ));
                }
            }
            prev = Some(this);
        }
        if key == "diagnostics" {
            diagnostics = items.len();
        } else {
            suppressed = items.len();
        }
    }

    let summary = doc
        .get("summary")
        .ok_or("lint report: missing `summary` object")?;
    let files_scanned = summary
        .get("files_scanned")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `files_scanned`")?;
    let claimed = summary
        .get("violations")
        .and_then(Json::as_f64)
        .ok_or("lint report: summary missing `violations`")?;
    if claimed as usize != diagnostics {
        return Err(format!(
            "lint report: summary claims {claimed} violations but `diagnostics` has {diagnostics}"
        ));
    }
    Ok(ReportSummary {
        rules: codes.len(),
        diagnostics,
        suppressed,
        files_scanned: files_scanned as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{run, Baseline, Workspace};

    fn outcome_with_violation() -> LintOutcome {
        let ws = Workspace::from_sources(
            vec![
                (
                    "crates/core/src/b.rs",
                    "fn f() { std::thread::spawn(|| {}); }",
                ),
                ("crates/core/src/a.rs", "use std::time::Instant;"),
            ],
            "",
        );
        run(&ws, &Baseline::default())
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let summary = validate_lint_report(&json).expect("valid report");
        assert_eq!(summary.rules, crate::rules::RULES.len());
        assert_eq!(summary.diagnostics, 2);
        assert_eq!(summary.files_scanned, 2);
    }

    #[test]
    fn report_orders_diagnostics_stably() {
        // Files were supplied b-then-a; the report must come out a-then-b.
        let outcome = outcome_with_violation();
        let json = lint_report_json(&outcome);
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "diagnostics sorted by file");
    }

    #[test]
    fn empty_outcome_validates() {
        let ws = Workspace::from_sources(vec![("crates/core/src/a.rs", "fn f() {}")], "");
        let json = lint_report_json(&run(&ws, &Baseline::default()));
        let summary = validate_lint_report(&json).expect("valid");
        assert_eq!(summary.diagnostics, 0);
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_lint_report("not json").is_err());
        assert!(validate_lint_report("{}").is_err());
        assert!(validate_lint_report(
            r#"{"version": 2, "rules": [], "diagnostics": [], "suppressed": [], "summary": {}}"#
        )
        .is_err());
        // Unknown diagnostic code.
        let bad = r#"{
            "version": 1,
            "rules": [{"code": "A0001", "summary": "s"}],
            "diagnostics": [{"code": "A9999", "file": "x.rs", "line": 1, "message": "m"}],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 1, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(bad)
            .expect_err("bad code")
            .contains("A9999"));
        // Unsorted diagnostics.
        let unsorted = r#"{
            "version": 1,
            "rules": [{"code": "A0001", "summary": "s"}],
            "diagnostics": [
                {"code": "A0001", "file": "b.rs", "line": 1, "message": "m"},
                {"code": "A0001", "file": "a.rs", "line": 1, "message": "m"}
            ],
            "suppressed": [],
            "summary": {"files_scanned": 2, "violations": 2, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(unsorted)
            .expect_err("unsorted")
            .contains("sorted"));
        // Summary count mismatch.
        let mismatch = r#"{
            "version": 1,
            "rules": [{"code": "A0001", "summary": "s"}],
            "diagnostics": [],
            "suppressed": [],
            "summary": {"files_scanned": 1, "violations": 3, "suppressed": 0, "stale_baseline": 0}
        }"#;
        assert!(validate_lint_report(mismatch)
            .expect_err("mismatch")
            .contains("claims"));
    }
}
