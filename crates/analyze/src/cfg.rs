//! Function extraction and per-function CFG-lite.
//!
//! The interprocedural rules (A0008–A0012) need more than a flat token
//! stream: they need to know *which function* a token belongs to, the
//! function's module-qualified name, whether a site sits inside a loop,
//! and whether it sits behind an `is_enabled()` guard. This module
//! derives all of that from the lexer's token stream — no AST, no
//! rustc — by tracking `mod` / `impl` / `trait` / `fn` scopes through
//! the brace structure and splitting each function body into basic
//! blocks at control keywords (`if` / `else` / `match` / `loop` /
//! `while` / `for` / `return` / `?`).
//!
//! The CFG is deliberately "lite": blocks are maximal straight-line
//! token runs, successor edges cover fallthrough, branch joins, and
//! loop back/exit edges. That is enough for the dataflow layer's
//! reachability questions (a panic site inside a function, an
//! allocation inside a loop, a lock acquired before a call) without
//! pretending to be a real control-flow analysis.

use crate::lexer::{matching_brace, Token};
use crate::lint::SourceFile;
use std::collections::BTreeSet;

/// One extracted function (or method) definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Bare name (`execute`, `top_k`, …).
    pub name: String,
    /// Module-qualified name: `crate::module[::Type]::name`.
    pub qual: String,
    /// Index of the owning file in `Workspace::files`.
    pub file: usize,
    /// Workspace-relative path of the owning file.
    pub rel: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Enclosing `impl`/`trait` type, if a method.
    pub impl_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Parameter (name, best-effort type ident) pairs; `self` omitted.
    pub params: Vec<(String, String)>,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Token index of the body `{` in the file's token stream.
    pub body_start: usize,
    /// One past the matching `}`.
    pub body_end: usize,
    /// Inside a `#[cfg(test)]` region or a test file.
    pub is_test: bool,
    /// The per-function CFG-lite.
    pub cfg: Cfg,
}

impl FuncDef {
    /// The token range of the body, excluding the outer braces.
    pub fn body_range(&self) -> std::ops::Range<usize> {
        (self.body_start + 1)..self.body_end.saturating_sub(1)
    }
}

/// Basic-block kind, named after the token that opened it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    Entry,
    Seq,
    /// Starts at `if` / `else` / `match`.
    Branch,
    /// Starts at `loop` / `while` / `for`.
    LoopHead,
    /// Starts at `return` or a `?` propagation point.
    Exit,
}

/// One straight-line block: a token range plus successor edges.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token range `[start, end)` in the file token stream.
    pub start: usize,
    pub end: usize,
    /// Line of the first token.
    pub line: u32,
    pub kind: BlockKind,
    /// Successor block indices within the same CFG.
    pub succs: Vec<usize>,
}

/// A function's CFG-lite.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Total successor edges.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }
}

/// Keywords that never start a call and never name a callee.
pub const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while",
];

/// Whether `word` is a Rust keyword (per [`KEYWORDS`]).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Find the `{` opening the body that follows a control keyword or item
/// header at `from`: the first `{` at paren/bracket depth 0. Returns
/// `None` when a `;` ends the item first (e.g. a trait method decl).
pub fn find_body_open(tokens: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(from) {
        match &t.tok {
            crate::lexer::Tok::Punct('(') | crate::lexer::Tok::Punct('[') => depth += 1,
            crate::lexer::Tok::Punct(')') | crate::lexer::Tok::Punct(']') => depth -= 1,
            crate::lexer::Tok::Punct('{') if depth == 0 => return Some(k),
            crate::lexer::Tok::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Per-token loop-nesting depth for a whole file: 0 outside any loop,
/// +1 for each enclosing `loop` / `while` / `for` body.
pub fn loop_depths(tokens: &[Token]) -> Vec<u32> {
    let mut depth = vec![0u32; tokens.len()];
    for i in 0..tokens.len() {
        let is_loop_kw = tokens[i].is_ident("loop")
            || tokens[i].is_ident("while")
            || (tokens[i].is_ident("for")
                // `impl Trait for Type` also contains `for`; a loop `for`
                // is followed by a pattern and an `in` before its body.
                && tokens[i..]
                    .iter()
                    .take(24)
                    .any(|t| t.is_ident("in")));
        if !is_loop_kw {
            continue;
        }
        let Some(open) = find_body_open(tokens, i + 1) else {
            continue;
        };
        let close = matching_brace(tokens, open);
        for slot in depth.iter_mut().take(close).skip(open) {
            *slot += 1;
        }
    }
    depth
}

// ---------------------------------------------------------------------------
// Guard mask: which tokens sit behind an `is_enabled()` check.

struct GuardBlock {
    guarded: bool,
    negated_guard: bool,
    saw_return: bool,
}

/// Per-token mask: `true` where the token executes only after an
/// `is_enabled()` check held true. Recognized guard shapes (all present
/// in the codebase):
///
/// ```text
/// if prov.is_enabled() { … }                  — direct guard
/// Mode::X if prov.is_enabled() => { … }       — match-arm guard
/// let explaining = prov.is_enabled(); if explaining { … }
///                                             — named guard
/// if !prov.is_enabled() { return …; } …       — early-return guard
///                                               (rest of the block counts)
/// ```
pub fn guard_mask(file: &SourceFile) -> Vec<bool> {
    let toks = &file.tokens;
    let mut mask = vec![false; toks.len()];
    // Pre-pass: names bound to an `is_enabled()` result.
    let mut guard_vars: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("is_enabled") {
            // Walk back to the statement start; if it begins with `let`,
            // record the bound name.
            let mut j = i;
            while j > 0 {
                let t = &toks[j - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                j -= 1;
            }
            if toks.get(j).is_some_and(|t| t.is_ident("let")) {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(name) = toks.get(k).and_then(Token::ident) {
                    guard_vars.insert(name);
                }
            }
        }
    }

    let mut stack: Vec<GuardBlock> = vec![GuardBlock {
        guarded: false,
        negated_guard: false,
        saw_return: false,
    }];
    // Tokens since the last statement/block boundary: the "run-up" a `{`
    // is judged by.
    let mut window_start = 0usize;
    for i in 0..toks.len() {
        let t = &toks[i];
        let current = stack.last().map(|b| b.guarded).unwrap_or(false);
        mask[i] = current;
        if t.is_punct(';') {
            window_start = i + 1;
            continue;
        }
        if t.is_punct('{') {
            let window = &toks[window_start..i];
            let (hit, negated) = guard_in_window(window, &guard_vars);
            stack.push(GuardBlock {
                guarded: current || (hit && !negated),
                negated_guard: hit && negated,
                saw_return: false,
            });
            window_start = i + 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(done) = stack.pop() {
                if done.negated_guard && done.saw_return {
                    if let Some(top) = stack.last_mut() {
                        top.guarded = true;
                    }
                }
            }
            if stack.is_empty() {
                stack.push(GuardBlock {
                    guarded: false,
                    negated_guard: false,
                    saw_return: false,
                });
            }
            window_start = i + 1;
            continue;
        }
        if t.is_ident("return") {
            if let Some(top) = stack.last_mut() {
                top.saw_return = true;
            }
        }
    }
    mask
}

/// Whether the run-up to a `{` contains a guard, and whether that guard
/// is negated (`if !prov.is_enabled()`).
pub fn guard_in_window(window: &[Token], guard_vars: &BTreeSet<&str>) -> (bool, bool) {
    for (i, t) in window.iter().enumerate() {
        let hit =
            t.is_ident("is_enabled") || t.ident().is_some_and(|name| guard_vars.contains(name));
        if !hit {
            continue;
        }
        // Walk back across the receiver chain (`ident . ident .`) to see
        // whether a `!` negates it.
        let mut j = i;
        while j >= 2 && window[j - 1].is_punct('.') && window[j - 2].ident().is_some() {
            j -= 2;
        }
        let negated = j >= 1 && window[j - 1].is_punct('!')
            // `!=` lexes as '!' '=' — the '=' sits before the '!' operand
            // only in `a != b` shapes, where '!' is *followed* by '='.
            && !window.get(j).is_some_and(|t| t.is_punct('='));
        return (true, negated);
    }
    (false, false)
}

// ---------------------------------------------------------------------------
// Scope tracking and function extraction.

/// Map a workspace-relative path to its module-path segments.
fn module_segments(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut segs: Vec<String> = Vec::new();
    let mut rest: &[&str] = &parts;
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        segs.push(parts[1].to_owned());
        rest = &parts[2..];
    } else if parts.first() == Some(&"src") {
        segs.push("deepeye".to_owned());
        rest = &parts[1..];
    } else if let Some(first) = parts.first() {
        segs.push((*first).to_owned());
        rest = &parts[1..];
    }
    for (k, part) in rest.iter().enumerate() {
        if *part == "src" && k == 0 {
            continue;
        }
        let is_last = k == rest.len() - 1;
        if is_last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "mod" && stem != "main" {
                segs.push(stem.to_owned());
            }
        } else {
            segs.push((*part).to_owned());
        }
    }
    segs
}

#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    Type { ty: String, tr: Option<String> },
    Other,
}

/// Parse the `impl`/`trait` header in `window`, returning
/// `(type, trait)` — for `impl Trait for Type` the type is `Type` and
/// the trait `Some(Trait)`.
fn parse_type_header(window: &[Token]) -> Option<(String, Option<String>)> {
    let kw = window
        .iter()
        .position(|t| t.is_ident("impl") || t.is_ident("trait"))?;
    if window[kw].is_ident("trait") {
        let name = window.get(kw + 1).and_then(Token::ident)?;
        return Some((name.to_owned(), None));
    }
    // `impl [<…>] Path [for Path] [where …]` — collect angle-depth-0
    // path idents, split at `for`.
    let mut angle = 0i32;
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut seen_for = false;
    for t in &window[kw + 1..] {
        match &t.tok {
            crate::lexer::Tok::Punct('<') => angle += 1,
            crate::lexer::Tok::Punct('>') => angle -= 1,
            crate::lexer::Tok::Ident(w) if angle == 0 => {
                if w == "for" {
                    seen_for = true;
                } else if w == "where" {
                    break;
                } else if seen_for {
                    after_for.push(w);
                } else {
                    before_for.push(w);
                }
            }
            _ => {}
        }
    }
    if seen_for {
        let ty = (*after_for.last()?).to_owned();
        let tr = before_for.last().map(|s| (*s).to_owned());
        Some((ty, tr))
    } else {
        Some(((*before_for.last()?).to_owned(), None))
    }
}

/// Parse a `fn` header starting at the `fn` keyword index; returns the
/// partially-filled def (no body/cfg yet) and the index of the body `{`.
#[allow(clippy::too_many_arguments)]
fn parse_fn_header(
    file: &SourceFile,
    file_idx: usize,
    toks: &[Token],
    window_start: usize,
    fn_kw: usize,
    mods: &[String],
    scope_ty: Option<&(String, Option<String>)>,
    is_test: bool,
) -> Option<(FuncDef, usize)> {
    let name = toks.get(fn_kw + 1).and_then(Token::ident)?.to_owned();
    let is_pub = toks[window_start..fn_kw].iter().any(|t| t.is_ident("pub"));
    // Skip generics between the name and the parameter list.
    let mut k = fn_kw + 2;
    if toks.get(k).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 0i32;
        while k < toks.len() {
            if toks[k].is_punct('<') {
                angle += 1;
            } else if toks[k].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Parameter list: comma-separated at paren depth 1.
    let open_paren = k;
    let mut depth = 0i32;
    let mut params: Vec<(String, String)> = Vec::new();
    let mut item: Vec<&Token> = Vec::new();
    let mut close_paren = toks.len();
    for (j, t) in toks.iter().enumerate().skip(open_paren) {
        match &t.tok {
            crate::lexer::Tok::Punct('(') => {
                depth += 1;
                if depth > 1 {
                    item.push(t);
                }
            }
            crate::lexer::Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    if !item.is_empty() {
                        push_param(&mut params, &item);
                    }
                    close_paren = j;
                    break;
                }
                item.push(t);
            }
            crate::lexer::Tok::Punct(',') if depth == 1 => {
                if !item.is_empty() {
                    push_param(&mut params, &item);
                }
                item.clear();
            }
            _ => item.push(t),
        }
    }
    // Return type: tokens between `)` and the body `{` (or `;`).
    let body_open = find_body_open(toks, close_paren + 1);
    let ret_end = body_open.unwrap_or(toks.len());
    let returns_result = toks[close_paren..ret_end.min(toks.len())]
        .iter()
        .any(|t| t.is_ident("Result"));
    let body_open = body_open?;
    let qual = {
        let mut parts: Vec<&str> = mods.iter().map(String::as_str).collect();
        if let Some((ty, _)) = scope_ty {
            parts.push(ty);
        }
        parts.push(&name);
        parts.join("::")
    };
    Some((
        FuncDef {
            name,
            qual,
            file: file_idx,
            rel: file.rel.clone(),
            line: toks[fn_kw].line,
            is_pub,
            impl_type: scope_ty.map(|(ty, _)| ty.clone()),
            trait_name: scope_ty.and_then(|(_, tr)| tr.clone()),
            params,
            returns_result,
            body_start: body_open,
            body_end: body_open, // fixed up by the caller
            is_test,
            cfg: Cfg::default(),
        },
        body_open,
    ))
}

/// Record one parameter from its token run (`name: Type…`); `self`
/// receivers are skipped.
fn push_param(params: &mut Vec<(String, String)>, item: &[&Token]) {
    let mut idx = 0usize;
    while idx < item.len() && (item[idx].is_ident("mut") || item[idx].is_punct('&')) {
        idx += 1;
    }
    let Some(name) = item.get(idx).and_then(|t| t.ident()) else {
        return;
    };
    if name == "self" {
        return;
    }
    // Best-effort type: the last capitalized ident at angle depth 0 after
    // the `:` (so `&mut Observer`, `Option<&Observer>` → `Observer` is
    // captured by the depth-1 fallback below when the outer is generic).
    let mut ty = String::new();
    let mut angle = 0i32;
    let mut seen_colon = false;
    for t in item.iter().skip(idx + 1) {
        match &t.tok {
            crate::lexer::Tok::Punct(':') => seen_colon = true,
            crate::lexer::Tok::Punct('<') => angle += 1,
            crate::lexer::Tok::Punct('>') => angle -= 1,
            crate::lexer::Tok::Ident(w)
                if seen_colon && angle <= 1 && w.chars().next().is_some_and(char::is_uppercase) =>
            {
                ty = w.clone();
            }
            _ => {}
        }
    }
    params.push((name.to_owned(), ty));
}

/// Extract every function defined in `file`, with module/impl context
/// and a per-function CFG.
pub fn functions_in_file(file: &SourceFile, file_idx: usize) -> Vec<FuncDef> {
    let toks = &file.tokens;
    let mut out: Vec<FuncDef> = Vec::new();
    let base_mods = module_segments(&file.rel);
    let mut mod_stack: Vec<String> = base_mods;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut window_start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(';') {
            window_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(Scope::Mod(_)) = scopes.pop() {
                mod_stack.pop();
            }
            window_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            let window = &toks[window_start..i];
            let scope = classify_window(window);
            match &scope {
                Scope::Mod(name) => mod_stack.push(name.clone()),
                Scope::Type { .. } | Scope::Other => {}
            }
            scopes.push(scope);
            window_start = i + 1;
            i += 1;
            continue;
        }
        // A `fn` item: `fn` followed by a name (a bare `fn(` is a type).
        if t.is_ident("fn") && toks.get(i + 1).and_then(Token::ident).is_some() {
            let scope_ty = scopes.iter().rev().find_map(|s| match s {
                Scope::Type { ty, tr } => Some((ty.clone(), tr.clone())),
                _ => None,
            });
            let is_test = file.is_test_file || file.test_tokens.get(i).copied().unwrap_or(false);
            if let Some((mut def, body_open)) = parse_fn_header(
                file,
                file_idx,
                toks,
                window_start,
                i,
                &mod_stack,
                scope_ty.as_ref(),
                is_test,
            ) {
                let body_close = matching_brace(toks, body_open);
                def.body_end = body_close;
                def.cfg = build_cfg(toks, body_open, body_close);
                out.push(def);
                // Continue scanning *inside* the body so nested items are
                // found too; window resumes after the header.
                window_start = body_open + 1;
                i = body_open + 1;
                // The body `{` belongs to no scope frame (we skipped it),
                // so push a neutral frame to keep brace pops balanced.
                scopes.push(Scope::Other);
                continue;
            }
        }
        i += 1;
    }
    out
}

fn classify_window(window: &[Token]) -> Scope {
    let has = |kw: &str| window.iter().any(|t| t.is_ident(kw));
    if has("impl") || has("trait") {
        if let Some((ty, tr)) = parse_type_header(window) {
            return Scope::Type { ty, tr };
        }
    }
    if has("mod") && !has("fn") {
        if let Some(pos) = window.iter().position(|t| t.is_ident("mod")) {
            if let Some(name) = window.get(pos + 1).and_then(Token::ident) {
                return Scope::Mod(name.to_owned());
            }
        }
    }
    Scope::Other
}

/// Split the body token range `[open, close)` into CFG-lite blocks.
fn build_cfg(toks: &[Token], open: usize, close: usize) -> Cfg {
    let start = open + 1;
    let end = close.saturating_sub(1).max(start);
    // Block boundaries: control keywords and `?` start a new block.
    let mut bounds: Vec<(usize, BlockKind)> = vec![(start, BlockKind::Entry)];
    for k in start..end {
        let t = &toks[k];
        let kind = if t.is_ident("if") || t.is_ident("else") || t.is_ident("match") {
            Some(BlockKind::Branch)
        } else if t.is_ident("loop")
            || t.is_ident("while")
            || (t.is_ident("for") && toks[k..end.min(k + 24)].iter().any(|t| t.is_ident("in")))
        {
            Some(BlockKind::LoopHead)
        } else if t.is_ident("return") || t.is_punct('?') {
            Some(BlockKind::Exit)
        } else {
            None
        };
        if let Some(kind) = kind {
            if bounds.last().map(|b| b.0) != Some(k) {
                bounds.push((k, kind));
            } else if let Some(last) = bounds.last_mut() {
                last.1 = kind;
            }
        }
    }
    let mut blocks: Vec<Block> = Vec::new();
    for (bi, (bstart, kind)) in bounds.iter().enumerate() {
        let bend = bounds.get(bi + 1).map(|b| b.0).unwrap_or(end);
        blocks.push(Block {
            start: *bstart,
            end: bend,
            line: toks.get(*bstart).map(|t| t.line).unwrap_or(0),
            kind: *kind,
            succs: Vec::new(),
        });
    }
    // Edges: fallthrough for non-exit blocks; branch join and loop
    // back/exit edges resolved through the construct's body braces.
    let block_at =
        |tok: usize| -> Option<usize> { blocks.iter().position(|b| b.start <= tok && tok < b.end) };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for bi in 0..blocks.len() {
        let kind = blocks[bi].kind;
        if kind != BlockKind::Exit && bi + 1 < blocks.len() {
            edges.push((bi, bi + 1));
        }
        if matches!(kind, BlockKind::Branch | BlockKind::LoopHead) {
            if let Some(body_open) = find_body_open(toks, blocks[bi].start + 1) {
                let body_close = matching_brace(toks, body_open);
                if body_close <= end {
                    if let Some(join) = block_at(body_close) {
                        // Branch: edge over the arm to the join point.
                        // Loop: exit edge past the body.
                        if join != bi {
                            edges.push((bi, join));
                        }
                    }
                    if kind == BlockKind::LoopHead {
                        // Back edge from the last block inside the body; a
                        // body with no inner control flow stays merged with
                        // the head, so the back edge degenerates to a
                        // self-edge.
                        if let Some(last_in_body) = block_at(body_close.saturating_sub(1)) {
                            edges.push((last_in_body, bi));
                        }
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    for (from, to) in edges {
        blocks[from].succs.push(to);
    }
    Cfg { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::SourceFile;

    fn funcs(rel: &str, src: &str) -> Vec<FuncDef> {
        functions_in_file(&SourceFile::new(rel, src), 0)
    }

    #[test]
    fn module_paths_from_rel() {
        assert_eq!(
            module_segments("crates/query/src/sema.rs"),
            ["query", "sema"]
        );
        assert_eq!(module_segments("crates/core/src/lib.rs"), ["core"]);
        assert_eq!(
            module_segments("crates/analyze/src/model/sim.rs"),
            ["analyze", "model", "sim"]
        );
        assert_eq!(
            module_segments("crates/analyze/src/model/mod.rs"),
            ["analyze", "model"]
        );
        assert_eq!(module_segments("src/main.rs"), ["deepeye"]);
        assert_eq!(
            module_segments("examples/quickstart.rs"),
            ["examples", "quickstart"]
        );
    }

    #[test]
    fn extracts_free_and_impl_functions() {
        let src = r#"
pub fn free(a: u32, obs: &Observer) -> Result<u32, String> { Ok(a) }
struct Widget;
impl Widget {
    pub fn new() -> Widget { Widget }
    fn helper(&self, prov: &Provenance) { prov.noop(); }
}
impl Display for Widget {
    fn fmt(&self, f: &mut Formatter) -> fmt::Result { Ok(()) }
}
mod inner {
    pub fn nested() {}
}
"#;
        let fs = funcs("crates/core/src/widget.rs", src);
        let quals: Vec<&str> = fs.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "core::widget::free",
                "core::widget::Widget::new",
                "core::widget::Widget::helper",
                "core::widget::Widget::fmt",
                "core::widget::inner::nested",
            ]
        );
        let free = &fs[0];
        assert!(free.is_pub && free.returns_result);
        assert_eq!(
            free.params,
            [
                ("a".to_owned(), String::new()),
                ("obs".to_owned(), "Observer".to_owned())
            ]
        );
        let fmt = &fs[3];
        assert_eq!(fmt.trait_name.as_deref(), Some("Display"));
        assert_eq!(fmt.impl_type.as_deref(), Some("Widget"));
        assert!(fmt.returns_result);
        assert!(!fs[2].is_pub);
    }

    #[test]
    fn cfg_blocks_split_at_control_flow() {
        let src = r#"
fn f(n: u32) -> u32 {
    let mut acc = 0;
    for i in 0..n {
        acc += i;
    }
    if acc > 10 {
        return acc;
    }
    acc
}
"#;
        let fs = funcs("crates/core/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        let cfg = &fs[0].cfg;
        assert!(cfg.blocks.len() >= 4, "{:?}", cfg.blocks);
        assert!(cfg.blocks.iter().any(|b| b.kind == BlockKind::LoopHead));
        assert!(cfg.blocks.iter().any(|b| b.kind == BlockKind::Branch));
        assert!(cfg.blocks.iter().any(|b| b.kind == BlockKind::Exit));
        // The loop has a back edge: some edge points at an earlier block.
        let back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| b.succs.iter().any(|&s| s <= bi));
        assert!(back_edge, "loop back edge missing: {:?}", cfg.blocks);
    }

    #[test]
    fn loop_depths_cover_bodies_not_headers() {
        let file = SourceFile::new(
            "crates/core/src/x.rs",
            "fn f() { step(); for i in 0..3 { inner(); while go() { deep(); } } tail(); }",
        );
        let depths = loop_depths(&file.tokens);
        for (t, d) in file.tokens.iter().zip(&depths) {
            match t.ident() {
                Some("step") | Some("tail") => assert_eq!(*d, 0, "{t:?}"),
                Some("inner") => assert_eq!(*d, 1),
                Some("deep") => assert_eq!(*d, 2),
                _ => {}
            }
        }
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let file = SourceFile::new(
            "crates/core/src/x.rs",
            "impl Display for Widget { fn fmt(&self) { body(); } }",
        );
        let depths = loop_depths(&file.tokens);
        for (t, d) in file.tokens.iter().zip(&depths) {
            if t.ident() == Some("body") {
                assert_eq!(*d, 0, "impl-for body is not a loop");
            }
        }
    }

    #[test]
    fn guard_mask_matches_rule_shapes() {
        let file = SourceFile::new(
            "crates/core/src/x.rs",
            r#"
fn f(prov: &Provenance) {
    before();
    if prov.is_enabled() {
        inside();
    }
    after();
    if !prov.is_enabled() {
        negated();
        return;
    }
    tail();
}
"#,
        );
        let mask = guard_mask(&file);
        for (t, m) in file.tokens.iter().zip(&mask) {
            match t.ident() {
                Some("before") | Some("after") | Some("negated") => {
                    assert!(!m, "{:?} must be unguarded", t)
                }
                Some("inside") | Some("tail") => assert!(m, "{:?} must be guarded", t),
                _ => {}
            }
        }
    }
}
