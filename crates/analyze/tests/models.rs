//! Model-checker integration tests.
//!
//! The positive models mirror the repo's real concurrency — observer
//! counter merging, cross-thread span parenting, `SelectionStats`
//! merging in `exhaustive_top_k_parallel`, progressive leaf accounting
//! — and must hold under ≥ 1000 explored interleavings. The negative
//! models seed the bugs the checker exists to catch (a `SeqCst` merge
//! demoted to a plain read-modify-write, publication through a relaxed
//! flag, ABBA lock inversion) and prove it fires.

use deepeye_analyze::model::{demo, explore, explore_at_least, Options, Report, Sim};
use deepeye_core::SelectionStats;

const TARGET: usize = demo::INTERLEAVING_TARGET;

fn assert_clean(report: &Report) {
    assert!(
        report.ok(),
        "{report}\nraces: {:?}\nfailures: {:?}",
        report.races,
        report
            .failures
            .iter()
            .map(|f| &f.message)
            .collect::<Vec<_>>()
    );
    assert!(
        report.executions >= TARGET,
        "only {} interleavings explored (need >= {TARGET})",
        report.executions
    );
}

fn worker_stats(i: usize) -> SelectionStats {
    SelectionStats {
        leaves_materialized: i + 1,
        leaves_pruned: 2 * i,
        leaves_total: 3 * i + 1,
        nodes_generated: 5 * i + 2,
        shared_scans: i,
    }
}

#[test]
fn observer_counter_merge_is_race_free() {
    assert_clean(&explore_at_least(
        "observer_counter_merge",
        TARGET,
        demo::counter_merge,
    ));
}

#[test]
fn span_under_parenting_is_race_free() {
    assert_clean(&explore_at_least(
        "span_under_parenting",
        TARGET,
        demo::span_parenting,
    ));
}

#[test]
fn top_k_partition_merge_is_race_free() {
    assert_clean(&explore_at_least(
        "top_k_partition_merge",
        TARGET,
        demo::partition_merge,
    ));
}

/// `exhaustive_top_k_parallel`'s merge discipline: worker-local
/// `SelectionStats` folded into the shared block under a lock must
/// equal the sequential fold under **every** interleaving.
#[test]
fn selection_stats_merge_matches_sequential_under_all_interleavings() {
    let mut expected = SelectionStats::default();
    for i in 0..3 {
        expected += worker_stats(i);
    }
    let report = explore_at_least("selection_stats_merge", TARGET, move |sim: &mut Sim| {
        let stats = sim.cell("stats", SelectionStats::default());
        let m = sim.mutex("stats.lock");
        for i in 0..3usize {
            let (stats, m) = (stats.clone(), m.clone());
            sim.spawn(move |ctx| {
                let local = worker_stats(i);
                m.lock(ctx);
                let mut merged = stats.load(ctx);
                merged.merge(&local);
                stats.store(ctx, merged);
                m.unlock(ctx);
            });
        }
        if sim.run() {
            assert_eq!(
                stats.final_value(),
                expected,
                "merge lost a worker's counters"
            );
        }
    });
    assert_clean(&report);
}

/// Merge order must not matter (workers join in scheduler order, which
/// the interleavings permute): commutativity and associativity checked
/// directly on the real type.
#[test]
fn selection_stats_merge_is_commutative_and_associative() {
    let vals: Vec<SelectionStats> = (0..4).map(worker_stats).collect();
    for a in &vals {
        for b in &vals {
            let mut ab = *a;
            ab.merge(b);
            let mut ba = *b;
            ba.merge(a);
            assert_eq!(ab, ba, "merge must commute");
            for c in &vals {
                let mut ab_c = ab;
                ab_c.merge(c);
                let mut bc = *b;
                bc.merge(c);
                let mut a_bc = *a;
                a_bc.merge(&bc);
                assert_eq!(ab_c, a_bc, "merge must associate");
            }
        }
    }
}

/// Progressive leaf accounting: every leaf a worker claims ends up
/// counted exactly once as materialized or pruned, and
/// `materialized + pruned == total` holds in the merged block under
/// every interleaving — the invariant `top_k_observed` exports to the
/// `progressive.*` counters.
#[test]
fn leaf_accounting_balances_under_all_interleavings() {
    // Worker i owns 2 leaves; even leaves materialize, odd ones prune.
    let leaves_per_worker = 2usize;
    let workers = 3usize;
    let report = explore_at_least("leaf_accounting", TARGET, move |sim: &mut Sim| {
        let stats = sim.cell("stats", SelectionStats::default());
        let m = sim.mutex("stats.lock");
        for w in 0..workers {
            let (stats, m) = (stats.clone(), m.clone());
            sim.spawn(move |ctx| {
                let mut local = SelectionStats::default();
                for leaf in 0..leaves_per_worker {
                    let id = w * leaves_per_worker + leaf;
                    local.leaves_total += 1;
                    if id.is_multiple_of(2) {
                        local.leaves_materialized += 1;
                        local.shared_scans += 1;
                    } else {
                        local.leaves_pruned += 1;
                    }
                }
                m.lock(ctx);
                let mut merged = stats.load(ctx);
                merged += local;
                stats.store(ctx, merged);
                m.unlock(ctx);
            });
        }
        if sim.run() {
            let s = stats.final_value();
            assert_eq!(s.leaves_total, workers * leaves_per_worker);
            assert_eq!(
                s.leaves_materialized + s.leaves_pruned,
                s.leaves_total,
                "a leaf was double-counted or dropped"
            );
            assert_eq!(s.shared_scans, s.leaves_materialized);
        }
    });
    assert_clean(&report);
}

/// The real functions agree with what the model asserts: parallel
/// selection reports the same merged stats as the sequential fold.
#[test]
fn real_parallel_top_k_stats_match_sequential() {
    use deepeye_core::{exhaustive_top_k, exhaustive_top_k_parallel};
    use deepeye_query::UdfRegistry;

    let mut builder = deepeye_data::TableBuilder::new("t");
    for c in 0..6usize {
        let vals: Vec<f64> = (0..40)
            .map(|r: usize| ((r * (c + 3)) % 11) as f64)
            .collect();
        builder = builder.numeric(format!("c{c}"), vals);
    }
    let table = builder.build().expect("table builds");
    let udfs = UdfRegistry::default();
    let (seq_top, seq_stats) = exhaustive_top_k(&table, &udfs, 5);
    let (par_top, par_stats) = exhaustive_top_k_parallel(&table, &udfs, 5);
    assert_eq!(seq_stats, par_stats, "merged stats diverge from sequential");
    let seq_scores: Vec<_> = seq_top.iter().map(|n| n.score).collect();
    let par_scores: Vec<_> = par_top.iter().map(|n| n.score).collect();
    assert_eq!(seq_scores, par_scores);
}

// ---------------------------------------------------------------------------
// Negatives: the checker must catch the seeded bugs.

/// Acceptance criterion: the `SeqCst` merge demoted to a non-atomic
/// read-modify-write is caught as a data race (and loses updates on
/// some schedules).
#[test]
fn seeded_nonatomic_rmw_bug_is_caught() {
    let report = explore(
        "seeded_rmw_bug",
        &Options::exhaustive(2000),
        demo::seeded_rmw_bug,
    );
    assert!(report.complete, "tiny model should be fully enumerable");
    assert!(
        report
            .races
            .iter()
            .any(|r| r.contains("merge.count") && r.contains("write")),
        "demoted RMW must be reported as a race: {:?}",
        report.races
    );
    // The correct twin (fetch_add SeqCst) in counter_merge is clean, so
    // the detector separates the bug from the fix.
}

#[test]
fn relaxed_publication_is_caught_and_release_twin_is_clean() {
    let bad = explore(
        "relaxed_publish_bug",
        &Options::exhaustive(2000),
        demo::relaxed_publish_bug,
    );
    assert!(bad.complete);
    assert!(
        bad.races.iter().any(|r| r.contains("publish.data")),
        "relaxed-flag publication must race: {:?}",
        bad.races
    );
    let good = explore(
        "release_publish_ok",
        &Options::exhaustive(2000),
        demo::release_publish_ok,
    );
    assert!(good.complete);
    assert!(
        good.ok(),
        "release-ordered twin must be clean: {:?}",
        good.races
    );
}

#[test]
fn abba_lock_inversion_deadlocks_are_found() {
    let report = explore(
        "abba_deadlock",
        &Options::exhaustive(2000),
        demo::abba_deadlock,
    );
    assert!(report.complete);
    assert!(report.deadlocks > 0, "ABBA must deadlock on some schedule");
    assert!(report.races.is_empty(), "deadlock, not a data race");
}

/// A failed post-run assertion is reported with the schedule that
/// produced it, not swallowed.
#[test]
fn assertion_failures_carry_their_schedule() {
    let report = explore(
        "lost_update_assert",
        &Options::exhaustive(2000),
        |sim: &mut Sim| {
            let count = sim.cell("count", 0u64);
            for _ in 0..2 {
                let count = count.clone();
                sim.spawn(move |ctx| {
                    let v = count.load(ctx);
                    count.store(ctx, v + 1);
                });
            }
            if sim.run() {
                assert_eq!(count.final_value(), 2, "lost update");
            }
        },
    );
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.message.contains("lost update")),
        "some interleaving loses an update: {:?}",
        report
            .failures
            .iter()
            .map(|f| &f.message)
            .collect::<Vec<_>>()
    );
    assert!(
        report.failures.iter().all(|f| !f.schedule.is_empty()),
        "failures must carry a replayable schedule"
    );
}

/// Random mode explores with a seed and is reproducible.
#[test]
fn random_mode_is_deterministic_per_seed() {
    let runs = || {
        explore(
            "counter_merge_random",
            &Options::random(42, 200),
            demo::counter_merge,
        )
    };
    let a = runs();
    let b = runs();
    assert_eq!(a.executions, 200);
    assert_eq!(a.max_steps, b.max_steps, "same seed, same schedules");
    assert!(a.ok());
}
