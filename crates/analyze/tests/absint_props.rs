//! Property tests for the abstract-interpretation engine: the worklist
//! solver terminates and lands on a sound fixpoint for random CFGs, the
//! SCC condensation agrees with brute-force reachability, and the
//! interval domain's join/widen obey the semilattice laws the solver
//! assumes.
//!
//! These are the laws `absint`'s doc comments promise (`bottom ⊑ x`,
//! `x ⊑ x ⊔ y`, `x ⊔ y ⊑ x.widen(y)`, widening chains stabilize); the
//! unit tests in `effects.rs` pin concrete behaviour, this file pins
//! the algebra.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_analyze::absint::{
    condense, fixpoint, EffectSet, Interval, JoinSemiLattice, NEG_INF, POS_INF,
};
use deepeye_analyze::cfg::{Block, BlockKind, Cfg};
use proptest::prelude::*;

/// Build a CFG from `n` blocks and raw edge pairs (targets out of range
/// are dropped — the solver tolerates them, but keeping the test graph
/// well-formed makes the soundness check below exact). Every fourth
/// block is a loop head so widening paths are exercised.
fn make_cfg(n: usize, edges: &[(usize, usize)]) -> Cfg {
    let mut blocks: Vec<Block> = (0..n)
        .map(|i| Block {
            start: i,
            end: i + 1,
            line: i as u32 + 1,
            kind: if i % 4 == 3 {
                BlockKind::LoopHead
            } else {
                BlockKind::Seq
            },
            succs: Vec::new(),
        })
        .collect();
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if !blocks[a].succs.contains(&b) {
            blocks[a].succs.push(b);
        }
    }
    Cfg { blocks }
}

/// Brute-force reflexive-transitive closure over `n` nodes.
fn closure(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    for &(a, b) in edges {
        r[a % n][b % n] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                r[i][j] = r[i][j] || (r[i][k] && r[k][j]);
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver terminates within its declared budget on arbitrary
    /// graphs (cycles included) over the finite effect domain, and the
    /// answer is an inductive fixpoint: every edge's source output is
    /// ⊑ the target's input, and every output is exactly the transfer
    /// of its input.
    #[test]
    fn effect_fixpoint_is_sound_on_random_cfgs(
        n in 1usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..24),
        locals in proptest::collection::vec(0u8..16, 12),
    ) {
        let cfg = make_cfg(n, &edges);
        let transfer = |b: usize, input: &EffectSet| EffectSet(input.0 | locals[b]);
        let fix = fixpoint(&cfg, EffectSet::pure(), transfer);
        prop_assert!(fix.steps <= 64 * n + 256, "stepped past the budget");
        for (b, block) in cfg.blocks.iter().enumerate() {
            prop_assert_eq!(
                fix.outputs[b].0, transfer(b, &fix.inputs[b]).0,
                "output {} is not transfer(input)", b
            );
            for &s in &block.succs {
                prop_assert!(
                    fix.outputs[b].leq(&fix.inputs[s]),
                    "edge {}->{} breaks the fixpoint inequation", b, s
                );
            }
        }
        // Rerunning is deterministic (the solver has no hidden state).
        let again = fixpoint(&cfg, EffectSet::pure(), transfer);
        prop_assert_eq!(fix.inputs, again.inputs);
    }

    /// The interval domain has infinite ascending chains; widening at
    /// loop heads must still force termination, and the result must
    /// stay an inductive *post*-fixpoint (widening over-approximates,
    /// it never under-approximates).
    #[test]
    fn interval_fixpoint_terminates_via_widening(
        n in 1usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..20),
        increments in proptest::collection::vec(0i64..5, 10),
    ) {
        // Real CFGs only ever form cycles through loop heads (back
        // edges come from `loop`/`while`/`for`), and that is exactly
        // the shape widening needs to guarantee stabilization; route
        // every backward/self edge through a loop-head block, or drop
        // it when the graph is too small to have one.
        let heads: Vec<usize> = (0..n).filter(|i| i % 4 == 3).collect();
        let edges: Vec<(usize, usize)> = edges
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                if b > a {
                    Some((a, b))
                } else {
                    heads.first().map(|&h| (a, h))
                }
            })
            .collect();
        let cfg = make_cfg(n, &edges);
        let transfer = |b: usize, input: &Interval| {
            if input.is_empty() {
                Interval::exact(0)
            } else {
                input.add(&Interval::exact(i128::from(increments[b])))
            }
        };
        let fix = fixpoint(&cfg, Interval::exact(0), transfer);
        prop_assert!(fix.steps <= 64 * n + 256, "widening failed to stabilize");
        for (b, block) in cfg.blocks.iter().enumerate() {
            for &s in &block.succs {
                prop_assert!(
                    fix.outputs[b].leq(&fix.inputs[s]),
                    "edge {}->{} breaks the post-fixpoint inequation", b, s
                );
            }
        }
    }

    /// SCC condensation + the ascending reachable-sets sweep computes
    /// exactly the brute-force reflexive-transitive closure.
    #[test]
    fn scc_condensation_matches_brute_force_reachability(
        n in 1usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            succs[a % n].push(b % n);
        }
        let scc = condense(n, &succs);
        let reach = scc.reachable_sets();
        let truth = closure(n, &edges);
        for (i, row) in truth.iter().enumerate() {
            for (j, &expected) in row.iter().enumerate() {
                let got = reach[scc.comp_of[i]].contains(scc.comp_of[j]);
                prop_assert_eq!(
                    got, expected,
                    "reachability({}, {}) disagrees with the closure", i, j
                );
            }
        }
        // Members of one component reach each other both ways.
        for comp in &scc.comps {
            for &a in comp {
                for &b in comp {
                    prop_assert!(truth[a][b] && truth[b][a], "SCC {:?} is not strongly connected", comp);
                }
            }
        }
    }

    /// Interval join/widen semilattice laws, plus widening-chain
    /// stabilization: any sequence of widens against fresh inputs
    /// reaches a fixed interval in at most two steps per bound.
    #[test]
    fn interval_join_and_widen_are_sound(
        a in (-1000i64..1000, -1000i64..1000),
        b in (-1000i64..1000, -1000i64..1000),
        probes in proptest::collection::vec(-1000i64..1000, 4),
    ) {
        let iv = |p: (i64, i64)| {
            Interval::range(i128::from(p.0.min(p.1)), i128::from(p.0.max(p.1)))
        };
        let (x, y) = (iv(a), iv(b));
        let j = x.join(&y);
        prop_assert!(x.leq(&j) && y.leq(&j), "join is not an upper bound");
        prop_assert_eq!(j, y.join(&x));
        prop_assert_eq!(x.join(&x), x);
        prop_assert!(Interval::bottom().leq(&x), "bottom is not least");
        let w = x.widen(&y);
        prop_assert!(j.leq(&w), "widen is below the join");
        // Widening is stationary once a bound escapes to ±∞.
        let w2 = w.widen(&y);
        prop_assert_eq!(w2, w.join(&w2), "widening chain did not stabilize");
        prop_assert!(w.lo == x.lo || w.lo == NEG_INF);
        prop_assert!(w.hi == x.hi || w.hi == POS_INF);
        // Concretization soundness: members of x and y stay inside the
        // join, and sums stay inside the interval sum.
        for &p in &probes {
            let p = i128::from(p);
            if x.contains(p) {
                prop_assert!(j.contains(p) && w.contains(p));
            }
            for &q in &probes {
                let q = i128::from(q);
                if x.contains(p) && y.contains(q) {
                    prop_assert!(x.add(&y).contains(p + q), "add lost a concrete sum");
                    prop_assert!(x.sub(&y).contains(p - q), "sub lost a concrete difference");
                    prop_assert!(x.mul(&y).contains(p * q), "mul lost a concrete product");
                }
            }
        }
    }

    /// EffectSet is a finite join-semilattice: join is the bitwise or,
    /// ordered by inclusion, with the empty set as bottom.
    #[test]
    fn effect_lattice_laws(a in 0u8..16, b in 0u8..16, c in 0u8..16) {
        let (x, y, z) = (EffectSet(a), EffectSet(b), EffectSet(c));
        prop_assert_eq!(x.join(&y).0, a | b);
        prop_assert_eq!(x.join(&y).join(&z).0, x.join(&y.join(&z)).0);
        prop_assert!(x.leq(&x.join(&y)) && y.leq(&x.join(&y)));
        prop_assert!(EffectSet::bottom().leq(&x));
        prop_assert_eq!(x.leq(&y), a & b == a);
        prop_assert_eq!(x.is_pure(), a == 0);
        // The widen default is join — finiteness needs nothing more.
        prop_assert_eq!(x.widen(&y).0, a | b);
    }
}
