//! Linter integration tests against the *real* workspace tree.
//!
//! These are the teeth behind the invariants: the checked-in tree must
//! lint clean with an **empty** baseline, the DESIGN.md §8 rule catalog
//! must match the code, and the JSON report must round-trip through the
//! same validator `trace_check --lint-report` uses.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_analyze::rules::RULES;
use deepeye_analyze::{lint::run, lint_report_json, validate_lint_report, Baseline, Workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root exists")
}

fn load_workspace() -> Workspace {
    Workspace::load(workspace_root()).expect("workspace loads")
}

fn read_baseline() -> Baseline {
    let path = workspace_root().join("analyze.allow");
    let text = std::fs::read_to_string(&path).expect("analyze.allow is checked in");
    Baseline::parse(&text).expect("analyze.allow parses")
}

/// The headline acceptance criterion: `analyze --workspace` is clean on
/// the final tree, and the baseline used to get there is empty.
#[test]
fn real_workspace_lints_clean_with_empty_baseline() {
    let baseline = read_baseline();
    let outcome = run(&load_workspace(), &baseline);
    assert!(
        outcome.violations.is_empty(),
        "workspace must lint clean:\n{}",
        outcome
            .violations
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.suppressed.is_empty() && outcome.stale.is_empty(),
        "baseline must be empty (policy: fix, don't baseline)"
    );
    assert!(outcome.files_scanned > 50, "workspace scan looks truncated");
}

/// Doc-sync (the A-code analogue of A0004 itself): the DESIGN.md §8
/// catalog lists exactly the rules the linter implements, summaries
/// verbatim, and mentions no A-code the linter does not emit.
#[test]
fn design_doc_rule_catalog_matches_code() {
    let text =
        std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md readable");
    let start = text
        .find("## 8. Static analysis & concurrency checking")
        .expect("DESIGN.md has a §8 static-analysis section");
    let end = text[start..]
        .find("\n## 9.")
        .map_or(text.len(), |i| start + i);
    let section = &text[start..end];

    for rule in RULES {
        assert!(
            section.contains(&format!("| {} |", rule.code)),
            "DESIGN.md §8 catalog is missing a row for {}",
            rule.code
        );
        assert!(
            section.contains(rule.summary),
            "DESIGN.md §8 must carry {}'s summary verbatim: {:?}",
            rule.code,
            rule.summary
        );
    }

    // Reverse direction: every A-code shaped token in §8 is a real rule.
    let known: Vec<&str> = RULES.iter().map(|r| r.code).collect();
    let bytes = section.as_bytes();
    for (i, _) in section.match_indices('A') {
        let tail = &section[i..];
        if tail.len() >= 5 && tail[1..5].bytes().all(|b| b.is_ascii_digit()) {
            let before_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
            let after_ok = tail.len() == 5 || !bytes[i + 5].is_ascii_alphanumeric();
            if before_ok && after_ok {
                let code = &tail[..5];
                assert!(
                    known.contains(&code),
                    "DESIGN.md §8 mentions {code}, which no linter rule emits"
                );
            }
        }
    }
}

/// Rule codes are unique and well-formed — the catalog the JSON report
/// validator trusts.
#[test]
fn rule_codes_are_unique_and_well_formed() {
    let mut codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
    codes.sort_unstable();
    let before = codes.len();
    codes.dedup();
    assert_eq!(before, codes.len(), "duplicate rule code");
    for rule in RULES {
        assert_eq!(rule.code.len(), 5, "{}: codes are A + 4 digits", rule.code);
        assert!(rule.code.starts_with('A'));
        assert!(rule.code[1..].bytes().all(|b| b.is_ascii_digit()));
        assert!(!rule.summary.is_empty());
    }
}

/// The JSON export over the real workspace passes the same validation
/// `trace_check --lint-report` applies, and reports zero violations.
#[test]
fn json_report_over_real_workspace_validates() {
    let outcome = run(&load_workspace(), &read_baseline());
    let json = lint_report_json(&outcome);
    let summary = validate_lint_report(&json).expect("report validates");
    assert_eq!(summary.rules, RULES.len());
    assert_eq!(summary.diagnostics, 0);
    assert_eq!(summary.suppressed, 0);
    assert_eq!(summary.files_scanned, outcome.files_scanned as u64);
    // Deterministic export: same tree, same bytes.
    let again = lint_report_json(&run(&load_workspace(), &read_baseline()));
    assert_eq!(json, again, "report generation must be deterministic");
}
