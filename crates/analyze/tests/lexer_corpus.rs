//! Lexer corpus test: every product source file in the real workspace
//! must lex with faithful, monotone spans and survive a render/re-lex
//! round trip.
//!
//! The interprocedural rules (A0008–A0012) trust the token stream as
//! their only view of the code — a span drift or a silently dropped
//! construct (raw strings, nested comments, byte literals) would not
//! crash anything, it would just quietly blind the analysis. This test
//! turns the whole repository into the lexer's regression corpus.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_analyze::lexer::{lex, Tok};
use deepeye_analyze::Workspace;
use std::path::Path;

fn load_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root exists");
    Workspace::load(root).expect("workspace loads")
}

#[test]
fn every_workspace_file_lexes_with_faithful_spans() {
    let ws = load_workspace();
    assert!(ws.files.len() > 50, "corpus looks truncated");
    for f in &ws.files {
        let chars: Vec<char> = f.raw.chars().collect();
        let mut prev_end = 0u32;
        let mut prev_line = 1u32;
        for (i, t) in f.tokens.iter().enumerate() {
            let (start, end) = t.span;
            assert!(start < end, "{}: token {i} has an empty span", f.rel);
            assert!(
                start >= prev_end,
                "{}: token {i} overlaps its predecessor",
                f.rel
            );
            assert!(
                end as usize <= chars.len(),
                "{}: token {i} runs past end of file",
                f.rel
            );
            assert!(
                t.line >= prev_line,
                "{}: token {i} line number went backwards",
                f.rel
            );
            prev_end = end;
            prev_line = t.line;

            let slice: String = chars[start as usize..end as usize].iter().collect();
            match &t.tok {
                Tok::Ident(w) => assert_eq!(&slice, w, "{}: ident span drifted", f.rel),
                Tok::Punct(c) => {
                    assert_eq!(slice, c.to_string(), "{}: punct span drifted", f.rel);
                }
                Tok::Lifetime(l) => {
                    assert_eq!(slice, format!("'{l}"), "{}: lifetime span drifted", f.rel);
                }
                // Numeric and string spans cover source syntax (guards,
                // quotes, escapes) that the token resolves away; their
                // fidelity is established by the re-lex below.
                Tok::Num | Tok::Str(_) => {}
            }
        }
        assert_eq!(
            f.tokens.len(),
            f.test_tokens.len(),
            "{}: test mask out of step with the token stream",
            f.rel
        );
    }
}

/// Render each token's source slice back out (whitespace-normalized) and
/// lex the result: the token stream must be reproduced exactly. This is
/// the "no dropped bytes" property — any source text a token's span
/// fails to capture (a raw-string guard, a byte-string prefix, the tail
/// of a float) changes the re-lexed stream and fails here, file by file.
#[test]
fn corpus_round_trips_through_render_and_relex() {
    let ws = load_workspace();
    for f in &ws.files {
        let chars: Vec<char> = f.raw.chars().collect();
        let rendered: String = f
            .tokens
            .iter()
            .map(|t| {
                chars[t.span.0 as usize..t.span.1 as usize]
                    .iter()
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" ");
        let again = lex(&rendered);
        assert_eq!(
            again.len(),
            f.tokens.len(),
            "{}: re-lex changed the token count",
            f.rel
        );
        for (i, (a, b)) in f.tokens.iter().zip(&again).enumerate() {
            assert_eq!(
                a.tok, b.tok,
                "{}: token {i} drifted through the round trip",
                f.rel
            );
        }
    }
}

/// Raw identifiers (`r#fn`, `r#loop`) are one token each: the escape
/// must not leak a bare keyword into downstream matchers (a `loop`
/// keyword token where none exists would, e.g., invent A0017 loop
/// windows), and must survive the render/re-lex round trip.
#[test]
fn raw_identifiers_lex_as_single_tokens_and_round_trip() {
    let src = r##"fn r#fn(r#loop: u32) -> u32 { let r#match = r#loop + 1; r#match }
const R: &str = r#"still a raw string"#;"##;
    let toks = lex(src);
    let idents: Vec<&str> = toks
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(w) => Some(w.as_str()),
            _ => None,
        })
        .collect();
    for raw in ["r#fn", "r#loop", "r#match"] {
        assert!(idents.contains(&raw), "missing raw ident {raw}: {idents:?}");
    }
    assert!(
        !idents.contains(&"loop") && !idents.contains(&"match"),
        "raw-ident escape leaked a bare keyword: {idents:?}"
    );
    assert!(
        !toks.iter().any(|t| t.tok == Tok::Punct('#')),
        "raw-ident `#` escaped as punctuation"
    );
    assert!(
        toks.iter()
            .any(|t| t.tok == Tok::Str("still a raw string".into())),
        "r#\"…\"# raw strings still lex as strings"
    );
    // Round trip: rendering each span and re-lexing reproduces the stream.
    let chars: Vec<char> = src.chars().collect();
    let rendered: String = toks
        .iter()
        .map(|t| {
            chars[t.span.0 as usize..t.span.1 as usize]
                .iter()
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ");
    let again = lex(&rendered);
    assert_eq!(toks.len(), again.len(), "re-lex changed the token count");
    for (a, b) in toks.iter().zip(&again) {
        assert_eq!(a.tok, b.tok);
    }
}
