//! The `deepeye` command-line tool: automatic visualization for CSV files.
//!
//! ```text
//! deepeye recommend <csv> [k]          top-k charts as terminal sketches
//! deepeye search <csv> <keywords> [k]  keyword-driven chart search
//! deepeye query <csv> <query.vql>     run one visualization-language query
//! deepeye explain <csv>                why each chart ranked where it did
//! deepeye svg <csv> <out-dir> [k]      render top-k charts to SVG files
//! deepeye dashboard <csv> [out.html]   offline HTML dashboard (inline SVG)
//! deepeye inspect <csv>                schema and detected column types
//! ```
//!
//! Pipeline-running commands accept `--metrics-out <file>` (JSON metrics
//! snapshot), `--trace-out <file>` (Chrome trace-event timeline — load in
//! Perfetto or chrome://tracing), `--flame-out <file>` (a self-contained
//! flame SVG when the path ends in `.svg`, folded stacks otherwise), and
//! `--provenance-out <file>` (the per-candidate decision-provenance
//! record), and `--health-out <file>` (the `deepeye-health/v1` document
//! from one telemetry tick covering the run). The observability flags
//! also print a per-stage timing report to stderr.
//!
//! `explain` runs the full pipeline with provenance collection on and
//! prints the "why" report: the M/Q/W factor breakdown, dominance
//! summary, and rank derivation per top chart, plus the admit/reject
//! accounting. `--top <n>` widens the report; `--query '<vis query>'`
//! explains one specific candidate (including rejected ones).

use deepeye::core::{keyword_search, render_svg, SvgOptions};
use deepeye::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  deepeye recommend <csv> [k]\n  deepeye search <csv> <keywords> [k]\n  \
         deepeye query <csv> <query.vql>\n  \
         deepeye explain <csv> [--top <n>] [--query '<vis query>']\n  \
         deepeye svg <csv> <out-dir> [k]\n  \
         deepeye dashboard <csv> [out.html]\n  deepeye inspect <csv>\n\
         options:\n  --metrics-out <file>     write a JSON metrics snapshot\n  \
         --trace-out <file>       write a Chrome trace (Perfetto-loadable)\n  \
         --flame-out <file>       write a flame view (.svg) or folded stacks\n  \
         --provenance-out <file>  write the decision-provenance JSON\n  \
         --cost-out <file>        write the executor cost report (deepeye-cost/v1)\n  \
         --health-out <file>      write the health document (deepeye-health/v1)"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Table, ExitCode> {
    table_from_csv_path(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Strip one `--name <value>` flag from `args` (any position). `Err`
/// means the flag was given without a value.
fn strip_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args[i + 1].clone();
    args.drain(i..i + 2);
    Ok(Some(value))
}

/// Observability outputs requested on the command line.
struct ObsFlags {
    metrics_out: Option<String>,
    trace_out: Option<String>,
    flame_out: Option<String>,
    provenance_out: Option<String>,
    cost_out: Option<String>,
    health_out: Option<String>,
}

impl ObsFlags {
    /// Strip the export flags from `args` (any position), so positional
    /// parsing below stays index-based. `Err` means a flag was given
    /// without a value.
    fn strip(args: &mut Vec<String>) -> Result<ObsFlags, ()> {
        Ok(ObsFlags {
            metrics_out: strip_flag(args, "--metrics-out")?,
            trace_out: strip_flag(args, "--trace-out")?,
            flame_out: strip_flag(args, "--flame-out")?,
            provenance_out: strip_flag(args, "--provenance-out")?,
            cost_out: strip_flag(args, "--cost-out")?,
            health_out: strip_flag(args, "--health-out")?,
        })
    }

    fn wanted(&self) -> bool {
        self.metrics_out.is_some()
            || self.trace_out.is_some()
            || self.flame_out.is_some()
            || self.health_out.is_some()
    }

    /// An observer matching the flags: enabled only when an output was
    /// requested, so the default CLI path stays observation-free. A
    /// health export attaches the health engine (default detectors, no
    /// SLO objectives — a one-shot CLI run has no budget table of its
    /// own) so the run's single tick lands in a verdict document.
    fn observer(&self) -> Observer {
        if self.health_out.is_some() {
            Observer::with_health(
                deepeye::obs::RecorderConfig::default(),
                deepeye::obs::HealthConfig::default(),
            )
        } else if self.wanted() {
            Observer::enabled()
        } else {
            Observer::disabled()
        }
    }

    /// A provenance collector matching the flags: recording when a
    /// provenance export was requested (or `force`d by the `explain`
    /// subcommand), the no-op handle otherwise.
    fn provenance(&self, force: bool) -> Provenance {
        if force || self.provenance_out.is_some() {
            Provenance::enabled()
        } else {
            Provenance::disabled()
        }
    }

    /// An executor cost collector matching the flags: recording when a
    /// cost export was requested, the no-op handle (uninstrumented
    /// executor) otherwise.
    fn costs(&self) -> CostCollector {
        if self.cost_out.is_some() {
            CostCollector::enabled()
        } else {
            CostCollector::disabled()
        }
    }

    /// Write the requested exports and print the stage report to stderr.
    fn finish(
        &self,
        obs: &Observer,
        prov: &Provenance,
        costs: &CostCollector,
    ) -> Result<(), ExitCode> {
        if let Some(path) = &self.provenance_out {
            std::fs::write(path, prov.to_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote decision provenance to {path}");
        }
        if let Some(path) = &self.cost_out {
            let report = costs.report();
            std::fs::write(path, report.to_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote executor cost report to {path}");
            eprint!("{}", report.cost_table());
        }
        if !self.wanted() {
            return Ok(());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs.metrics_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, obs.chrome_trace_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote Chrome trace to {path} (load in Perfetto / chrome://tracing)");
        }
        if let Some(path) = &self.flame_out {
            // `.svg` targets get the self-contained flame view; anything
            // else gets the folded-stack text that external flamegraph
            // tools consume.
            let body = if path.ends_with(".svg") {
                obs.flame_svg()
            } else {
                obs.folded_stacks()
            };
            std::fs::write(path, body).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote flame view to {path}");
        }
        if let Some(path) = &self.health_out {
            // One tick covering the whole run feeds the health engine,
            // then the verdict document is exported. A single interval
            // cannot fire the windowed detectors — the point here is
            // the series snapshot (and schema parity with soak mode).
            let mut cursor = deepeye::obs::TelemetryCursor::default();
            let _ = obs.telemetry_tick(&mut cursor);
            let doc = obs.health_report().unwrap_or_default();
            std::fs::write(path, doc).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote health document to {path}");
        }
        eprint!("{}", obs.stage_report());
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Ok(flags) = ObsFlags::strip(&mut args) else {
        return usage();
    };
    let obs = flags.observer();
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    let prov = flags.provenance(command == "explain");
    let costs = flags.costs();
    let eye = DeepEye::new(DeepEyeConfig {
        observer: obs.clone(),
        provenance: prov.clone(),
        costs: costs.clone(),
        ..Default::default()
    });
    match command.as_str() {
        "recommend" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);
            println!("{}\n", table.schema_string());
            let recs = eye.recommend(&table, k);
            if recs.is_empty() {
                println!("no meaningful visualizations found");
            }
            for rec in recs {
                println!(
                    "#{} (M={:.2} Q={:.2} W={:.2})\n{}",
                    rec.rank,
                    rec.factors.m,
                    rec.factors.q,
                    rec.factors.w,
                    rec.node.data.ascii_sketch(10)
                );
            }
            if let Err(code) = flags.finish(&obs, &prov, &costs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "search" => {
            let (Some(path), Some(keywords)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);
            for rec in keyword_search(&eye, &table, keywords, k) {
                println!("#{}\n{}", rec.rank, rec.node.data.ascii_sketch(10));
            }
            if let Err(code) = flags.finish(&obs, &prov, &costs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "query" => {
            let (Some(path), Some(query_path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let text = match std::fs::read_to_string(query_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {query_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_query(&text).map(|p| execute(&table, &p.query)) {
                Ok(Ok(chart)) => {
                    println!("{chart}");
                    ExitCode::SUCCESS
                }
                Ok(Err(e)) => {
                    eprintln!("execution error: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "explain" => {
            let (Ok(top), Ok(query_text)) = (
                strip_flag(&mut args, "--top"),
                strip_flag(&mut args, "--query"),
            ) else {
                return usage();
            };
            let top: usize = match top {
                Some(t) => match t.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --top wants a number, got `{t}`");
                        return usage();
                    }
                },
                None => 5,
            };
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let _ = eye.recommend(&table, top.max(1));
            let log = prov.snapshot();
            match query_text {
                Some(text) => {
                    let parsed = match parse_query(&text) {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let id = deepeye::core::query_id(&parsed.query);
                    match log.find(&id) {
                        Some(e) => print!("{}", e.render()),
                        None => {
                            eprintln!(
                                "no provenance record for `{}` — the candidate was never \
                                 enumerated (try a GROUP/BIN transform the rules propose)",
                                parsed.query.to_language(table.name())
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => print!("{}", log.report(top)),
            }
            if let Err(code) = flags.finish(&obs, &prov, &costs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "svg" => {
            let (Some(path), Some(out_dir)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(6);
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                eprintln!("error: cannot create {out_dir}: {e}");
                return ExitCode::FAILURE;
            }
            let opts = SvgOptions::default();
            for rec in eye.recommend(&table, k) {
                let file = format!("{out_dir}/chart{}.svg", rec.rank);
                if let Err(e) = std::fs::write(&file, render_svg(&rec.node, &opts)) {
                    eprintln!("error: cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {file}");
            }
            if let Err(code) = flags.finish(&obs, &prov, &costs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "dashboard" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let out = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "dashboard.html".to_owned());
            let opts = SvgOptions::default();
            let mut html = String::from(
                "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>DeepEye</title>\
                 <style>body{font-family:sans-serif;display:grid;\
                 grid-template-columns:repeat(auto-fill,minmax(500px,1fr));gap:16px;padding:16px}\
                 .card{border:1px solid #ddd;border-radius:8px;padding:8px}</style></head><body>\n",
            );
            for rec in eye.recommend(&table, 8) {
                html.push_str("<div class=\"card\">");
                html.push_str(&render_svg(&rec.node, &opts));
                html.push_str("</div>\n");
            }
            html.push_str("</body></html>\n");
            if let Err(e) = std::fs::write(&out, html) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out} (fully offline, inline SVG)");
            if let Err(code) = flags.finish(&obs, &prov, &costs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            println!("{}", table.schema_string());
            for col in table.columns() {
                let profile = deepeye::data::profile_column(col);
                println!(
                    "  {:<24} nulls={:<5} {}",
                    col.name(),
                    col.null_count(),
                    profile.summary_line(col.data_type()),
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
