//! The `deepeye` command-line tool: automatic visualization for CSV files.
//!
//! ```text
//! deepeye recommend <csv> [k]          top-k charts as terminal sketches
//! deepeye search <csv> <keywords> [k]  keyword-driven chart search
//! deepeye query <csv> <query.vql>     run one visualization-language query
//! deepeye svg <csv> <out-dir> [k]      render top-k charts to SVG files
//! deepeye dashboard <csv> [out.html]   offline HTML dashboard (inline SVG)
//! deepeye inspect <csv>                schema and detected column types
//! ```

use deepeye::core::{keyword_search, render_svg, SvgOptions};
use deepeye::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  deepeye recommend <csv> [k]\n  deepeye search <csv> <keywords> [k]\n  \
         deepeye query <csv> <query.vql>\n  deepeye svg <csv> <out-dir> [k]\n  \
         deepeye dashboard <csv> [out.html]\n  deepeye inspect <csv>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Table, ExitCode> {
    table_from_csv_path(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "recommend" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);
            println!("{}\n", table.schema_string());
            let recs = DeepEye::with_defaults().recommend(&table, k);
            if recs.is_empty() {
                println!("no meaningful visualizations found");
            }
            for rec in recs {
                println!(
                    "#{} (M={:.2} Q={:.2} W={:.2})\n{}",
                    rec.rank,
                    rec.factors.m,
                    rec.factors.q,
                    rec.factors.w,
                    rec.node.data.ascii_sketch(10)
                );
            }
            ExitCode::SUCCESS
        }
        "search" => {
            let (Some(path), Some(keywords)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);
            let eye = DeepEye::with_defaults();
            for rec in keyword_search(&eye, &table, keywords, k) {
                println!("#{}\n{}", rec.rank, rec.node.data.ascii_sketch(10));
            }
            ExitCode::SUCCESS
        }
        "query" => {
            let (Some(path), Some(query_path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let text = match std::fs::read_to_string(query_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {query_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_query(&text).map(|p| execute(&table, &p.query)) {
                Ok(Ok(chart)) => {
                    println!("{chart}");
                    ExitCode::SUCCESS
                }
                Ok(Err(e)) => {
                    eprintln!("execution error: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "svg" => {
            let (Some(path), Some(out_dir)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(6);
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                eprintln!("error: cannot create {out_dir}: {e}");
                return ExitCode::FAILURE;
            }
            let opts = SvgOptions::default();
            for rec in DeepEye::with_defaults().recommend(&table, k) {
                let file = format!("{out_dir}/chart{}.svg", rec.rank);
                if let Err(e) = std::fs::write(&file, render_svg(&rec.node, &opts)) {
                    eprintln!("error: cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {file}");
            }
            ExitCode::SUCCESS
        }
        "dashboard" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let out = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "dashboard.html".to_owned());
            let opts = SvgOptions::default();
            let mut html = String::from(
                "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>DeepEye</title>\
                 <style>body{font-family:sans-serif;display:grid;\
                 grid-template-columns:repeat(auto-fill,minmax(500px,1fr));gap:16px;padding:16px}\
                 .card{border:1px solid #ddd;border-radius:8px;padding:8px}</style></head><body>\n",
            );
            for rec in DeepEye::with_defaults().recommend(&table, 8) {
                html.push_str("<div class=\"card\">");
                html.push_str(&render_svg(&rec.node, &opts));
                html.push_str("</div>\n");
            }
            html.push_str("</body></html>\n");
            if let Err(e) = std::fs::write(&out, html) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out} (fully offline, inline SVG)");
            ExitCode::SUCCESS
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            println!("{}", table.schema_string());
            for col in table.columns() {
                let profile = deepeye::data::profile_column(col);
                println!(
                    "  {:<24} nulls={:<5} {}",
                    col.name(),
                    col.null_count(),
                    profile.summary_line(col.data_type()),
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
