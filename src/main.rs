//! The `deepeye` command-line tool: automatic visualization for CSV files.
//!
//! ```text
//! deepeye recommend <csv> [k]          top-k charts as terminal sketches
//! deepeye search <csv> <keywords> [k]  keyword-driven chart search
//! deepeye query <csv> <query.vql>     run one visualization-language query
//! deepeye svg <csv> <out-dir> [k]      render top-k charts to SVG files
//! deepeye dashboard <csv> [out.html]   offline HTML dashboard (inline SVG)
//! deepeye inspect <csv>                schema and detected column types
//! ```
//!
//! Pipeline-running commands accept `--metrics-out <file>` (JSON metrics
//! snapshot) and `--trace-out <file>` (Chrome trace-event timeline —
//! load in Perfetto or chrome://tracing). Either flag also prints a
//! per-stage timing report to stderr.

use deepeye::core::{keyword_search, render_svg, SvgOptions};
use deepeye::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  deepeye recommend <csv> [k]\n  deepeye search <csv> <keywords> [k]\n  \
         deepeye query <csv> <query.vql>\n  deepeye svg <csv> <out-dir> [k]\n  \
         deepeye dashboard <csv> [out.html]\n  deepeye inspect <csv>\n\
         options:\n  --metrics-out <file>   write a JSON metrics snapshot\n  \
         --trace-out <file>     write a Chrome trace (Perfetto-loadable)"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Table, ExitCode> {
    table_from_csv_path(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Observability outputs requested on the command line.
struct ObsFlags {
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

impl ObsFlags {
    /// Strip `--metrics-out <file>` / `--trace-out <file>` from `args`
    /// (any position), so positional parsing below stays index-based.
    /// `Err` means a flag was given without a value.
    fn strip(args: &mut Vec<String>) -> Result<ObsFlags, ()> {
        let mut flags = ObsFlags {
            metrics_out: None,
            trace_out: None,
        };
        let mut i = 0;
        while i < args.len() {
            let slot = match args[i].as_str() {
                "--metrics-out" => &mut flags.metrics_out,
                "--trace-out" => &mut flags.trace_out,
                _ => {
                    i += 1;
                    continue;
                }
            };
            if i + 1 >= args.len() {
                return Err(());
            }
            *slot = Some(args[i + 1].clone());
            args.drain(i..i + 2);
        }
        Ok(flags)
    }

    fn wanted(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// An observer matching the flags: enabled only when an output was
    /// requested, so the default CLI path stays observation-free.
    fn observer(&self) -> Observer {
        if self.wanted() {
            Observer::enabled()
        } else {
            Observer::disabled()
        }
    }

    /// Write the requested exports and print the stage report to stderr.
    fn finish(&self, obs: &Observer) -> Result<(), ExitCode> {
        if !self.wanted() {
            return Ok(());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs.metrics_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, obs.chrome_trace_json()).map_err(|e| {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            })?;
            eprintln!("wrote Chrome trace to {path} (load in Perfetto / chrome://tracing)");
        }
        eprint!("{}", obs.stage_report());
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Ok(flags) = ObsFlags::strip(&mut args) else {
        return usage();
    };
    let obs = flags.observer();
    let eye = DeepEye::new(DeepEyeConfig {
        observer: obs.clone(),
        ..Default::default()
    });
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "recommend" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);
            println!("{}\n", table.schema_string());
            let recs = eye.recommend(&table, k);
            if recs.is_empty() {
                println!("no meaningful visualizations found");
            }
            for rec in recs {
                println!(
                    "#{} (M={:.2} Q={:.2} W={:.2})\n{}",
                    rec.rank,
                    rec.factors.m,
                    rec.factors.q,
                    rec.factors.w,
                    rec.node.data.ascii_sketch(10)
                );
            }
            if let Err(code) = flags.finish(&obs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "search" => {
            let (Some(path), Some(keywords)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);
            for rec in keyword_search(&eye, &table, keywords, k) {
                println!("#{}\n{}", rec.rank, rec.node.data.ascii_sketch(10));
            }
            if let Err(code) = flags.finish(&obs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "query" => {
            let (Some(path), Some(query_path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let text = match std::fs::read_to_string(query_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {query_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_query(&text).map(|p| execute(&table, &p.query)) {
                Ok(Ok(chart)) => {
                    println!("{chart}");
                    ExitCode::SUCCESS
                }
                Ok(Err(e)) => {
                    eprintln!("execution error: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "svg" => {
            let (Some(path), Some(out_dir)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let k = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(6);
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                eprintln!("error: cannot create {out_dir}: {e}");
                return ExitCode::FAILURE;
            }
            let opts = SvgOptions::default();
            for rec in eye.recommend(&table, k) {
                let file = format!("{out_dir}/chart{}.svg", rec.rank);
                if let Err(e) = std::fs::write(&file, render_svg(&rec.node, &opts)) {
                    eprintln!("error: cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {file}");
            }
            if let Err(code) = flags.finish(&obs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "dashboard" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let out = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "dashboard.html".to_owned());
            let opts = SvgOptions::default();
            let mut html = String::from(
                "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>DeepEye</title>\
                 <style>body{font-family:sans-serif;display:grid;\
                 grid-template-columns:repeat(auto-fill,minmax(500px,1fr));gap:16px;padding:16px}\
                 .card{border:1px solid #ddd;border-radius:8px;padding:8px}</style></head><body>\n",
            );
            for rec in eye.recommend(&table, 8) {
                html.push_str("<div class=\"card\">");
                html.push_str(&render_svg(&rec.node, &opts));
                html.push_str("</div>\n");
            }
            html.push_str("</body></html>\n");
            if let Err(e) = std::fs::write(&out, html) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out} (fully offline, inline SVG)");
            if let Err(code) = flags.finish(&obs) {
                return code;
            }
            ExitCode::SUCCESS
        }
        "inspect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let table = match load(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            println!("{}", table.schema_string());
            for col in table.columns() {
                let profile = deepeye::data::profile_column(col);
                println!(
                    "  {:<24} nulls={:<5} {}",
                    col.name(),
                    col.null_count(),
                    profile.summary_line(col.data_type()),
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
