//! # DeepEye
//!
//! A from-scratch Rust implementation of **DeepEye: Towards Automatic Data
//! Visualization** (Luo, Qin, Tang, Li — ICDE 2018): given a relational
//! table, automatically find the top-k visualizations that tell its
//! stories.
//!
//! DeepEye decomposes the problem into three questions:
//!
//! 1. **Recognition** — is a candidate visualization good or bad? Answered
//!    by a binary classifier (decision tree, with naive Bayes and linear
//!    SVM baselines) over a 14-dimension feature vector.
//! 2. **Ranking** — of two visualizations, which is better? Answered by a
//!    supervised LambdaMART learning-to-rank model *and* an expert partial
//!    order over three factors (chart/data match quality, transformation
//!    quality, column importance), optionally blended (HybridRank).
//! 3. **Selection** — which k charts to show? Answered by a dominance
//!    graph with weight-aware score propagation, or a progressive
//!    tournament that avoids materializing the search space.
//!
//! ## Quickstart
//!
//! ```
//! use deepeye::prelude::*;
//!
//! let table = table_from_csv_str(
//!     "sales",
//!     "region,revenue\nNorth,10\nSouth,20\nEast,15\nWest,30\nNorth,12\nSouth,22\n",
//! ).unwrap();
//!
//! let eye = DeepEye::with_defaults();
//! for rec in eye.recommend(&table, 3) {
//!     println!("#{}  {}", rec.rank, rec.node.data.ascii_sketch(6));
//! }
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`data`] | tables, type detection, temporal parsing, correlation |
//! | [`query`] | the visualization language, executor, search space |
//! | [`ml`] | decision tree, naive Bayes, SVM, LambdaMART, metrics |
//! | [`core`] | features, recognition, partial order, graph, rules, progressive selection |
//! | [`datagen`] | synthetic corpus, flight data, the perception oracle |
//! | [`obs`] | tracing spans, stage metrics, Chrome-trace / JSON exporters |

#![forbid(unsafe_code)]

pub use deepeye_core as core;
pub use deepeye_data as data;
pub use deepeye_datagen as datagen;
pub use deepeye_ml as ml;
pub use deepeye_obs as obs;
pub use deepeye_query as query;

/// The commonly needed names in one import.
pub mod prelude {
    pub use deepeye_core::{
        ClassifierKind, DeepEye, DeepEyeConfig, EnumerationMode, Explanation, HybridRanker,
        LabeledExample, LtrRanker, Provenance, ProvenanceCaps, ProvenanceLog, RankingMethod,
        Recognizer, Recommendation, VisNode,
    };
    pub use deepeye_data::{
        table_from_csv_path, table_from_csv_str, DataType, Table, TableBuilder,
    };
    pub use deepeye_obs::{CostCollector, Observer};
    pub use deepeye_query::{
        execute, parse_query, Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery,
    };
}
