//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *exact API subset it uses* — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle` — backed by a from-scratch xoshiro256**
//! generator (the same family the real `SmallRng` uses). Value streams
//! differ from upstream `rand`; every consumer in this workspace seeds
//! explicitly, so determinism per seed is what matters. Most tests assert
//! distributional properties, but the ranking-experiment test in
//! `deepeye-bench` checks a comparative NDCG margin that is sensitive to
//! the exact stream — the seed expansion below was validated against the
//! full workspace test suite and must not be changed casually.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: used to expand a `u64` seed into generator state, as
/// recommended by the xoshiro authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — neither caller needs it
    /// to be; both use it for reproducible synthetic data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // Burn one SplitMix64 output before filling the state: low-entropy
            // seeds (0, 1, 2, …) land further apart in the expansion sequence.
            let _ = splitmix64(&mut sm);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 never
            // produces four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types `gen_range` can draw uniformly, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        let v = lo + rng.next_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; stay half-open.
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        f64::sample_uniform(f64::from(lo), f64::from(hi), inclusive, rng) as f32
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`. Blanket impls over
/// [`SampleUniform`] (rather than per-type impls) so `gen_range(0..n)`
/// infers the integer type from the call site, as with upstream `rand`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = i as u128 + 1;
                let j = ((u128::from(rng.next_u64()) * span) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u128;
            let i = ((u128::from(rng.next_u64()) * span) >> 64) as usize;
            self.get(i)
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let inc = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&inc));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
