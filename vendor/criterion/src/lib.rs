//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical engine it reports a simple mean wall-clock time per
//! iteration over a fixed measurement budget — enough to eyeball hot-path
//! regressions in an offline container, with the same bench source code.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to each bench function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure: Duration,
    /// Iterations per timing sample (acts like criterion's sample count).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(500),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&full, self.parent.measure, samples, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A benchmark name with a parameter, e.g. `rule_based/500`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures; handed to the callback of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, recording total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so benches can use `criterion::black_box` if they prefer.
pub use std::hint::black_box;

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measure: Duration, samples: usize, mut f: F) {
    // Calibrate: find an iteration count that fills the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_iters = (measure.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let iters = budget_iters.min(samples as u64 * 100).max(1);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    println!(
        "{name:<44} {:>12} /iter  ({iters} iters)",
        format_time(mean)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors criterion's macro: bundles bench functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors criterion's macro: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
            ..Default::default()
        };
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2e-3), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
