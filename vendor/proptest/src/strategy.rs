//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value *trees* to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Use a generated value to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, re-drawing otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 draws in a row", self.whence)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy (`any::<bool>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_bool(0.5)
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_range(0u8..=u8::MAX)
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_range(i64::MIN..=i64::MAX)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String-literal strategies: a simplified regex of exactly the shape
/// `"[class]{lo,hi}"` (or a bare `"[class]"`, one char). The class
/// supports literal characters and `a-z` ranges; `-` is literal when
/// first or last. This covers every pattern used in this workspace.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = if lo == hi {
            lo
        } else {
            rng.rng.gen_range(lo..=hi)
        };
        (0..len)
            .map(|_| chars[rng.rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[class]{lo,hi}` or `.{lo,hi}` into (alphabet, lo, hi). Returns
/// `None` for anything outside the supported shape.
fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    // `.` — any character except a line break (as in upstream proptest's
    // regex support); drawn here from printable ASCII plus tab and CR so
    // quoting/delimiter edge cases stay likely.
    if let Some(rest) = pattern.strip_prefix('.') {
        let mut alphabet: Vec<char> = (' '..='~').collect();
        alphabet.push('\t');
        alphabet.push('\r');
        let (lo, hi) = parse_counts(rest)?;
        return Some((alphabet, lo, hi));
    }
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range unless `-` is the first/last class character.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (start, end) = (class[i], class[i + 2]);
            if start > end {
                return None;
            }
            for c in start..=end {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let (lo, hi) = parse_counts(&rest[close + 1..])?;
    Some((alphabet, lo, hi))
}

/// Parse a `{lo,hi}` / `{n}` repetition suffix; an empty suffix means
/// exactly one repetition.
fn parse_counts(suffix: &str) -> Option<(usize, usize)> {
    if suffix.is_empty() {
        return Some((1, 1));
    }
    let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (0usize..10, -1.0f64..1.0).generate(&mut r);
            assert!(a < 10);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn map_flat_map_filter() {
        let mut r = rng();
        let doubled = (1usize..5).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..50 {
            let v = nested.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
        let odd = (0i64..100).prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..50 {
            assert!(odd.generate(&mut r) % 2 == 1);
        }
    }

    #[test]
    fn vec_sizes() {
        let mut r = rng();
        let exact = crate::collection::vec(0u8..4, 3usize);
        assert_eq!(exact.generate(&mut r).len(), 3);
        let ranged = crate::collection::vec(0u8..4, 0..6usize);
        for _ in 0..100 {
            assert!(ranged.generate(&mut r).len() < 6);
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[ -~]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "[a-z0-9./: -]{0,12}".generate(&mut r);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "./: -".contains(c)));
        }
    }

    #[test]
    fn dot_pattern_draws_printables() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut r);
            assert!(s.len() <= 200);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\t' || c == '\r'));
            assert!(!s.contains('\n'));
        }
        let one = ".".generate(&mut r);
        assert_eq!(one.chars().count(), 1);
    }

    #[test]
    fn unsupported_pattern_detected() {
        assert!(parse_pattern("hello").is_none());
        assert!(parse_pattern("[]").is_none());
        assert!(parse_pattern("[a-z]+").is_none());
        assert!(parse_pattern("[z-a]{1,2}").is_none());
        assert!(parse_pattern(".+").is_none());
    }

    #[test]
    fn just_and_any() {
        let mut r = rng();
        assert_eq!(Just(41).generate(&mut r), 41);
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[usize::from(any::<bool>().generate(&mut r))] = true;
        }
        assert!(saw[0] && saw[1]);
    }
}
