//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors the API subset its property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`;
//! - range, tuple, `any::<bool>()`, simple regex-class string, and
//!   [`collection::vec`] strategies;
//! - the [`proptest!`] macro with `#![proptest_config(..)]` support;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Semantics match upstream for generation and assertion; the one
//! deliberate omission is *shrinking* — a failing case reports the
//! drawn inputs verbatim instead of a minimized counterexample. Every
//! run is deterministic: the RNG is seeded from the test's name, so a
//! failure reproduces by re-running the same test.

#![forbid(unsafe_code)]
// A property-testing harness reports failures by panicking; the
// workspace panic/unwrap lints do not apply to this test-only stub.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
// The doc example intentionally shows a `#[test]` wrapped in `proptest!`.
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors upstream `proptest!`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            while ran < config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        ::std::assert!(
                            rejected < config.cases.saturating_mul(16).max(256),
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property {} falsified on case {}: {}",
                            stringify!($name),
                            ran,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` on equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `prop_assert!` on inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case (drawing a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
