//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! case-level error type the assertion macros return.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only the knobs this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// How a single generated case ended, short of passing.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case.
    Reject(String),
    /// `prop_assert!` failed — the property is falsified.
    Fail(String),
}

/// RNG handed to strategies. Seeded from the test name, so every run of
/// a given test draws the same cases (no shrinking, but failures always
/// reproduce).
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.rng.next_u64(), c.rng.next_u64());
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }
}
